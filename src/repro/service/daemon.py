"""Long-running fleet daemon: the checkpoint service as a *process*.

:class:`~repro.service.fleet.FleetHarness` runs one fixed fleet to
completion and dies with its caller; real sweep traffic (capacity scans,
architecture selection) is a *stream* of small jobs arriving while others
finish.  :class:`FleetDaemon` runs the same job lifecycle
(:class:`~repro.service.fleet.JobLifecycle` — identical crash semantics)
inside a long-lived scheduler loop that:

* accepts job submissions, status queries, drain and preemption commands
  over **pluggable control transports**
  (:mod:`repro.service.transport`): always the file-based plane — a
  directory of single-shot JSON request/response objects written through
  :class:`~repro.storage.local.LocalDirectoryBackend`'s atomic-replace
  protocol — and, with ``listen=...``, a TCP socket server speaking
  length-prefixed JSON frames, so a daemon on one host can be driven and
  monitored from another with no shared filesystem for control traffic.
  Both transports feed the same :meth:`FleetDaemon._handle` dispatch,
* schedules runnable jobs by **weighted round-robin**: each job's
  ``priority`` is its share weight (a priority-2 job gets ~2x the training
  ticks of a priority-1 neighbour), implemented as stride scheduling whose
  min-pass selection doubles as starvation protection — a low-priority
  job's virtual pass stands still while it waits, so it is always
  scheduled within a bounded number of ticks,
* survives job churn: jobs are created from a **workload registry** (named
  trainer recipes + JSON parameters — never unpickled callables), advance
  one step per tick, die on ``preempt``, and reincarnate through the
  shared restore pipeline after their restart delay,
* stages restores ahead of time: the moment a job is preempted the daemon
  issues :meth:`~repro.service.chunkstore.ChunkStore.prefetch_restore`,
  so the restart delay doubles as the read-ahead window and the
  reincarnation restore is tier-warm,
* coordinates placement across daemons: with a
  :class:`~repro.storage.placement.PlacementJournal` on the store, pins
  are durable/shared and the periodic ``rebalance_tiers()`` sweep runs
  under the journal's ``rebalance`` lease.

Liveness and single-instance are both carried by ``daemon.json`` in the
control directory: the daemon heartbeats it; a second ``start`` against a
fresh heartbeat is refused; clients treat a stale heartbeat as daemon-down.

Operator surface (see ``docs/OPERATIONS.md``)::

    qckpt daemon start  <store> --control <dir>     # run the loop (foreground)
    qckpt daemon start  <store> --listen 0.0.0.0:7777 --token s3cret
    qckpt daemon submit --control <dir> --job lr01 --steps 8 --lr 0.02
    qckpt daemon submit --connect host:7777 --token s3cret --job lr01 ...
    qckpt daemon status --control <dir> [--job lr01]
    qckpt daemon preempt --connect host:7777 --job lr01
    qckpt daemon drain  --control <dir>             # finish jobs, then exit
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import (
    CheckpointNotFoundError,
    ConfigError,
    ReproError,
    StorageError,
    TransportError,
)
from repro.faults.crashpoints import crash_point, register_crash_point
from repro.obs import trace as obs_trace
from repro.obs.export import ObsDir, prometheus_text
from repro.obs.health import HealthEngine, HealthReport, HealthRule
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    DB_FILENAME as TIMESERIES_FILENAME,
    DEFAULT_RETENTION_SECONDS,
    TimeSeriesDB,
    TimeSeriesSampler,
    rate_from_samples,
)
from repro.reliability import Deadline, current_deadline
from repro.service.chunkstore import ChunkStore
from repro.service.fleet import FleetJobSpec, JobLifecycle, _JobRuntime
from repro.service.pool import WriterPool
from repro.service.transport import (
    REQUEST_PREFIX,
    RESPONSE_PREFIX,
    ControlTransport,
    FileTransport,
    SocketControlClient,
    SocketTransport,
    TransportConnectError,
    parse_address,
)
from repro.storage.backend import StorageBackend
from repro.storage.local import LocalDirectoryBackend
from repro.storage.reliable import ReliableBackend

META_NAME = "daemon.json"

_log = get_logger("daemon")

CP_META_BEFORE_WRITE = register_crash_point(
    "daemon.meta.before-write",
    "die while refreshing daemon.json (heartbeat goes stale; a successor "
    "must be able to claim the control directory)",
)

# Responses already sent, kept so a redelivered request id (a client retry
# after a connection died post-send) replays the answer instead of applying
# the operation twice.  Bounded: old entries fall off; by then the retry
# window (seconds) is long past.
IDEMPOTENCY_CACHE_SIZE = 256

STATE_RUNNING = "running"
STATE_DRAINING = "draining"
STATE_STOPPED = "stopped"


# ---------------------------------------------------------------------------
# Workload registry
# ---------------------------------------------------------------------------


def _classifier_workload(params: Dict) -> Callable[[], object]:
    """Builtin workload: the moons variational classifier used everywhere.

    JSON-parameterized so submissions never carry code: ``qubits``,
    ``layers``, ``lr``, ``samples``, ``batch_size``, ``seed``,
    ``gradient_method`` (``"parameter-shift"`` makes the job's gradients
    shardable under ``FleetJobSpec.shard_workers``).
    """
    from repro.ml.dataset import make_moons
    from repro.ml.models import VariationalClassifier
    from repro.ml.optimizers import Adam
    from repro.ml.trainer import Trainer, TrainerConfig
    from repro.quantum.templates import hardware_efficient

    qubits = int(params.get("qubits", 4))
    layers = int(params.get("layers", 2))
    lr = float(params.get("lr", 0.01))
    samples = int(params.get("samples", 64))
    batch_size = int(params.get("batch_size", 8))
    seed = int(params.get("seed", 11))
    gradient_method = str(params.get("gradient_method", "adjoint"))

    def make():
        model = VariationalClassifier(
            hardware_efficient(qubits, layers),
            gradient_method=gradient_method,
        )
        dataset = make_moons(samples, np.random.default_rng(seed))
        return Trainer(
            model,
            Adam(lr=lr),
            dataset=dataset,
            config=TrainerConfig(batch_size=batch_size, seed=seed),
        )

    return make


#: Name -> builder; a builder maps JSON params to a trainer factory.
BUILTIN_WORKLOADS: Dict[str, Callable[[Dict], Callable[[], object]]] = {
    "classifier": _classifier_workload,
}


# ---------------------------------------------------------------------------
# Daemon
# ---------------------------------------------------------------------------


@dataclass
class DaemonConfig:
    """Knobs of the scheduler loop."""

    tick_seconds: float = 0.02  # idle sleep between scheduler passes
    heartbeat_seconds: float = 0.5  # daemon.json refresh cadence
    stale_after_seconds: float = 5.0  # older heartbeat = daemon presumed dead
    rebalance_every_ticks: int = 0  # 0 disables the periodic placement sweep
    restart_delay_ticks: int = 1  # default reincarnation delay on preempt
    max_ticks: Optional[int] = None  # loop bound for tests; None = forever
    # Compact the placement journal during serve() once its record count
    # exceeds this (checked at heartbeat cadence, guarded by the journal's
    # ``compact`` lease).  0 = compact only at drain, as PR 4 did — a
    # week-long daemon would then fold pin/lease history only on exit.
    compact_journal_records: int = 512
    # How long a socket connection thread waits for the scheduler loop to
    # answer before self-reporting a timeout envelope.  Requests are only
    # handled between scheduler passes, and a pass's duration is bounded
    # by the slowest training steps in flight — size this to the workload,
    # not the network.
    socket_response_timeout_seconds: float = 60.0
    # Cadence of metrics-snapshot records appended to <obs>/metrics.jsonl
    # while serving (only when an obs directory is configured).  0 disables
    # the periodic export; the shutdown snapshot is always written.
    metrics_export_seconds: float = 5.0
    # Cadence of registry samples into <obs>/timeseries.db and of health
    # rule evaluation.  None = the heartbeat cadence; 0 disables both the
    # sampler and in-loop health (the `health` op still evaluates fresh).
    obs_sample_seconds: Optional[float] = None
    # Retention window of the timeseries history (seconds).
    timeseries_retention_seconds: float = DEFAULT_RETENTION_SECONDS

    def __post_init__(self) -> None:
        if self.tick_seconds < 0:
            raise ConfigError(
                f"tick_seconds must be >= 0, got {self.tick_seconds}"
            )
        if self.heartbeat_seconds <= 0:
            raise ConfigError(
                f"heartbeat_seconds must be > 0, got {self.heartbeat_seconds}"
            )
        if self.stale_after_seconds <= self.heartbeat_seconds:
            raise ConfigError(
                "stale_after_seconds must exceed heartbeat_seconds "
                f"({self.stale_after_seconds} vs {self.heartbeat_seconds})"
            )
        if self.rebalance_every_ticks < 0:
            raise ConfigError(
                f"rebalance_every_ticks must be >= 0, "
                f"got {self.rebalance_every_ticks}"
            )
        if self.restart_delay_ticks < 0:
            raise ConfigError(
                f"restart_delay_ticks must be >= 0, "
                f"got {self.restart_delay_ticks}"
            )
        if self.compact_journal_records < 0:
            raise ConfigError(
                f"compact_journal_records must be >= 0, "
                f"got {self.compact_journal_records}"
            )
        if self.socket_response_timeout_seconds <= 0:
            raise ConfigError(
                f"socket_response_timeout_seconds must be > 0, "
                f"got {self.socket_response_timeout_seconds}"
            )
        if self.metrics_export_seconds < 0:
            raise ConfigError(
                f"metrics_export_seconds must be >= 0, "
                f"got {self.metrics_export_seconds}"
            )
        if (
            self.obs_sample_seconds is not None
            and self.obs_sample_seconds < 0
        ):
            raise ConfigError(
                f"obs_sample_seconds must be >= 0 or None, "
                f"got {self.obs_sample_seconds}"
            )
        if self.timeseries_retention_seconds <= 0:
            raise ConfigError(
                f"timeseries_retention_seconds must be > 0, "
                f"got {self.timeseries_retention_seconds}"
            )

    @property
    def resolved_obs_sample_seconds(self) -> float:
        """The sampler/health cadence (heartbeat cadence when unset)."""
        if self.obs_sample_seconds is None:
            return self.heartbeat_seconds
        return self.obs_sample_seconds


class DaemonAlreadyRunning(ReproError):
    """A live daemon already owns this control directory."""


class DaemonUnavailable(ReproError):
    """No live daemon is answering: dead heartbeat or unreachable socket."""


def _control_backend(control) -> StorageBackend:
    if isinstance(control, StorageBackend):
        return control
    # Control traffic is transient request/response objects: atomic replace
    # matters (readers must never see torn JSON), fsync does not.
    return LocalDirectoryBackend(control, fsync=False)


def _read_control_meta(control: StorageBackend) -> Optional[Dict]:
    """Parse ``daemon.json`` from a control directory (``None`` if absent
    or unreadable) — shared by the daemon's claim check and the client's
    liveness probe so their tolerance rules cannot drift."""
    if not control.exists(META_NAME):
        return None
    try:
        return json.loads(control.read(META_NAME).decode("utf-8"))
    except (StorageError, UnicodeDecodeError, json.JSONDecodeError):
        return None


def _effective_stale_after(meta: Dict, floor: float) -> float:
    """Trust the incumbent daemon's own advertised staleness threshold when
    it is laxer than the observer's: a daemon configured with a slow
    heartbeat cadence must not be presumed dead — by a client *or* by a
    rival ``start`` — just because the observer assumed the default."""
    try:
        advertised = float(meta.get("stale_after_seconds") or 0.0)
    except (TypeError, ValueError):
        advertised = 0.0
    return max(floor, advertised)


class FleetDaemon(JobLifecycle):
    """The scheduler loop of a checkpoint service, run as a daemon.

    One instance per control directory; construct with the shared
    :class:`~repro.service.chunkstore.ChunkStore` and
    :class:`~repro.service.pool.WriterPool`, then call :meth:`serve` (which
    blocks until drained/stopped).  Everything else — submissions, status,
    drain — arrives through the control plane.

    The control *directory* is mandatory (it carries the single-instance
    lock and heartbeat) and always doubles as the file transport.  With
    ``listen="host:port"`` the daemon additionally serves the same op set
    over TCP (see :class:`~repro.service.transport.SocketTransport`);
    ``auth_token`` is the socket's shared secret.  ``transports`` injects
    extra pre-built transports (tests, embedders).  All transports are
    polled from the one scheduler loop, so handlers never race.
    """

    def __init__(
        self,
        store: ChunkStore,
        pool: WriterPool,
        control,
        config: Optional[DaemonConfig] = None,
        workloads: Optional[Dict[str, Callable]] = None,
        daemon_id: Optional[str] = None,
        listen: "Optional[str | tuple]" = None,
        auth_token: Optional[str] = None,
        transports: "tuple[ControlTransport, ...]" = (),
        metrics: Optional[MetricsRegistry] = None,
        obs_dir=None,
        health_rules: "Optional[List[HealthRule]]" = None,
    ):
        super().__init__(store, pool)
        self.control = _control_backend(control)
        # One registry for the whole daemon: default to the store's so the
        # stack wired by `qckpt daemon start` (tiered backend, chunk store,
        # pool, daemon) shares a single set of series.
        self.metrics = (
            metrics if metrics is not None else store.metrics
        )
        self._obs = ObsDir(obs_dir) if obs_dir is not None else None
        self.config = config or DaemonConfig()
        self.workloads = dict(BUILTIN_WORKLOADS)
        if workloads:
            self.workloads.update(workloads)
        self.daemon_id = daemon_id or f"daemon-{uuid.uuid4().hex[:8]}"
        self.socket_transport: Optional[SocketTransport] = None
        if listen is not None:
            host, port = parse_address(listen)
            self.socket_transport = SocketTransport(
                host,
                port,
                auth_token=auth_token,
                response_timeout_seconds=(
                    self.config.socket_response_timeout_seconds
                ),
            )
        elif auth_token is not None:
            raise ConfigError(
                "auth_token only guards the socket transport; pass listen= too"
            )
        self.transports: List[ControlTransport] = [
            FileTransport(self.control)
        ]
        if self.socket_transport is not None:
            self.transports.append(self.socket_transport)
        self.transports.extend(transports)
        self.state = STATE_STOPPED
        self.tick = 0
        self._jobs: Dict[str, _JobRuntime] = {}
        self._prefetches: Dict[str, object] = {}  # job id -> PrefetchedPlan
        self._stop_requested = False
        self._started_at: Optional[float] = None
        self._last_heartbeat = 0.0
        self._hb_stop = threading.Event()
        self._sched_clock = 0.0  # virtual time of the last scheduled tick
        # Registry-backed daemon counters; the baseline keeps a second
        # daemon over the same (shared-registry) store counting from zero.
        self._c_requests = self.metrics.counter("daemon.requests_served")
        self._c_compactions = self.metrics.counter(
            "daemon.journal_compactions"
        )
        self._c_duplicates = self.metrics.counter("daemon.duplicate_requests")
        self._c_base = {
            "requests": self._c_requests.value,
            "compactions": self._c_compactions.value,
            "duplicates": self._c_duplicates.value,
        }
        self._served_responses: "OrderedDict[str, Dict]" = OrderedDict()
        # Observatory state: the timeseries history (opened in serve()
        # when an obs dir exists), its sampler, and the health engine's
        # most recent report (written into daemon.json by the heartbeat).
        self.timeseries: Optional[TimeSeriesDB] = None
        self._sampler: Optional[TimeSeriesSampler] = None
        self._health = HealthEngine(health_rules)
        self._health_report: Optional[HealthReport] = None

    @property
    def requests_served(self) -> int:
        return int(self._c_requests.value - self._c_base["requests"])

    @property
    def journal_compactions(self) -> int:
        return int(self._c_compactions.value - self._c_base["compactions"])

    @property
    def duplicate_requests(self) -> int:
        return int(self._c_duplicates.value - self._c_base["duplicates"])

    @property
    def listen_address(self) -> Optional[str]:
        """``host:port`` the socket transport serves (post-start resolves
        a requested port 0 to the actual bound port), or ``None``."""
        if self.socket_transport is None:
            return None
        return self.socket_transport.address

    # -- workloads --------------------------------------------------------------

    def register_workload(
        self, name: str, builder: Callable[[Dict], Callable[[], object]]
    ) -> None:
        """Add/replace a named workload recipe (tests, embedders)."""
        if not name:
            raise ConfigError("workload name must be non-empty")
        self.workloads[name] = builder

    # -- daemon.json ------------------------------------------------------------

    def _read_meta(self) -> Optional[Dict]:
        return _read_control_meta(self.control)

    def _sync_job_registry(self) -> None:
        """Mirror the job table into the metadata index's registry rows.

        Best-effort (the index is a cache): with rows in place, ``status``
        against a 10k-job store is one ``COUNT``/``SELECT`` instead of
        deserializing every job's history out of daemon.json.
        """
        db = getattr(self.store, "metadb", None)
        if db is None:
            return
        try:
            for job in list(self._jobs.values()):
                if job.done:
                    state = "failed" if job.error is not None else "finished"
                elif job.trainer is None:
                    state = "down"
                else:
                    state = "running"
                db.upsert_daemon_job(
                    job.spec.job_id,
                    self.daemon_id,
                    state,
                    job.spec.priority,
                )
        except StorageError:
            pass

    def _write_meta(self) -> None:
        # One snapshot of the job table: the background heartbeat thread
        # calls this while the scheduler thread may be inserting a newly
        # submitted job, and two separate iterations would double the
        # exposure to a size change mid-iteration.
        self._sync_job_registry()
        jobs = list(self._jobs.values())
        meta = {
            "daemon_id": self.daemon_id,
            "pid": os.getpid(),
            "state": self.state,
            "started": self._started_at,
            "heartbeat": time.time(),
            "tick": self.tick,
            "jobs": len(jobs),
            "active_jobs": sum(1 for job in jobs if not job.done),
            # Advertised so clients judge staleness by *this* daemon's
            # cadence instead of assuming the default.
            "heartbeat_seconds": self.config.heartbeat_seconds,
            "stale_after_seconds": self.config.stale_after_seconds,
            # Compact per-heartbeat summary so `qckpt status` (file
            # transport, no round trip) surfaces fleet health; the full
            # labeled series ride the `metrics` op.
            "metrics": {
                "epoch": self.metrics.epoch,
                "requests_served": self.requests_served,
                "dedup_ratio": self.store.stats.dedup_ratio,
                "queue_depth": self.pool.pending,
            },
        }
        report = self._health_report
        if report is not None:
            meta["health"] = {
                "verdict": report.verdict,
                "ts": report.ts,
                "firing": [f.rule for f in report.firing],
            }
        for transport in self.transports:
            meta.update(transport.describe())
        crash_point(CP_META_BEFORE_WRITE)
        self.control.write(
            META_NAME, json.dumps(meta, sort_keys=True).encode("utf-8")
        )
        self._last_heartbeat = time.monotonic()

    def _claim_control(self) -> None:
        meta = self._read_meta()
        if meta is not None and meta.get("state") != STATE_STOPPED:
            age = time.time() - float(meta.get("heartbeat", 0.0))
            stale_after = _effective_stale_after(
                meta, self.config.stale_after_seconds
            )
            if age < stale_after:
                raise DaemonAlreadyRunning(
                    f"daemon {meta.get('daemon_id')!r} (pid "
                    f"{meta.get('pid')}) already serves this control "
                    f"directory (heartbeat {age:.1f}s ago); "
                    "drain it first or pick another --control"
                )
        self._started_at = time.time()
        self.state = STATE_RUNNING
        self._write_meta()

    # -- control plane ----------------------------------------------------------

    def _poll_control(self) -> int:
        """Serve every pending request on every transport; returns count.

        File and socket requests feed the same :meth:`_handle` dispatch —
        the transports only differ in how bytes arrive and leave.  A bad
        request must never kill the daemon; the error goes back to the
        requester as an envelope instead.
        """
        handled = 0
        for transport in self.transports:
            for pending in transport.poll():
                cached = self._served_responses.get(pending.request_id)
                if cached is not None:
                    # A retried delivery (same request id): replay the
                    # answer so the op — a submit, a preempt — is applied
                    # exactly once no matter how often the client resends.
                    self._c_duplicates.inc()
                    pending.respond(dict(cached))
                    handled += 1
                    continue
                if pending.request is None:
                    response = {"ok": False, "error": "unreadable request"}
                else:
                    response = self._handle_traced(
                        pending.request, pending.transport
                    )
                response["id"] = pending.request_id
                if pending.request is not None:
                    self._served_responses[pending.request_id] = dict(response)
                    while len(self._served_responses) > IDEMPOTENCY_CACHE_SIZE:
                        self._served_responses.popitem(last=False)
                pending.respond(response)
                handled += 1
                self._c_requests.inc()
        return handled

    def _handle_traced(self, request: Dict, transport: str) -> Dict:
        """Dispatch one request under a span joined to the client's trace.

        The client ships its trace context in the request body
        (``"trace"``, see :func:`repro.obs.trace.wire_context`); opening
        the handling span as its child makes the daemon-side span tree —
        including pool tasks and backend writes triggered while handling —
        part of the client's trace.  Handle latency lands in the
        ``daemon.handle_seconds`` histogram, labeled by op.
        """
        op = str(request.get("op"))
        parent = obs_trace.parse_context(request.get(obs_trace.TRACE_KEY))
        started = time.perf_counter()
        with obs_trace.span_scope(
            f"daemon.{op}", parent=parent, transport=transport
        ):
            try:
                response = self._handle(request)
            except Exception as exc:  # noqa: BLE001
                response = {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
        self.metrics.histogram("daemon.handle_seconds", op=op).observe(
            time.perf_counter() - started
        )
        return response

    def _handle(self, request: Dict) -> Dict:
        op = request.get("op")
        if op == "ping":
            return {
                "ok": True,
                "state": self.state,
                "tick": self.tick,
                "daemon_id": self.daemon_id,
            }
        if op == "submit":
            return self._op_submit(request.get("spec") or {})
        if op == "status":
            return self._op_status(request.get("job"))
        if op == "drain":
            if self.state == STATE_RUNNING:
                self.state = STATE_DRAINING
            return {"ok": True, "state": self.state}
        if op == "stop":
            self._stop_requested = True
            return {"ok": True, "state": self.state}
        if op == "preempt":
            return self._op_preempt(
                request.get("job"), request.get("restart_delay_ticks")
            )
        if op == "metrics":
            return self._op_metrics()
        if op == "metrics_text":
            return self._op_metrics_text()
        if op == "health":
            return self._op_health()
        if op == "series":
            return self._op_series(request)
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _op_submit(self, spec: Dict) -> Dict:
        if self.state != STATE_RUNNING:
            return {
                "ok": False,
                "error": f"daemon is {self.state}; not accepting jobs",
            }
        job_id = spec.get("job_id")
        if not job_id:
            return {"ok": False, "error": "submission needs a job_id"}
        existing = self._jobs.get(job_id)
        if existing is not None and not existing.done:
            return {"ok": False, "error": f"job {job_id!r} is already active"}
        workload = spec.get("workload", "classifier")
        builder = self.workloads.get(workload)
        if builder is None:
            return {
                "ok": False,
                "error": f"unknown workload {workload!r} "
                f"(have: {sorted(self.workloads)})",
            }
        factory = builder(dict(spec.get("params") or {}))
        job_spec = FleetJobSpec(
            job_id=job_id,
            trainer_factory=factory,
            target_steps=int(spec.get("target_steps", 1)),
            checkpoint_every=int(spec.get("checkpoint_every", 1)),
            max_pending=int(spec.get("max_pending", 2)),
            backpressure=str(spec.get("backpressure", "block")),
            save_on_start=bool(spec.get("save_on_start", True)),
            restore_mode=str(spec.get("restore_mode", "exact")),
            priority=int(spec.get("priority", 1)),
            shard_workers=int(spec.get("shard_workers", 0)),
        )
        job = _JobRuntime(job_spec)
        # A re-submitted job id *resumes* its history: the fresh incarnation
        # restores from the store if it ever checkpointed there.  With a
        # metadata index attached this probe is one point query instead of
        # a per-submit store listing.
        resumable = self.store.has_checkpoints(job_id)
        self._start_job(job, self.tick, fresh=not resumable)
        self._sched_join(job)
        self._jobs[job_id] = job
        self._sync_job_registry()
        return {
            "ok": True,
            "job": job_id,
            "resumed_from_step": (
                job.result.resumed_from_steps[-1] if resumable else 0
            ),
            "submitted_at_tick": self.tick,
        }

    def _job_status(self, job: _JobRuntime) -> Dict:
        if job.done:
            state = "failed" if job.error is not None else "finished"
        elif job.trainer is None:
            state = "down"
        else:
            state = "running"
        result = job.result
        return {
            "state": state,
            "error": job.error,
            "step": job.trainer.step_count if job.trainer else None,
            "target_steps": job.spec.target_steps,
            "final_step": result.final_step,
            "steps_executed": result.steps_executed,
            "preemptions": result.preemptions,
            "restores": result.restores,
            "lost_steps": result.lost_steps,
            "resumed_from_steps": list(result.resumed_from_steps),
            "down_until_tick": job.down_until,
            "finish_tick": result.finish_tick,
            "prefetching_restore": job.spec.job_id in self._prefetches,
            "priority": job.spec.priority,
            "ticks_scheduled": job.ticks_scheduled,
            "metrics": self._job_metrics(job),
        }

    def _job_metrics(self, job: _JobRuntime) -> Dict:
        """Per-job latency summary from the shared registry, if present."""
        job_id = job.spec.job_id
        summary: Dict = {
            "queue_depth": (
                job.channel.pending if job.channel is not None else 0
            ),
        }
        saves = self.metrics.find("save.seconds", job=job_id)
        if saves is not None and saves.count:
            summary["saves"] = saves.count
            summary["save_mean_seconds"] = saves.mean
            summary["save_p50_seconds"] = saves.quantile(0.5)
            summary["save_p99_seconds"] = saves.quantile(0.99)
        restores = self.metrics.find("restore.seconds", job=job_id)
        if restores is not None and restores.count:
            summary["restores"] = restores.count
            summary["restore_mean_seconds"] = restores.mean
            summary["restore_p99_seconds"] = restores.quantile(0.99)
        return summary

    def _sched_total_ticks(self) -> int:
        return sum(job.ticks_scheduled for job in self._jobs.values())

    def _op_status(self, job_id: Optional[str]) -> Dict:
        # Scheduling shares are fractions of *all* ticks ever granted, so a
        # single-job query still reports its share of the contended loop.
        total_ticks = self._sched_total_ticks()

        def status_of(job: _JobRuntime) -> Dict:
            status = self._job_status(job)
            status["sched_share"] = (
                job.ticks_scheduled / total_ticks if total_ticks else 0.0
            )
            return status

        if job_id is not None:
            job = self._jobs.get(job_id)
            if job is None:
                return {"ok": False, "error": f"unknown job {job_id!r}"}
            return {
                "ok": True,
                "state": self.state,
                "tick": self.tick,
                "jobs": {job_id: status_of(job)},
            }
        response = {
            "ok": True,
            "state": self.state,
            "tick": self.tick,
            "daemon_id": self.daemon_id,
            "requests_served": self.requests_served,
            "sched_total_ticks": total_ticks,
            "jobs": {
                job_id: status_of(job)
                for job_id, job in self._jobs.items()
            },
        }
        db = getattr(self.store, "metadb", None)
        if db is not None:
            try:
                response["registry_jobs"] = db.count_daemon_jobs()
            except StorageError:
                pass
        report = self._health_report
        if report is not None:
            response["health"] = {
                "verdict": report.verdict,
                "firing": [f.rule for f in report.firing],
            }
        return response

    # -- metrics ------------------------------------------------------------------

    def _find_reliable(self):
        """Walk the backend decorator chain for a ReliableBackend, if any."""
        backend = getattr(self.store, "backend", None)
        seen = 0
        while backend is not None and seen < 16:
            if isinstance(backend, ReliableBackend):
                return backend
            backend = getattr(backend, "inner", None)
            seen += 1
        return None

    def _reliability_state(self) -> Optional[Dict]:
        reliable = self._find_reliable()
        if reliable is None:
            return None
        state: Dict = {
            "retries": reliable.stats.retries,
            "recovered_ops": reliable.stats.recovered_ops,
            "exhausted_ops": reliable.stats.exhausted_ops,
            "rejected_ops": reliable.stats.rejected_ops,
        }
        breaker = getattr(reliable, "breaker", None)
        if breaker is not None:
            state["breaker_state"] = breaker.state
            state["breaker_opens"] = breaker.opens
        return state

    def _refresh_gauges(self) -> None:
        """Point-in-time gauges sampled at snapshot/export time.

        Queue depths and transport counters live as plain attributes on
        their owners (tests assert them directly); mirroring them into
        gauges only when a snapshot is taken keeps the hot paths free of
        registry traffic.
        """
        self.metrics.gauge("daemon.active_jobs").set(self._active_jobs())
        self.metrics.gauge("pool.queue_depth").set(self.pool.pending)
        for job_id, job in self._jobs.items():
            if job.channel is not None:
                self.metrics.gauge("channel.queue_depth", job=job_id).set(
                    job.channel.pending
                )
        if self.socket_transport is not None:
            sock = self.socket_transport
            self.metrics.gauge("transport.connections_accepted").set(
                sock.connections_accepted
            )
            self.metrics.gauge("transport.auth_failures").set(
                sock.auth_failures
            )
            self.metrics.gauge("transport.frame_errors").set(
                sock.frame_errors
            )
        reliability = self._reliability_state()
        if reliability is not None and "breaker_state" in reliability:
            self.metrics.gauge("reliability.breaker_open").set(
                0 if reliability["breaker_state"] == "closed" else 1
            )

    def _op_metrics(self) -> Dict:
        from repro.quantum import engines

        self._refresh_gauges()
        queues = {
            job_id: job.channel.pending
            for job_id, job in self._jobs.items()
            if job.channel is not None
        }
        # Engine/shard series live in the process-global engines registry
        # (one engine ladder per process, not per daemon); fold them into
        # this daemon's snapshot so one metrics op shows both layers.  Names
        # are disjoint (engine.* / shard.* vs store/pool/job series), so a
        # plain concatenation keeps the snapshot well-formed.
        snapshot = self.metrics.snapshot()
        engine_series = engines.metrics_snapshot().get("series") or []
        if engine_series:
            snapshot["series"] = list(snapshot.get("series") or []) + list(
                engine_series
            )
        response: Dict = {
            "ok": True,
            "daemon_id": self.daemon_id,
            "state": self.state,
            "tick": self.tick,
            "epoch": self.metrics.epoch,
            "metrics": snapshot,
            "dedup_ratio": self.store.stats.dedup_ratio,
            "active_jobs": self._active_jobs(),
            "queues": queues,
        }
        reliability = self._reliability_state()
        if reliability is not None:
            response["reliability"] = reliability
        return response

    def _op_metrics_text(self) -> Dict:
        """Prometheus text exposition of the full snapshot (engine series
        included) — the scrape surface behind ``qckpt metrics --prom``."""
        snapshot = self._op_metrics()["metrics"]
        return {
            "ok": True,
            "daemon_id": self.daemon_id,
            "text": prometheus_text(snapshot),
        }

    def _op_health(self) -> Dict:
        """Evaluate the health rules fresh and report the verdict."""
        self._refresh_gauges()
        report = self._health.evaluate(
            self.metrics.snapshot(), self.timeseries
        )
        self._health_report = report
        return {
            "ok": True,
            "daemon_id": self.daemon_id,
            "state": self.state,
            "tick": self.tick,
            "health": report.to_dict(),
            "rules": [rule.to_dict() for rule in self._health.rules],
        }

    def _op_series(self, request: Dict) -> Dict:
        """Windowed sample history of one metric, per label set.

        Feeds `qckpt top`'s sparkline/rate columns: each series returns
        its in-window points (``[ts, epoch, cumulative]``) plus an
        epoch-aware windowed rate (never negative, never spanning a
        restart; ``None`` without two same-epoch samples).
        """
        if self.timeseries is None:
            return {
                "ok": False,
                "error": "no timeseries history (daemon has no obs dir)",
            }
        name = str(request.get("name") or "save.seconds")
        window = float(request.get("window", 120.0))
        limit = min(int(request.get("limit", 64)), 512)
        now = time.time()
        series = []
        try:
            for labels in self.timeseries.label_sets(name):
                samples = self.timeseries.query(
                    name, labels=labels, since=now - window, limit=limit
                )
                series.append(
                    {
                        "labels": labels,
                        "points": [
                            [round(s.ts, 3), s.epoch, s.cumulative]
                            for s in samples
                        ],
                        "rate": rate_from_samples(samples),
                    }
                )
        except StorageError as exc:
            return {"ok": False, "error": str(exc)}
        return {"ok": True, "name": name, "window": window, "series": series}

    def _obs_tick(self) -> None:
        """One observatory pass: refresh gauges, sample history, judge
        health.  Best-effort — observability never takes the loop down."""
        self._refresh_gauges()
        if self._sampler is not None:
            self._sampler.sample()
        try:
            self._health_report = self._health.evaluate(
                self.metrics.snapshot(), self.timeseries
            )
        except ReproError:
            pass

    def _op_preempt(
        self, job_id: Optional[str], delay: Optional[int]
    ) -> Dict:
        delay = (
            self.config.restart_delay_ticks if delay is None else int(delay)
        )
        if delay < 0:
            return {
                "ok": False,
                "error": f"restart_delay_ticks must be >= 0, got {delay}",
            }
        targets: List[_JobRuntime] = []
        if job_id is None:
            targets = [
                job
                for job in self._jobs.values()
                if not job.done and job.trainer is not None
            ]
        else:
            job = self._jobs.get(job_id)
            if job is None:
                return {"ok": False, "error": f"unknown job {job_id!r}"}
            if job.done or job.trainer is None:
                return {
                    "ok": False,
                    "error": f"job {job_id!r} is not running",
                }
            targets = [job]
        for job in targets:
            self._preempt_job(job, self.tick, delay)
            self._stage_restore(job)
        return {
            "ok": True,
            "preempted": sorted(job.spec.job_id for job in targets),
            "restart_delay_ticks": delay,
        }

    # -- restore read-ahead -------------------------------------------------------

    def _await_dead_channel(self, channel) -> None:
        """Sliced wait that keeps heartbeating the control file.

        A dead incarnation's in-flight save can stall for tens of seconds
        on a throttled store; one long blocking wait would let the
        heartbeat go stale and invite a second daemon to claim this
        control directory.  Waiting in heartbeat-sized slices keeps this
        daemon visibly alive the whole time.
        """
        deadline = time.monotonic() + 60.0
        slice_seconds = min(self.config.heartbeat_seconds / 2, 0.25)
        while time.monotonic() < deadline:
            if channel.wait_idle(timeout=slice_seconds):
                return
            self._write_meta()

    def _stage_restore(self, job: _JobRuntime) -> None:
        """Start read-ahead for a preempted job's reincarnation restore.

        The restart delay is dead time; spending it fetching — and, on a
        tiered store, *promoting* — the newest checkpoint's chunks means
        the actual restore finds everything already staged.  Only worth it
        when a fast tier exists to stage into: without one the restore
        cannot reuse the prefetched bytes, and staging would just read
        every chunk twice.  Best-effort: a job that never checkpointed
        simply has nothing to stage.
        """
        job_id = job.spec.job_id
        self._cancel_prefetch(job_id)
        if self.store.backend.tier_for("ch-staging-probe") is None:
            return  # no fast tier to warm; staging would double the reads
        try:
            self._prefetches[job_id] = self.store.prefetch_restore(job_id)
        except (CheckpointNotFoundError, ReproError):
            pass

    def _cancel_prefetch(self, job_id: str) -> None:
        handle = self._prefetches.pop(job_id, None)
        if handle is not None:
            handle.cancel()

    # -- the loop ----------------------------------------------------------------

    def _park_failed(self, job: _JobRuntime, exc: BaseException) -> None:
        """Terminal failure of one job: record it, release its resources.

        The channel is abandoned (crash semantics) so the pool hands a
        *fresh* channel — with no stale queue or pending error — to any
        later resubmission of the same job id.
        """
        job.error = str(exc)
        job.result.finish_tick = self.tick
        job.done = True
        self._absorb_channel_stats(job)
        if job.channel is not None:
            job.channel.abandon()
            job.channel = None
        job.manager = None
        job.trainer = None
        job.dead_channel = None
        self._cancel_prefetch(job.spec.job_id)

    def _heartbeat_if_due(self) -> None:
        """Refresh ``daemon.json`` if the cadence elapsed (cheap check).

        Called between individual job steps inside a scheduler pass, not
        just between passes: a pass advances every runnable job one
        training step, so its duration is unbounded (many jobs, wide
        circuits) and one long pass must not let the heartbeat go stale —
        clients would presume this daemon dead and a rival ``start``
        could claim the control directory out from under it.
        """
        if (
            time.monotonic() - self._last_heartbeat
            >= self.config.heartbeat_seconds
        ):
            self._write_meta()

    def _heartbeat_loop(self) -> None:
        """Background heartbeat covering what the loop's checks cannot.

        The in-loop refreshes run *between* steps; a single training step
        is opaque to the scheduler and can outlast the staleness window on
        wide circuits.  This thread keeps ``daemon.json`` fresh regardless
        of what the scheduler thread is grinding through, so "stale
        heartbeat" means dead-or-hung process, never just a slow step.
        """
        while not self._hb_stop.wait(self.config.heartbeat_seconds / 2):
            try:
                self._heartbeat_if_due()
            except Exception:  # noqa: BLE001 - liveness is best-effort;
                # a transient failure (control-dir hiccup, a job-table
                # resize caught mid-snapshot) must not kill the thread —
                # a silently dead heartbeat is the one failure mode this
                # thread exists to rule out.  The next beat retries.
                pass

    def _sched_join(self, job: _JobRuntime) -> None:
        """Enter ``job`` into the weighted scheduler at the current clock.

        A job joining (fresh submission) or re-joining (reincarnation)
        starts at the scheduler's virtual time instead of its own frozen
        pass — otherwise a job that sat out 500 ticks would monopolize the
        loop "catching up" and starve every incumbent.
        """
        job.sched_pass = max(job.sched_pass, self._sched_clock)

    def _tick_once(self) -> bool:
        """One scheduler pass; returns whether any job advanced."""
        progressed = False
        # 1. reincarnate preempted jobs whose delay elapsed
        for job in self._jobs.values():
            if (
                not job.done
                and job.trainer is None
                and job.down_until is not None
                and self.tick >= job.down_until
            ):
                try:
                    self._recover_job(job, self.tick)
                    self._sched_join(job)
                except ReproError as exc:
                    # A failed restore must not take the daemon (or its
                    # neighbours) down: park this job, keep serving.
                    self._park_failed(job, exc)
                # The read-ahead did its job (promotion/staging); drop the
                # handle so its buffers are released.
                self._cancel_prefetch(job.spec.job_id)
                self._heartbeat_if_due()  # restores can be slow
                progressed = True
        # 2. advance runnable jobs by weighted round-robin (stride
        # scheduling).  The pass grants as many training-step slots as
        # there are runnable jobs — identical total throughput to the old
        # everyone-advances loop — but each slot goes to the runnable job
        # with the *smallest virtual pass*, and a scheduled job's pass
        # advances by 1/priority.  Shares therefore converge to the
        # priority ratio, and a waiting job's pass stands still, which
        # bounds how long it can be passed over: starvation-free.
        runnable = [
            job
            for job in self._jobs.values()
            if not job.done and job.trainer is not None
        ]
        for _ in range(len(runnable)):
            job = min(runnable, key=lambda j: (j.sched_pass, j.spec.job_id))
            self._sched_clock = job.sched_pass
            job.sched_pass += 1.0 / job.spec.priority
            job.ticks_scheduled += 1
            progressed = True
            try:
                self._advance_job(job, self.tick)
            except ReproError as exc:
                self._park_failed(job, exc)
            self._heartbeat_if_due()  # a pass of N slow steps is unbounded
            if job.done or job.trainer is None:
                runnable.remove(job)
                if not runnable:
                    break
        # 3. periodic placement sweep (lease-gated when a journal is set)
        every = self.config.rebalance_every_ticks
        if every > 0 and self.tick > 0 and self.tick % every == 0:
            try:
                self.store.rebalance_tiers()
            except ReproError:
                pass  # placement is advisory; the sweep retries next period
        self.tick += 1
        return progressed

    def _active_jobs(self) -> int:
        return sum(1 for job in self._jobs.values() if not job.done)

    def serve(self) -> None:
        """Run the daemon loop until stopped or drained (blocking).

        Raises :class:`DaemonAlreadyRunning` when a live daemon already
        heartbeats this control directory, and
        :class:`~repro.errors.TransportError` when a socket transport
        cannot bind its address.
        """
        self._claim_control()
        heartbeat_thread: Optional[threading.Thread] = None
        previous_sink = None
        if self._obs is not None:
            # Resume the cumulative series from the last clean shutdown
            # (bumping the epoch so rate readers can see the gap), then
            # start streaming spans to the bounded trace log.
            self.metrics.load(self._obs.registry_path)
            previous_sink = obs_trace.set_trace_sink(self._obs.trace_sink())
            if self.config.resolved_obs_sample_seconds > 0:
                try:
                    self.timeseries = TimeSeriesDB(
                        self._obs.root / TIMESERIES_FILENAME,
                        retention_seconds=(
                            self.config.timeseries_retention_seconds
                        ),
                        metrics=self.metrics,
                    )
                    self._sampler = TimeSeriesSampler(
                        self.timeseries,
                        self.metrics,
                        interval_seconds=(
                            self.config.resolved_obs_sample_seconds
                        ),
                    )
                except (StorageError, OSError):
                    # History is optional; the daemon serves without it
                    # (sparkline/rate columns and windowed rules go dark).
                    self.timeseries = None
                    self._sampler = None
        next_metrics_export = 0.0
        next_obs_tick = 0.0
        try:
            for transport in self.transports:
                transport.start()
                _log.info(
                    "transport-start",
                    daemon=self.daemon_id,
                    transport=transport.name,
                )
            # Re-advertise now that transports are live: a socket transport
            # asked to listen on port 0 only knows its real port post-bind.
            self._write_meta()
            _log.info(
                "serving",
                daemon=self.daemon_id,
                control=str(getattr(self.control, "root", "")),
                listen=self.listen_address or "-",
            )
            self._hb_stop.clear()
            heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"qckpt-heartbeat-{self.daemon_id}",
                daemon=True,
            )
            heartbeat_thread.start()
            # Compaction keeps its own clock: heartbeats are refreshed
            # from several places (in-pass, background thread), so "the
            # heartbeat was due *here*" is a race this check must not
            # piggyback on — a busy daemon would never compact.
            next_compact_check = 0.0
            while not self._stop_requested:
                self._heartbeat_if_due()
                if time.monotonic() >= next_compact_check:
                    next_compact_check = (
                        time.monotonic() + self.config.heartbeat_seconds
                    )
                    self._maybe_compact_journal()
                if (
                    self._obs is not None
                    and self.config.metrics_export_seconds > 0
                    and time.monotonic() >= next_metrics_export
                ):
                    next_metrics_export = (
                        time.monotonic() + self.config.metrics_export_seconds
                    )
                    self._refresh_gauges()
                    self._obs.append_metrics(
                        self.metrics,
                        daemon_id=self.daemon_id,
                        tick=self.tick,
                    )
                if (
                    self.config.resolved_obs_sample_seconds > 0
                    and time.monotonic() >= next_obs_tick
                ):
                    next_obs_tick = (
                        time.monotonic()
                        + self.config.resolved_obs_sample_seconds
                    )
                    self._obs_tick()
                handled = self._poll_control()
                progressed = self._tick_once()
                if self.state == STATE_DRAINING and self._active_jobs() == 0:
                    break
                if (
                    self.config.max_ticks is not None
                    and self.tick >= self.config.max_ticks
                ):
                    break
                if not handled and not progressed:
                    time.sleep(self.config.tick_seconds)
        finally:
            # Close transports first: remote clients then see a refused
            # connection (daemon gone) instead of requests that hang while
            # the pool flushes below.
            for transport in self.transports:
                try:
                    transport.close()
                except (TransportError, OSError):
                    pass
                _log.info(
                    "transport-stop",
                    daemon=self.daemon_id,
                    transport=transport.name,
                )
            for job_id in list(self._prefetches):
                self._cancel_prefetch(job_id)
            try:
                self.pool.drain()
                self._compact_journal()
            finally:
                # Join the heartbeat thread *before* the terminal meta
                # write: a beat landing after "stopped" would resurrect a
                # daemon that no longer exists.
                self._hb_stop.set()
                if heartbeat_thread is not None:
                    heartbeat_thread.join(timeout=5.0)
                self.state = STATE_STOPPED
                self._write_meta()
                if self._obs is not None:
                    # Clean-shutdown persistence: the cumulative series
                    # survive the restart instead of resetting to zero
                    # (the stats-loss-on-reopen fix).
                    self._refresh_gauges()
                    self._obs.append_metrics(
                        self.metrics,
                        daemon_id=self.daemon_id,
                        tick=self.tick,
                        final=True,
                    )
                    self._obs.save_registry(self.metrics)
                    if self._sampler is not None:
                        # One terminal sample so offline readers see the
                        # final counter values in the history too.
                        self._sampler.sample()
                    if self.timeseries is not None:
                        self.timeseries.close()
                    obs_trace.set_trace_sink(previous_sink)
                _log.info(
                    "stopped",
                    daemon=self.daemon_id,
                    tick=self.tick,
                    requests=self.requests_served,
                )

    def _maybe_compact_journal(self) -> None:
        """Cadence compaction: fold the journal when its log grows long.

        PR 4 compacted only at drain, so a week-long daemon accumulated
        pin/lease history without bound and every sharing process paid
        O(history) on journal refreshes.  Checked at heartbeat cadence
        (listing the log every tick would be pure overhead) and guarded by
        the journal's own ``compact`` lease, so two daemons sharing a store
        never compact concurrently — the loser just skips its turn.

        Compacting mid-run (unlike the quiescent drain-time fold) can race
        a *sharing* daemon's concurrent append: a record the snapshot never
        saw but that sorts at or before it is folded away.  The journal is
        advisory by contract — a lost pin costs fast-tier residency until
        the owner's pin-on-save re-asserts it, never data — and this daemon
        re-asserts its own jobs' newest-manifest pins immediately after
        each compaction, so the exposure is one sharing daemon's pins for
        at most one checkpoint interval.
        """
        threshold = self.config.compact_journal_records
        if threshold <= 0:
            return
        journal = getattr(self.store, "placement_journal", None)
        if journal is None:
            return
        try:
            if len(journal.records()) > threshold and journal.compact() > 0:
                self._c_compactions.inc()
                _log.info(
                    "journal-compact",
                    daemon=self.daemon_id,
                    tick=self.tick,
                    threshold=threshold,
                )
                self._reassert_journal_pins(journal)
        except (ReproError, StorageError):
            pass  # advisory metadata; the next heartbeat retries

    def _reassert_journal_pins(self, journal) -> None:
        """Re-pin this daemon's active jobs' newest manifests post-compact.

        Idempotent (``pin`` is a no-op when the fold already shows the
        name), so the common case costs one journal refresh; only a pin
        the compaction actually raced away gets a fresh record.
        """
        pinned = journal.pinned_names()
        for job_id, job in self._jobs.items():
            if job.done:
                continue
            names = self.store.manifest_names(job_id)
            if names and names[-1] not in pinned:
                journal.pin(names[-1])

    def _compact_journal(self) -> None:
        """Fold the placement journal at shutdown (the quiescent moment).

        Pin/unpin and lease records accumulate for the daemon's whole
        lifetime; compacting on drain keeps the next daemon's journal
        refreshes O(pins), not O(history).  Best-effort — the journal is
        advisory metadata and shutdown must not fail over it.
        """
        journal = getattr(self.store, "placement_journal", None)
        if journal is None:
            return
        try:
            journal.compact()
        except (ReproError, StorageError):
            pass


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


class DaemonClient:
    """Talks to a :class:`FleetDaemon` over either control transport.

    File mode (``control=...``): every call is one request/response round
    trip over atomic file objects.  A pending request against a control
    directory whose daemon died **fails fast** — the client watches the
    ``daemon.json`` heartbeat while it waits and raises
    :class:`DaemonUnavailable` (naming the dead daemon's pid and last
    heartbeat) instead of spinning out the full timeout.

    Socket mode (``connect="host:port"``, optional ``token``): the same op
    set over the TCP wire protocol — no shared filesystem needed.
    Transport failures (refused connection, bad auth, dropped daemon)
    surface as :class:`DaemonUnavailable`.
    """

    def __init__(
        self,
        control=None,
        timeout: float = 30.0,
        connect: "Optional[str | tuple]" = None,
        token: Optional[str] = None,
        stale_after_seconds: float = 5.0,
        retry=None,
    ):
        if timeout <= 0:
            raise ConfigError(f"timeout must be > 0, got {timeout}")
        if control is None and connect is None:
            raise ConfigError(
                "DaemonClient needs a control directory or a connect address"
            )
        if stale_after_seconds <= 0:
            raise ConfigError(
                f"stale_after_seconds must be > 0, got {stale_after_seconds}"
            )
        self.control = _control_backend(control) if control is not None else None
        self.timeout = float(timeout)
        self.stale_after_seconds = float(stale_after_seconds)
        self._socket: Optional[SocketControlClient] = None
        if connect is not None:
            self._socket = SocketControlClient(
                connect, token=token, timeout=self.timeout, retry=retry
            )

    def close(self) -> None:
        """Release the cached socket connection (file mode: no-op)."""
        if self._socket is not None:
            self._socket.close()

    # -- liveness ---------------------------------------------------------------

    def daemon_meta(self) -> Optional[Dict]:
        """The daemon's last heartbeat: ``daemon.json`` in file mode, a
        ``ping`` round trip in socket mode; ``None`` when unreachable."""
        if self.control is not None:
            return _read_control_meta(self.control)
        try:
            response = self._socket.request(
                {"op": "ping"}, timeout=self.timeout
            )
        except TransportError:
            return None
        return response if response.get("ok") else None

    def is_alive(self, stale_after_seconds: Optional[float] = None) -> bool:
        """Whether a daemon is answering (socket) or heartbeating (file)."""
        meta = self.daemon_meta()
        if meta is None or meta.get("state") == STATE_STOPPED:
            return False
        if self.control is None:
            return True  # a socket answer *is* liveness; no clock involved
        stale_after = (
            self.stale_after_seconds
            if stale_after_seconds is None
            else float(stale_after_seconds)
        )
        stale_after = _effective_stale_after(meta, stale_after)
        return time.time() - float(meta.get("heartbeat", 0.0)) < stale_after

    # -- request/response -------------------------------------------------------

    #: How long a ``stopped`` daemon.json may linger before a pending
    #: request gives up on it.  A clean ``stopped`` state is ambiguous: it
    #: is permanent if nobody restarts the daemon, but a restart on a
    #: previously-used control directory spends a second or two in
    #: interpreter startup before claiming — failing on first sight would
    #: abort requests PR 4's patient client completed.
    STOPPED_GRACE_SECONDS = 3.0

    def _raise_if_daemon_dead(
        self,
        op: str,
        request_name: str,
        response_name: str,
        stopped_since: Optional[float],
    ) -> Optional[float]:
        """Fail a pending file-mode request fast when the daemon is gone.

        Stale heartbeat, or a ``stopped`` state that persists past the
        restart grace, both mean nobody will ever answer; naming the pid
        and heartbeat age makes the failure actionable ("kill -0 that
        pid") instead of a mute timeout.  Returns the updated
        ``stopped_since`` marker for the caller's poll loop.
        """
        meta = _read_control_meta(self.control)
        if meta is None:
            return None  # no daemon.json yet: a daemon may be about to start
        if self.control.exists(response_name):
            return None  # answered just now; let the poll loop consume it
        state = meta.get("state")
        age = time.time() - float(meta.get("heartbeat", 0.0))
        if state == STATE_STOPPED:
            now = time.monotonic()
            if stopped_since is None:
                return now  # first sighting: give a restart time to claim
            if now - stopped_since < self.STOPPED_GRACE_SECONDS:
                return stopped_since
            self.control.delete(request_name)
            raise DaemonUnavailable(
                f"no daemon is serving this control directory: daemon.json "
                f"names {meta.get('daemon_id')!r} (pid {meta.get('pid')}) "
                f"but it reports state 'stopped'; request {op!r} abandoned"
            )
        stale_after = _effective_stale_after(meta, self.stale_after_seconds)
        if age >= stale_after:
            self.control.delete(request_name)
            raise DaemonUnavailable(
                f"daemon {meta.get('daemon_id')!r} (pid {meta.get('pid')}) "
                f"in daemon.json last heartbeat {age:.1f}s ago (stale after "
                f"{stale_after:.1f}s) — presumed dead; request "
                f"{op!r} abandoned"
            )
        return None

    def request(
        self,
        op: str,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        **payload,
    ) -> Dict:
        """One control-plane round trip; raises on timeout or dead daemon.

        ``deadline`` (explicit, or ambient via
        :func:`repro.reliability.deadline_scope`) caps the wait below
        ``timeout``: a caller that budgeted 5 s for a whole multi-request
        operation spends at most what is left of those 5 s here, and an
        already-spent budget raises
        :class:`~repro.errors.DeadlineExceeded` before any I/O.
        """
        timeout = self.timeout if timeout is None else float(timeout)
        if deadline is None:
            deadline = current_deadline()
        if deadline is not None:
            deadline.check(f"daemon request {op!r}")
            timeout = deadline.clamp(timeout)
        body = {"op": op, **payload}
        with obs_trace.span_scope(f"client.{op}"):
            # The trace context rides the request body: computed once
            # (inside the client span, so the daemon-side tree hangs off
            # it), and a socket retry that rebuilds the frame resends the
            # *same* context — the daemon joins this client's trace
            # exactly once per logical request.
            body[obs_trace.TRACE_KEY] = obs_trace.wire_context()
            return self._request_body(op, body, timeout, deadline)

    def _request_body(
        self,
        op: str,
        body: Dict,
        timeout: float,
        deadline: Optional[Deadline],
    ) -> Dict:
        if self._socket is not None:
            try:
                return self._socket.request(body, timeout=timeout)
            except TransportError as exc:
                raise DaemonUnavailable(
                    f"daemon at {self._socket.address} is unreachable for "
                    f"{op!r}: {exc}"
                ) from exc
        request_id = uuid.uuid4().hex[:12]
        request_name = f"{REQUEST_PREFIX}{request_id}.json"
        self.control.write(
            request_name,
            json.dumps(body, sort_keys=True).encode("utf-8"),
        )
        response_name = f"{RESPONSE_PREFIX}{request_id}.json"
        give_up_at = time.monotonic() + timeout
        next_liveness_probe = time.monotonic() + 0.2
        stopped_since: Optional[float] = None
        while time.monotonic() < give_up_at:
            if self.control.exists(response_name):
                try:
                    response = json.loads(
                        self.control.read(response_name).decode("utf-8")
                    )
                except (StorageError, json.JSONDecodeError):
                    time.sleep(0.005)
                    continue
                self.control.delete(response_name)
                return response
            if time.monotonic() >= next_liveness_probe:
                next_liveness_probe = time.monotonic() + 0.2
                stopped_since = self._raise_if_daemon_dead(
                    op, request_name, response_name, stopped_since
                )
            time.sleep(0.005)
        # Leave no orphan request behind: the daemon may be gone for good.
        self.control.delete(request_name)
        if deadline is not None and deadline.expired:
            deadline.check(f"daemon request {op!r}")
        raise ConfigError(
            f"daemon did not answer {op!r} within {timeout}s "
            f"(alive={self.is_alive()})"
        )

    # -- verbs ------------------------------------------------------------------

    def ping(self, timeout: Optional[float] = None) -> Dict:
        """Round-trip liveness probe: daemon state + current tick."""
        return self.request("ping", timeout=timeout)

    def submit(self, spec: Dict, timeout: Optional[float] = None) -> Dict:
        """Submit one job spec (see :meth:`FleetDaemon._op_submit`)."""
        return self.request("submit", timeout=timeout, spec=spec)

    def status(
        self, job_id: Optional[str] = None, timeout: Optional[float] = None
    ) -> Dict:
        """Daemon state plus per-job progress (one job with ``job_id``)."""
        return self.request("status", timeout=timeout, job=job_id)

    def preempt(
        self,
        job_id: Optional[str] = None,
        restart_delay_ticks: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict:
        """Kill one job's incarnation (or every running job's with
        ``job_id=None``); each reincarnates after the restart delay."""
        return self.request(
            "preempt",
            timeout=timeout,
            job=job_id,
            restart_delay_ticks=restart_delay_ticks,
        )

    def drain(
        self,
        wait: bool = True,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Dict:
        """Ask the daemon to finish its jobs and exit.

        With ``wait`` the call returns only once ``daemon.json`` reports
        ``stopped`` (or the timeout elapses).  A ``deadline`` bounds the
        *whole* drain — the request round trip and the stop-wait draw on
        one shared budget.
        """
        timeout = self.timeout if timeout is None else float(timeout)
        if deadline is None:
            deadline = current_deadline()
        if deadline is not None:
            timeout = deadline.clamp(timeout)
        response = self.request("drain", timeout=timeout, deadline=deadline)
        if not wait:
            return response
        give_up_at = time.monotonic() + timeout
        while time.monotonic() < give_up_at:
            if deadline is not None:
                deadline.check("daemon drain wait")
            if self.control is not None:
                meta = self.daemon_meta()
                if meta is not None and meta.get("state") == STATE_STOPPED:
                    return {"ok": True, "state": STATE_STOPPED}
            else:
                try:
                    probe = self._socket.request(
                        {"op": "ping"}, timeout=min(2.0, timeout)
                    )
                    if probe.get("state") == STATE_STOPPED:
                        return {"ok": True, "state": STATE_STOPPED}
                except TransportConnectError:
                    # The daemon closes its transports on the way out, so
                    # "drain acknowledged, now refusing connections" is
                    # the remote observation of a finished drain.
                    return {"ok": True, "state": STATE_STOPPED}
                except TransportError:
                    # Answered-then-slow (long final passes, pool flush):
                    # still draining, keep waiting — a timeout is not an
                    # exit.
                    pass
            # File mode reads a local file — poll tightly.  Socket mode
            # costs the draining daemon a full request round trip per
            # probe, so back off: the stop is still observed within a
            # quarter second of the socket closing.
            time.sleep(0.01 if self.control is not None else 0.25)
        raise ConfigError(f"daemon did not stop within {timeout}s")

    def stop(self, timeout: Optional[float] = None) -> Dict:
        """Immediate shutdown: queued saves flush, running jobs halt."""
        return self.request("stop", timeout=timeout)
