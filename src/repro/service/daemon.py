"""Long-running fleet daemon: the checkpoint service as a *process*.

:class:`~repro.service.fleet.FleetHarness` runs one fixed fleet to
completion and dies with its caller; real sweep traffic (capacity scans,
architecture selection) is a *stream* of small jobs arriving while others
finish.  :class:`FleetDaemon` runs the same job lifecycle
(:class:`~repro.service.fleet.JobLifecycle` — identical crash semantics)
inside a long-lived scheduler loop that:

* accepts job submissions, status queries, drain and preemption commands
  over a **file-based control plane** — a directory of single-shot JSON
  request/response objects written through
  :class:`~repro.storage.local.LocalDirectoryBackend`'s atomic-replace
  protocol, so any process (the ``qckpt daemon`` CLI, a test, another
  daemon) can talk to it without sockets or serialization of code,
* survives job churn: jobs are created from a **workload registry** (named
  trainer recipes + JSON parameters — never unpickled callables), advance
  one step per tick, die on ``preempt``, and reincarnate through the
  shared restore pipeline after their restart delay,
* stages restores ahead of time: the moment a job is preempted the daemon
  issues :meth:`~repro.service.chunkstore.ChunkStore.prefetch_restore`,
  so the restart delay doubles as the read-ahead window and the
  reincarnation restore is tier-warm,
* coordinates placement across daemons: with a
  :class:`~repro.storage.placement.PlacementJournal` on the store, pins
  are durable/shared and the periodic ``rebalance_tiers()`` sweep runs
  under the journal's ``rebalance`` lease.

Liveness and single-instance are both carried by ``daemon.json`` in the
control directory: the daemon heartbeats it; a second ``start`` against a
fresh heartbeat is refused; clients treat a stale heartbeat as daemon-down.

Operator surface (see ``docs/OPERATIONS.md``)::

    qckpt daemon start  <store> --control <dir>     # run the loop (foreground)
    qckpt daemon submit --control <dir> --job lr01 --steps 8 --lr 0.02
    qckpt daemon status --control <dir> [--job lr01]
    qckpt daemon drain  --control <dir>             # finish jobs, then exit
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import (
    CheckpointNotFoundError,
    ConfigError,
    ReproError,
    StorageError,
)
from repro.service.chunkstore import ChunkStore
from repro.service.fleet import FleetJobSpec, JobLifecycle, _JobRuntime
from repro.service.pool import WriterPool
from repro.storage.backend import StorageBackend
from repro.storage.local import LocalDirectoryBackend

META_NAME = "daemon.json"
REQUEST_PREFIX = "req-"
RESPONSE_PREFIX = "res-"

STATE_RUNNING = "running"
STATE_DRAINING = "draining"
STATE_STOPPED = "stopped"


# ---------------------------------------------------------------------------
# Workload registry
# ---------------------------------------------------------------------------


def _classifier_workload(params: Dict) -> Callable[[], object]:
    """Builtin workload: the moons variational classifier used everywhere.

    JSON-parameterized so submissions never carry code: ``qubits``,
    ``layers``, ``lr``, ``samples``, ``batch_size``, ``seed``.
    """
    from repro.ml.dataset import make_moons
    from repro.ml.models import VariationalClassifier
    from repro.ml.optimizers import Adam
    from repro.ml.trainer import Trainer, TrainerConfig
    from repro.quantum.templates import hardware_efficient

    qubits = int(params.get("qubits", 4))
    layers = int(params.get("layers", 2))
    lr = float(params.get("lr", 0.01))
    samples = int(params.get("samples", 64))
    batch_size = int(params.get("batch_size", 8))
    seed = int(params.get("seed", 11))

    def make():
        model = VariationalClassifier(hardware_efficient(qubits, layers))
        dataset = make_moons(samples, np.random.default_rng(seed))
        return Trainer(
            model,
            Adam(lr=lr),
            dataset=dataset,
            config=TrainerConfig(batch_size=batch_size, seed=seed),
        )

    return make


#: Name -> builder; a builder maps JSON params to a trainer factory.
BUILTIN_WORKLOADS: Dict[str, Callable[[Dict], Callable[[], object]]] = {
    "classifier": _classifier_workload,
}


# ---------------------------------------------------------------------------
# Daemon
# ---------------------------------------------------------------------------


@dataclass
class DaemonConfig:
    """Knobs of the scheduler loop."""

    tick_seconds: float = 0.02  # idle sleep between scheduler passes
    heartbeat_seconds: float = 0.5  # daemon.json refresh cadence
    stale_after_seconds: float = 5.0  # older heartbeat = daemon presumed dead
    rebalance_every_ticks: int = 0  # 0 disables the periodic placement sweep
    restart_delay_ticks: int = 1  # default reincarnation delay on preempt
    max_ticks: Optional[int] = None  # loop bound for tests; None = forever

    def __post_init__(self) -> None:
        if self.tick_seconds < 0:
            raise ConfigError(
                f"tick_seconds must be >= 0, got {self.tick_seconds}"
            )
        if self.heartbeat_seconds <= 0:
            raise ConfigError(
                f"heartbeat_seconds must be > 0, got {self.heartbeat_seconds}"
            )
        if self.stale_after_seconds <= self.heartbeat_seconds:
            raise ConfigError(
                "stale_after_seconds must exceed heartbeat_seconds "
                f"({self.stale_after_seconds} vs {self.heartbeat_seconds})"
            )
        if self.rebalance_every_ticks < 0:
            raise ConfigError(
                f"rebalance_every_ticks must be >= 0, "
                f"got {self.rebalance_every_ticks}"
            )
        if self.restart_delay_ticks < 0:
            raise ConfigError(
                f"restart_delay_ticks must be >= 0, "
                f"got {self.restart_delay_ticks}"
            )


class DaemonAlreadyRunning(ReproError):
    """A live daemon already owns this control directory."""


def _control_backend(control) -> StorageBackend:
    if isinstance(control, StorageBackend):
        return control
    # Control traffic is transient request/response objects: atomic replace
    # matters (readers must never see torn JSON), fsync does not.
    return LocalDirectoryBackend(control, fsync=False)


def _read_control_meta(control: StorageBackend) -> Optional[Dict]:
    """Parse ``daemon.json`` from a control directory (``None`` if absent
    or unreadable) — shared by the daemon's claim check and the client's
    liveness probe so their tolerance rules cannot drift."""
    if not control.exists(META_NAME):
        return None
    try:
        return json.loads(control.read(META_NAME).decode("utf-8"))
    except (StorageError, UnicodeDecodeError, json.JSONDecodeError):
        return None


class FleetDaemon(JobLifecycle):
    """The scheduler loop of a checkpoint service, run as a daemon.

    One instance per control directory; construct with the shared
    :class:`~repro.service.chunkstore.ChunkStore` and
    :class:`~repro.service.pool.WriterPool`, then call :meth:`serve` (which
    blocks until drained/stopped).  Everything else — submissions, status,
    drain — arrives through the control plane.
    """

    def __init__(
        self,
        store: ChunkStore,
        pool: WriterPool,
        control,
        config: Optional[DaemonConfig] = None,
        workloads: Optional[Dict[str, Callable]] = None,
        daemon_id: Optional[str] = None,
    ):
        super().__init__(store, pool)
        self.control = _control_backend(control)
        self.config = config or DaemonConfig()
        self.workloads = dict(BUILTIN_WORKLOADS)
        if workloads:
            self.workloads.update(workloads)
        self.daemon_id = daemon_id or f"daemon-{uuid.uuid4().hex[:8]}"
        self.state = STATE_STOPPED
        self.tick = 0
        self._jobs: Dict[str, _JobRuntime] = {}
        self._prefetches: Dict[str, object] = {}  # job id -> PrefetchedPlan
        self._stop_requested = False
        self._started_at: Optional[float] = None
        self._last_heartbeat = 0.0
        self.requests_served = 0

    # -- workloads --------------------------------------------------------------

    def register_workload(
        self, name: str, builder: Callable[[Dict], Callable[[], object]]
    ) -> None:
        """Add/replace a named workload recipe (tests, embedders)."""
        if not name:
            raise ConfigError("workload name must be non-empty")
        self.workloads[name] = builder

    # -- daemon.json ------------------------------------------------------------

    def _read_meta(self) -> Optional[Dict]:
        return _read_control_meta(self.control)

    def _write_meta(self) -> None:
        meta = {
            "daemon_id": self.daemon_id,
            "pid": os.getpid(),
            "state": self.state,
            "started": self._started_at,
            "heartbeat": time.time(),
            "tick": self.tick,
            "jobs": len(self._jobs),
            "active_jobs": sum(
                1 for job in self._jobs.values() if not job.done
            ),
        }
        self.control.write(
            META_NAME, json.dumps(meta, sort_keys=True).encode("utf-8")
        )
        self._last_heartbeat = time.monotonic()

    def _claim_control(self) -> None:
        meta = self._read_meta()
        if meta is not None and meta.get("state") != STATE_STOPPED:
            age = time.time() - float(meta.get("heartbeat", 0.0))
            if age < self.config.stale_after_seconds:
                raise DaemonAlreadyRunning(
                    f"daemon {meta.get('daemon_id')!r} (pid "
                    f"{meta.get('pid')}) already serves this control "
                    f"directory (heartbeat {age:.1f}s ago); "
                    "drain it first or pick another --control"
                )
        self._started_at = time.time()
        self.state = STATE_RUNNING
        self._write_meta()

    # -- control plane ----------------------------------------------------------

    def _poll_control(self) -> int:
        """Serve every pending request; returns how many were handled."""
        handled = 0
        for name in self.control.list(REQUEST_PREFIX):
            request_id = name[len(REQUEST_PREFIX) : -len(".json")]
            try:
                request = json.loads(self.control.read(name).decode("utf-8"))
            except (StorageError, UnicodeDecodeError, json.JSONDecodeError):
                request = None
            if request is None:
                response = {"ok": False, "error": "unreadable request"}
            else:
                try:
                    response = self._handle(request)
                except Exception as exc:  # noqa: BLE001 - a bad request
                    # must never kill the daemon; the error goes back to
                    # the requester instead.
                    response = {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
            response["id"] = request_id
            self.control.write(
                f"{RESPONSE_PREFIX}{request_id}.json",
                json.dumps(response, sort_keys=True).encode("utf-8"),
            )
            self.control.delete(name)
            handled += 1
            self.requests_served += 1
        return handled

    def _handle(self, request: Dict) -> Dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "state": self.state, "tick": self.tick}
        if op == "submit":
            return self._op_submit(request.get("spec") or {})
        if op == "status":
            return self._op_status(request.get("job"))
        if op == "drain":
            if self.state == STATE_RUNNING:
                self.state = STATE_DRAINING
            return {"ok": True, "state": self.state}
        if op == "stop":
            self._stop_requested = True
            return {"ok": True, "state": self.state}
        if op == "preempt":
            return self._op_preempt(
                request.get("job"), request.get("restart_delay_ticks")
            )
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _op_submit(self, spec: Dict) -> Dict:
        if self.state != STATE_RUNNING:
            return {
                "ok": False,
                "error": f"daemon is {self.state}; not accepting jobs",
            }
        job_id = spec.get("job_id")
        if not job_id:
            return {"ok": False, "error": "submission needs a job_id"}
        existing = self._jobs.get(job_id)
        if existing is not None and not existing.done:
            return {"ok": False, "error": f"job {job_id!r} is already active"}
        workload = spec.get("workload", "classifier")
        builder = self.workloads.get(workload)
        if builder is None:
            return {
                "ok": False,
                "error": f"unknown workload {workload!r} "
                f"(have: {sorted(self.workloads)})",
            }
        factory = builder(dict(spec.get("params") or {}))
        job_spec = FleetJobSpec(
            job_id=job_id,
            trainer_factory=factory,
            target_steps=int(spec.get("target_steps", 1)),
            checkpoint_every=int(spec.get("checkpoint_every", 1)),
            max_pending=int(spec.get("max_pending", 2)),
            backpressure=str(spec.get("backpressure", "block")),
            save_on_start=bool(spec.get("save_on_start", True)),
            restore_mode=str(spec.get("restore_mode", "exact")),
        )
        job = _JobRuntime(job_spec)
        # A re-submitted job id *resumes* its history: the fresh incarnation
        # restores from the store if it ever checkpointed there.
        resumable = bool(self.store.manifest_names(job_id))
        self._start_job(job, self.tick, fresh=not resumable)
        self._jobs[job_id] = job
        return {
            "ok": True,
            "job": job_id,
            "resumed_from_step": (
                job.result.resumed_from_steps[-1] if resumable else 0
            ),
            "submitted_at_tick": self.tick,
        }

    def _job_status(self, job: _JobRuntime) -> Dict:
        if job.done:
            state = "failed" if job.error is not None else "finished"
        elif job.trainer is None:
            state = "down"
        else:
            state = "running"
        result = job.result
        return {
            "state": state,
            "error": job.error,
            "step": job.trainer.step_count if job.trainer else None,
            "target_steps": job.spec.target_steps,
            "final_step": result.final_step,
            "steps_executed": result.steps_executed,
            "preemptions": result.preemptions,
            "restores": result.restores,
            "lost_steps": result.lost_steps,
            "resumed_from_steps": list(result.resumed_from_steps),
            "down_until_tick": job.down_until,
            "finish_tick": result.finish_tick,
            "prefetching_restore": job.spec.job_id in self._prefetches,
        }

    def _op_status(self, job_id: Optional[str]) -> Dict:
        if job_id is not None:
            job = self._jobs.get(job_id)
            if job is None:
                return {"ok": False, "error": f"unknown job {job_id!r}"}
            return {
                "ok": True,
                "state": self.state,
                "tick": self.tick,
                "jobs": {job_id: self._job_status(job)},
            }
        return {
            "ok": True,
            "state": self.state,
            "tick": self.tick,
            "daemon_id": self.daemon_id,
            "requests_served": self.requests_served,
            "jobs": {
                job_id: self._job_status(job)
                for job_id, job in self._jobs.items()
            },
        }

    def _op_preempt(
        self, job_id: Optional[str], delay: Optional[int]
    ) -> Dict:
        delay = (
            self.config.restart_delay_ticks if delay is None else int(delay)
        )
        targets: List[_JobRuntime] = []
        if job_id is None:
            targets = [
                job
                for job in self._jobs.values()
                if not job.done and job.trainer is not None
            ]
        else:
            job = self._jobs.get(job_id)
            if job is None:
                return {"ok": False, "error": f"unknown job {job_id!r}"}
            if job.done or job.trainer is None:
                return {
                    "ok": False,
                    "error": f"job {job_id!r} is not running",
                }
            targets = [job]
        for job in targets:
            self._preempt_job(job, self.tick, delay)
            self._stage_restore(job)
        return {
            "ok": True,
            "preempted": sorted(job.spec.job_id for job in targets),
            "restart_delay_ticks": delay,
        }

    # -- restore read-ahead -------------------------------------------------------

    def _await_dead_channel(self, channel) -> None:
        """Sliced wait that keeps heartbeating the control file.

        A dead incarnation's in-flight save can stall for tens of seconds
        on a throttled store; one long blocking wait would let the
        heartbeat go stale and invite a second daemon to claim this
        control directory.  Waiting in heartbeat-sized slices keeps this
        daemon visibly alive the whole time.
        """
        deadline = time.monotonic() + 60.0
        slice_seconds = min(self.config.heartbeat_seconds / 2, 0.25)
        while time.monotonic() < deadline:
            if channel.wait_idle(timeout=slice_seconds):
                return
            self._write_meta()

    def _stage_restore(self, job: _JobRuntime) -> None:
        """Start read-ahead for a preempted job's reincarnation restore.

        The restart delay is dead time; spending it fetching — and, on a
        tiered store, *promoting* — the newest checkpoint's chunks means
        the actual restore finds everything already staged.  Only worth it
        when a fast tier exists to stage into: without one the restore
        cannot reuse the prefetched bytes, and staging would just read
        every chunk twice.  Best-effort: a job that never checkpointed
        simply has nothing to stage.
        """
        job_id = job.spec.job_id
        self._cancel_prefetch(job_id)
        if self.store.backend.tier_for("ch-staging-probe") is None:
            return  # no fast tier to warm; staging would double the reads
        try:
            self._prefetches[job_id] = self.store.prefetch_restore(job_id)
        except (CheckpointNotFoundError, ReproError):
            pass

    def _cancel_prefetch(self, job_id: str) -> None:
        handle = self._prefetches.pop(job_id, None)
        if handle is not None:
            handle.cancel()

    # -- the loop ----------------------------------------------------------------

    def _park_failed(self, job: _JobRuntime, exc: BaseException) -> None:
        """Terminal failure of one job: record it, release its resources.

        The channel is abandoned (crash semantics) so the pool hands a
        *fresh* channel — with no stale queue or pending error — to any
        later resubmission of the same job id.
        """
        job.error = str(exc)
        job.result.finish_tick = self.tick
        job.done = True
        self._absorb_channel_stats(job)
        if job.channel is not None:
            job.channel.abandon()
            job.channel = None
        job.manager = None
        job.trainer = None
        job.dead_channel = None
        self._cancel_prefetch(job.spec.job_id)

    def _tick_once(self) -> bool:
        """One scheduler pass; returns whether any job advanced."""
        progressed = False
        # 1. reincarnate preempted jobs whose delay elapsed
        for job in self._jobs.values():
            if (
                not job.done
                and job.trainer is None
                and job.down_until is not None
                and self.tick >= job.down_until
            ):
                try:
                    self._recover_job(job, self.tick)
                except ReproError as exc:
                    # A failed restore must not take the daemon (or its
                    # neighbours) down: park this job, keep serving.
                    self._park_failed(job, exc)
                # The read-ahead did its job (promotion/staging); drop the
                # handle so its buffers are released.
                self._cancel_prefetch(job.spec.job_id)
                progressed = True
        # 2. advance every running job
        for job in self._jobs.values():
            if job.done or job.trainer is None:
                continue
            try:
                self._advance_job(job, self.tick)
            except ReproError as exc:
                self._park_failed(job, exc)
            progressed = True
        # 3. periodic placement sweep (lease-gated when a journal is set)
        every = self.config.rebalance_every_ticks
        if every > 0 and self.tick > 0 and self.tick % every == 0:
            try:
                self.store.rebalance_tiers()
            except ReproError:
                pass  # placement is advisory; the sweep retries next period
        self.tick += 1
        return progressed

    def _active_jobs(self) -> int:
        return sum(1 for job in self._jobs.values() if not job.done)

    def serve(self) -> None:
        """Run the daemon loop until stopped or drained (blocking).

        Raises :class:`DaemonAlreadyRunning` when a live daemon already
        heartbeats this control directory.
        """
        self._claim_control()
        try:
            while not self._stop_requested:
                if (
                    time.monotonic() - self._last_heartbeat
                    >= self.config.heartbeat_seconds
                ):
                    self._write_meta()
                handled = self._poll_control()
                progressed = self._tick_once()
                if self.state == STATE_DRAINING and self._active_jobs() == 0:
                    break
                if (
                    self.config.max_ticks is not None
                    and self.tick >= self.config.max_ticks
                ):
                    break
                if not handled and not progressed:
                    time.sleep(self.config.tick_seconds)
        finally:
            for job_id in list(self._prefetches):
                self._cancel_prefetch(job_id)
            try:
                self.pool.drain()
                self._compact_journal()
            finally:
                self.state = STATE_STOPPED
                self._write_meta()

    def _compact_journal(self) -> None:
        """Fold the placement journal at shutdown (the quiescent moment).

        Pin/unpin and lease records accumulate for the daemon's whole
        lifetime; compacting on drain keeps the next daemon's journal
        refreshes O(pins), not O(history).  Best-effort — the journal is
        advisory metadata and shutdown must not fail over it.
        """
        journal = getattr(self.store, "placement_journal", None)
        if journal is None:
            return
        try:
            journal.compact()
        except (ReproError, StorageError):
            pass


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


class DaemonClient:
    """Talks to a :class:`FleetDaemon` through its control directory.

    Every call is one request/response round trip over atomic file objects;
    requests time out (daemon dead or wedged) instead of hanging forever.
    """

    def __init__(self, control, timeout: float = 30.0):
        if timeout <= 0:
            raise ConfigError(f"timeout must be > 0, got {timeout}")
        self.control = _control_backend(control)
        self.timeout = float(timeout)

    # -- liveness ---------------------------------------------------------------

    def daemon_meta(self) -> Optional[Dict]:
        """The daemon's last ``daemon.json`` heartbeat, or ``None``."""
        return _read_control_meta(self.control)

    def is_alive(self, stale_after_seconds: float = 5.0) -> bool:
        """Whether a daemon heartbeat is fresh enough to trust."""
        meta = self.daemon_meta()
        if meta is None or meta.get("state") == STATE_STOPPED:
            return False
        return time.time() - float(meta.get("heartbeat", 0.0)) < stale_after_seconds

    # -- request/response -------------------------------------------------------

    def request(
        self, op: str, timeout: Optional[float] = None, **payload
    ) -> Dict:
        """One control-plane round trip; raises on timeout."""
        timeout = self.timeout if timeout is None else float(timeout)
        request_id = uuid.uuid4().hex[:12]
        body = {"op": op, **payload}
        self.control.write(
            f"{REQUEST_PREFIX}{request_id}.json",
            json.dumps(body, sort_keys=True).encode("utf-8"),
        )
        response_name = f"{RESPONSE_PREFIX}{request_id}.json"
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.control.exists(response_name):
                try:
                    response = json.loads(
                        self.control.read(response_name).decode("utf-8")
                    )
                except (StorageError, json.JSONDecodeError):
                    time.sleep(0.005)
                    continue
                self.control.delete(response_name)
                return response
            time.sleep(0.005)
        # Leave no orphan request behind: the daemon may be gone for good.
        self.control.delete(f"{REQUEST_PREFIX}{request_id}.json")
        raise ConfigError(
            f"daemon did not answer {op!r} within {timeout}s "
            f"(alive={self.is_alive()})"
        )

    # -- verbs ------------------------------------------------------------------

    def ping(self, timeout: Optional[float] = None) -> Dict:
        """Round-trip liveness probe: daemon state + current tick."""
        return self.request("ping", timeout=timeout)

    def submit(self, spec: Dict, timeout: Optional[float] = None) -> Dict:
        """Submit one job spec (see :meth:`FleetDaemon._op_submit`)."""
        return self.request("submit", timeout=timeout, spec=spec)

    def status(
        self, job_id: Optional[str] = None, timeout: Optional[float] = None
    ) -> Dict:
        """Daemon state plus per-job progress (one job with ``job_id``)."""
        return self.request("status", timeout=timeout, job=job_id)

    def preempt(
        self,
        job_id: Optional[str] = None,
        restart_delay_ticks: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict:
        """Kill one job's incarnation (or every running job's with
        ``job_id=None``); each reincarnates after the restart delay."""
        return self.request(
            "preempt",
            timeout=timeout,
            job=job_id,
            restart_delay_ticks=restart_delay_ticks,
        )

    def drain(
        self,
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> Dict:
        """Ask the daemon to finish its jobs and exit.

        With ``wait`` the call returns only once ``daemon.json`` reports
        ``stopped`` (or the timeout elapses).
        """
        timeout = self.timeout if timeout is None else float(timeout)
        response = self.request("drain", timeout=timeout)
        if not wait:
            return response
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            meta = self.daemon_meta()
            if meta is not None and meta.get("state") == STATE_STOPPED:
                return {"ok": True, "state": STATE_STOPPED}
            time.sleep(0.01)
        raise ConfigError(f"daemon did not stop within {timeout}s")

    def stop(self, timeout: Optional[float] = None) -> Dict:
        """Immediate shutdown: queued saves flush, running jobs halt."""
        return self.request("stop", timeout=timeout)
