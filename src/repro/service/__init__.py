"""Multi-job checkpoint service: the fleet-scale layer over ``repro.core``.

The paper reproduces checkpointing one training job at a time; real QNN
workloads are *fleets* — hyperparameter sweeps, architecture selection,
capacity scans — whose checkpoint traffic shares one store.  This package is
that service layer:

* :mod:`repro.service.chunkstore` — content-addressed, sharded chunk store
  deduplicating blocks across checkpoints *and* across jobs,
* :mod:`repro.service.pool` — a shared writer pool with bounded per-job
  queues, round-robin fairness, and pluggable backpressure
  (block / drop-oldest / degrade-to-lite),
* :mod:`repro.service.manager` — the per-job trainer hook submitting into
  the pool,
* :mod:`repro.service.fleet` — the scheduler harness running N jobs against
  the shared stack under preemption storms and brownouts,
* :mod:`repro.service.daemon` — the same scheduler as a long-running
  process: pluggable control plane (``qckpt daemon``), dynamic job
  submission from a JSON workload registry, priority-weighted tick
  scheduling, restore read-ahead during restart delays, and lease-gated
  cross-daemon tier rebalancing,
* :mod:`repro.service.transport` — the daemon's control-plane transports:
  the file protocol plus a TCP socket server/client speaking
  length-prefixed JSON frames with shared-secret auth, for driving a
  daemon from another host,
* :mod:`repro.service.scrub` — store self-healing: content-address scrub,
  quarantine of corrupt copies, and repair from surviving replicas
  (``qckpt scrub`` / ``qckpt fsck``).
"""

from repro.service.chunkstore import (
    ChunkCheckpointRecord,
    ChunkManifestSource,
    ChunkStore,
    ChunkStoreStats,
    chunk_name,
)
from repro.service.daemon import (
    DaemonAlreadyRunning,
    DaemonClient,
    DaemonConfig,
    DaemonUnavailable,
    FleetDaemon,
)
from repro.service.fleet import (
    FleetHarness,
    FleetJobResult,
    FleetJobSpec,
    FleetResult,
    JobLifecycle,
    ThrottledBackend,
)
from repro.service.manager import ServiceCheckpointManager, ServiceCheckpointStats
from repro.service.pool import ChannelStats, PoolChannel, WriterPool
from repro.service.scrub import (
    ScrubFinding,
    ScrubReport,
    StoreScrubber,
    scrub_store,
)
from repro.service.transport import (
    ControlRequest,
    ControlTransport,
    FileTransport,
    SocketControlClient,
    SocketTransport,
    TransportConnectError,
)

__all__ = [
    "FleetDaemon",
    "DaemonClient",
    "DaemonConfig",
    "DaemonAlreadyRunning",
    "DaemonUnavailable",
    "ControlTransport",
    "ControlRequest",
    "FileTransport",
    "SocketTransport",
    "SocketControlClient",
    "TransportConnectError",
    "JobLifecycle",
    "ChunkStore",
    "ChunkStoreStats",
    "ChunkCheckpointRecord",
    "ChunkManifestSource",
    "chunk_name",
    "WriterPool",
    "PoolChannel",
    "ChannelStats",
    "ServiceCheckpointManager",
    "ServiceCheckpointStats",
    "FleetHarness",
    "FleetJobSpec",
    "FleetJobResult",
    "FleetResult",
    "ThrottledBackend",
    "StoreScrubber",
    "ScrubReport",
    "ScrubFinding",
    "scrub_store",
]
