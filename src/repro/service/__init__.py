"""Multi-job checkpoint service: the fleet-scale layer over ``repro.core``.

The paper reproduces checkpointing one training job at a time; real QNN
workloads are *fleets* — hyperparameter sweeps, architecture selection,
capacity scans — whose checkpoint traffic shares one store.  This package is
that service layer:

* :mod:`repro.service.chunkstore` — content-addressed, sharded chunk store
  deduplicating blocks across checkpoints *and* across jobs,
* :mod:`repro.service.pool` — a shared writer pool with bounded per-job
  queues, round-robin fairness, and pluggable backpressure
  (block / drop-oldest / degrade-to-lite),
* :mod:`repro.service.manager` — the per-job trainer hook submitting into
  the pool,
* :mod:`repro.service.fleet` — the scheduler harness running N jobs against
  the shared stack under preemption storms and brownouts,
* :mod:`repro.service.daemon` — the same scheduler as a long-running
  process: file-based control plane (``qckpt daemon``), dynamic job
  submission from a JSON workload registry, restore read-ahead during
  restart delays, and lease-gated cross-daemon tier rebalancing.
"""

from repro.service.chunkstore import (
    ChunkCheckpointRecord,
    ChunkManifestSource,
    ChunkStore,
    ChunkStoreStats,
    chunk_name,
)
from repro.service.daemon import (
    DaemonAlreadyRunning,
    DaemonClient,
    DaemonConfig,
    FleetDaemon,
)
from repro.service.fleet import (
    FleetHarness,
    FleetJobResult,
    FleetJobSpec,
    FleetResult,
    JobLifecycle,
    ThrottledBackend,
)
from repro.service.manager import ServiceCheckpointManager, ServiceCheckpointStats
from repro.service.pool import ChannelStats, PoolChannel, WriterPool

__all__ = [
    "FleetDaemon",
    "DaemonClient",
    "DaemonConfig",
    "DaemonAlreadyRunning",
    "JobLifecycle",
    "ChunkStore",
    "ChunkStoreStats",
    "ChunkCheckpointRecord",
    "ChunkManifestSource",
    "chunk_name",
    "WriterPool",
    "PoolChannel",
    "ChannelStats",
    "ServiceCheckpointManager",
    "ServiceCheckpointStats",
    "FleetHarness",
    "FleetJobSpec",
    "FleetJobResult",
    "FleetResult",
    "ThrottledBackend",
]
