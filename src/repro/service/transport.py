"""Pluggable control-plane transports for the fleet daemon.

PR 4's daemon spoke exactly one dialect: single-shot JSON objects in a
shared control *directory*.  That is perfect for same-host tooling (atomic
renames, no ports, inspectable with ``ls``) and useless the moment the
operator's terminal and the daemon live on different machines.  This module
splits "how requests arrive" from "what the daemon does with them":

* :class:`ControlTransport` — the contract: a transport surfaces pending
  :class:`ControlRequest` objects via :meth:`~ControlTransport.poll` and
  carries each response back to whoever asked.  The daemon serves *all* of
  its transports from one scheduler loop; every request, regardless of
  transport, funnels into the same ``FleetDaemon._handle`` dispatch.
* :class:`FileTransport` — the PR 4 protocol, extracted verbatim:
  ``req-<id>.json`` in, ``res-<id>.json`` out, atomic-replace objects.
* :class:`SocketTransport` — a threaded TCP server speaking
  **length-prefixed JSON frames** (4-byte big-endian length + UTF-8 JSON)
  with a shared-secret auth handshake, per-connection timeouts, and a
  maximum frame size.  Connection threads only *enqueue* requests; the
  daemon thread handles them, so job state never needs locking.
* :class:`SocketControlClient` — the client half of the wire protocol,
  used by ``DaemonClient(connect=...)`` and ``qckpt daemon * --connect``.

Wire protocol (see ``docs/FORMATS.md`` for the byte-level spec)::

    frame    := len(4 bytes, big-endian uint32) + payload(len bytes, JSON)
    client   -> {"qckpt": 1, "token": "<shared secret>"}      # handshake
    server   -> {"ok": true, "protocol": 1}
    client   -> {"id": "ab12...", "op": "status", ...}        # request
    server   -> {"id": "ab12...", "ok": true, ...}            # response

Every server reply is a complete JSON object — errors are envelopes
(``{"ok": false, "error": "..."}``), never raw exceptions or closed pipes
without a reason where one can still be written.
"""

from __future__ import annotations

import hmac
import json
import os
import queue
import socket
import struct
import threading
import time
import uuid
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError, StorageError, TransportError
from repro.obs.log import get_logger
from repro.reliability import Deadline, RetryPolicy, current_deadline
from repro.storage.backend import StorageBackend

_log = get_logger("transport")

PROTOCOL_VERSION = 1
FRAME_HEADER = struct.Struct(">I")  # big-endian uint32 payload length
DEFAULT_MAX_FRAME_BYTES = 1 << 20  # 1 MiB: control traffic, not tensors
DEFAULT_CONNECTION_TIMEOUT = 30.0

REQUEST_PREFIX = "req-"
RESPONSE_PREFIX = "res-"


class TransportConnectError(TransportError):
    """No server accepted the connection (refused, unreachable, no route).

    Distinct from in-flight failures (timeouts, dropped frames) because
    callers reason differently about the two: a daemon that *refuses*
    connections after acknowledging a drain has exited; one that is merely
    slow to answer has not.
    """


def parse_address(address: "str | Tuple[str, int]") -> Tuple[str, int]:
    """``"host:port"`` (or a ready tuple) -> ``(host, port)``.

    The split is on the *last* colon so bracketless IPv6 hosts at least
    fail with a useful message instead of binding port garbage.
    """
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"address must look like HOST:PORT, got {address!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ConfigError(
            f"address port must be an integer, got {address!r}"
        ) from None


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def send_frame(sock: socket.socket, payload: Dict) -> None:
    """Write one length-prefixed JSON frame (sorted keys, like the files)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    try:
        sock.sendall(FRAME_HEADER.pack(len(body)) + body)
    except OSError as exc:
        raise TransportError(f"frame send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 16))
        except socket.timeout as exc:
            raise TransportError("connection timed out mid-frame") from exc
        except OSError as exc:
            raise TransportError(f"frame receive failed: {exc}") from exc
        if not chunk:
            raise TransportError(
                f"connection closed mid-frame ({n - remaining} of {n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[Dict]:
    """Read one frame; ``None`` on clean EOF before any byte.

    Raises :class:`~repro.errors.TransportError` on truncation, oversized
    frames (the remote is either broken or hostile — the connection cannot
    be resynchronized, so the caller must close it), and non-JSON payloads.
    """
    try:
        first = sock.recv(1)
    except socket.timeout as exc:
        raise TransportError("connection idle past its timeout") from exc
    except OSError as exc:
        raise TransportError(f"frame receive failed: {exc}") from exc
    if not first:
        return None  # clean EOF between frames
    header = first + _recv_exact(sock, FRAME_HEADER.size - 1)
    (length,) = FRAME_HEADER.unpack(header)
    if length > max_frame_bytes:
        raise TransportError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte "
            "limit"
        )
    body = _recv_exact(sock, length)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise TransportError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


# ---------------------------------------------------------------------------
# The transport contract
# ---------------------------------------------------------------------------


class ControlRequest:
    """One pending control-plane request, however it arrived.

    ``request`` is the parsed body (``None`` when the bytes were
    unreadable — the server still owes the requester an error envelope);
    ``request_id`` is the requester's correlation id; :meth:`respond`
    carries the response back over whatever medium the request came in on.
    Responding is best-effort by design: a requester that vanished (deleted
    control directory, dropped connection) must never take the daemon down.
    """

    def __init__(
        self,
        request: Optional[Dict],
        request_id: str,
        responder: Callable[[Dict], None],
        transport: str,
    ):
        self.request = request
        self.request_id = request_id
        self._responder = responder
        self.transport = transport

    def respond(self, response: Dict) -> None:
        """Deliver the response envelope (swallows requester-side failures)."""
        try:
            self._responder(response)
        except (TransportError, StorageError):
            pass  # the requester is gone; nothing is owed to anyone else


class ControlTransport:
    """Receive requests, send replies, advertise liveness.

    Lifecycle: :meth:`start` before the first poll (binds sockets, spawns
    acceptors), :meth:`poll` from the daemon loop (non-blocking, returns
    every request that arrived since the last poll), :meth:`close` on the
    way out.  :meth:`describe` contributes key/value pairs to the daemon's
    heartbeat object so clients can discover how to reach the daemon.
    """

    name = "abstract"

    def start(self) -> None:  # pragma: no cover - trivial default
        """Begin accepting requests (idempotent)."""

    def poll(self) -> List[ControlRequest]:
        """Pending requests, in arrival order; never blocks."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        """Stop accepting and release resources (idempotent)."""

    def describe(self) -> Dict:
        """Liveness advertisement merged into ``daemon.json``."""
        return {}


# ---------------------------------------------------------------------------
# File transport (the PR 4 protocol, extracted)
# ---------------------------------------------------------------------------


class FileTransport(ControlTransport):
    """Single-shot JSON request/response objects in a control directory.

    The daemon-side half of the original file protocol: ``poll`` lists
    ``req-*.json``, parses each, and the responder writes the matching
    ``res-<id>.json`` *before* deleting the request — a crash between the
    two leaves a request that will simply be re-served, never a requester
    waiting on a response that was never written.

    **Idle-poll elision.**  Listing the control directory every scheduler
    tick is O(entries) even when nothing arrived; an idle daemon over a
    large control dir burns its whole loop re-listing handled requests.
    For directory-backed control planes the poll keeps the directory's
    mtime as a high-water mark: when the mtime is unchanged since the
    last *empty* listing, the listing is skipped outright.  The mark is
    only recorded when the listing came back empty AND the mtime is
    safely older than "now" (``_MTIME_MARGIN_NS``), so a request created
    within the filesystem's timestamp granularity of the listing can
    never be missed — its arrival bumps the mtime past the recorded mark
    (file creation always updates the parent directory's mtime).
    ``dir_scans_skipped`` counts the elided listings.
    """

    name = "file"

    #: A directory mtime younger than this (vs the wall clock) is never
    #: trusted as a high-water mark — same-granularity-tick insurance.
    _MTIME_MARGIN_NS = 20_000_000

    def __init__(self, control: StorageBackend):
        self.control = control
        root = getattr(control, "root", None)
        self._root = None if root is None else os.fspath(root)
        self._hwm_mtime_ns: Optional[int] = None
        self.dir_scans_skipped = 0

    def _dir_mtime_ns(self) -> Optional[int]:
        if self._root is None:
            return None
        try:
            return os.stat(self._root).st_mtime_ns
        except OSError:
            return None

    def poll(self) -> List[ControlRequest]:
        mtime_ns = self._dir_mtime_ns()
        if (
            mtime_ns is not None
            and self._hwm_mtime_ns is not None
            and mtime_ns == self._hwm_mtime_ns
        ):
            self.dir_scans_skipped += 1
            return []
        pending = self._list_pending()
        if not pending and mtime_ns is not None:
            if time.time_ns() - mtime_ns > self._MTIME_MARGIN_NS:
                self._hwm_mtime_ns = mtime_ns
        else:
            self._hwm_mtime_ns = None
        return pending

    def _list_pending(self) -> List[ControlRequest]:
        pending = []
        for obj_name in self.control.list(REQUEST_PREFIX):
            request_id = obj_name[len(REQUEST_PREFIX) : -len(".json")]
            try:
                request = json.loads(self.control.read(obj_name).decode("utf-8"))
            except (StorageError, UnicodeDecodeError, json.JSONDecodeError):
                request = None
            if not isinstance(request, dict):
                request = None
            pending.append(
                ControlRequest(
                    request,
                    request_id,
                    self._responder(obj_name, request_id),
                    transport=self.name,
                )
            )
        return pending

    def _responder(self, obj_name: str, request_id: str) -> Callable[[Dict], None]:
        def respond(response: Dict) -> None:
            self.control.write(
                f"{RESPONSE_PREFIX}{request_id}.json",
                json.dumps(response, sort_keys=True).encode("utf-8"),
            )
            self.control.delete(obj_name)

        return respond


# ---------------------------------------------------------------------------
# Socket transport (TCP server)
# ---------------------------------------------------------------------------


class _Connection:
    """Server-side state of one accepted client connection."""

    def __init__(self, sock: socket.socket, peer: str):
        self.sock = sock
        self.peer = peer


class SocketTransport(ControlTransport):
    """Threaded TCP server feeding the daemon loop with framed requests.

    Threading model: an acceptor thread plus one reader thread per
    connection.  A reader authenticates its client, then for each request
    frame enqueues a :class:`ControlRequest` and *blocks* until the daemon
    thread responds (or ``response_timeout_seconds`` passes, in which case
    the reader answers with an error envelope itself).  All socket writes
    for a connection happen on its own reader thread, so frames are never
    interleaved and the daemon thread never touches a socket.

    ``auth_token``: when set, the first frame of every connection must be a
    handshake carrying the exact token (compared constant-time); a wrong or
    missing token gets one error frame and a closed connection.  When
    unset, the handshake is still required (it versions the protocol) but
    any token value is accepted.
    """

    name = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        connection_timeout_seconds: float = DEFAULT_CONNECTION_TIMEOUT,
        response_timeout_seconds: float = 10.0,
        backlog: int = 16,
    ):
        if max_frame_bytes < 1024:
            raise ConfigError(
                f"max_frame_bytes must be >= 1024, got {max_frame_bytes}"
            )
        if connection_timeout_seconds <= 0:
            raise ConfigError(
                "connection_timeout_seconds must be > 0, "
                f"got {connection_timeout_seconds}"
            )
        if response_timeout_seconds <= 0:
            raise ConfigError(
                "response_timeout_seconds must be > 0, "
                f"got {response_timeout_seconds}"
            )
        self.host = host
        self.port = int(port)
        self.auth_token = auth_token
        self.max_frame_bytes = int(max_frame_bytes)
        self.connection_timeout_seconds = float(connection_timeout_seconds)
        self.response_timeout_seconds = float(response_timeout_seconds)
        self.backlog = int(backlog)
        self._listener: Optional[socket.socket] = None
        self._acceptor: Optional[threading.Thread] = None
        self._queue: "queue.Queue[ControlRequest]" = queue.Queue()
        self._connections: Dict[int, _Connection] = {}
        self._conn_lock = threading.Lock()
        self._closed = threading.Event()
        # Requests enqueued whose response frame is not yet on the wire;
        # close() waits (briefly) for these so a "drain" acknowledgement
        # is not severed by the very shutdown it triggered.
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        # Observability counters (read by tests and the bench).
        self.connections_accepted = 0
        self.auth_failures = 0
        self.frame_errors = 0

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        if self._listener is not None:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self.host, self.port))
            listener.listen(self.backlog)
        except OSError as exc:
            listener.close()
            raise TransportError(
                f"cannot listen on {self.host}:{self.port}: {exc}"
            ) from exc
        self.port = listener.getsockname()[1]  # resolve port 0
        listener.settimeout(0.2)  # so close() is noticed promptly
        self._listener = listener
        self._closed.clear()
        self._acceptor = threading.Thread(
            target=self._accept_loop,
            name=f"qckpt-accept-{self.port}",
            daemon=True,
        )
        self._acceptor.start()
        _log.info(
            "listening",
            address=self.address,
            auth=self.auth_token is not None,
        )

    def close(self) -> None:
        self._closed.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        # Let responses already handed to connection threads reach the
        # wire before the sockets are torn down under them.  Bounded: a
        # request the daemon will never answer (it enqueued after the
        # final poll) still times out on its own thread, so don't wait
        # for it here.
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if self._inflight == 0:
                    break
            time.sleep(0.005)
        with self._conn_lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for connection in connections:
            try:
                connection.sock.close()
            except OSError:
                pass
        if self._acceptor is not None:
            self._acceptor.join(timeout=5.0)
            self._acceptor = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def describe(self) -> Dict:
        # The advertisement exists so a *remote* client can learn where to
        # connect; a wildcard bind address is not a routable destination,
        # so substitute this machine's hostname (best effort) for it.
        host = self.host
        if host in ("", "0.0.0.0", "::"):
            host = socket.gethostname()
        return {
            "listen": f"{host}:{self.port}",
            "auth": self.auth_token is not None,
        }

    # -- accept / read loops ----------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                sock, addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us
            connection = _Connection(sock, f"{addr[0]}:{addr[1]}")
            with self._conn_lock:
                self._connections[id(connection)] = connection
            self.connections_accepted += 1
            _log.debug("connection-accepted", peer=connection.peer)
            threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name=f"qckpt-conn-{connection.peer}",
                daemon=True,
            ).start()

    def _drop_connection(self, connection: _Connection) -> None:
        with self._conn_lock:
            self._connections.pop(id(connection), None)
        try:
            connection.sock.close()
        except OSError:
            pass

    def _serve_connection(self, connection: _Connection) -> None:
        sock = connection.sock
        sock.settimeout(self.connection_timeout_seconds)
        try:
            if not self._handshake(sock):
                return
            while not self._closed.is_set():
                try:
                    request = recv_frame(sock, self.max_frame_bytes)
                except TransportError as exc:
                    self.frame_errors += 1
                    self._try_error(sock, f"bad frame: {exc}")
                    return
                if request is None:
                    return  # client hung up cleanly
                if not self._serve_request(sock, request):
                    return  # client vanished mid-response: close our half
        finally:
            self._drop_connection(connection)

    def _handshake(self, sock: socket.socket) -> bool:
        try:
            hello = recv_frame(sock, self.max_frame_bytes)
        except TransportError as exc:
            self.frame_errors += 1
            self._try_error(sock, f"bad handshake frame: {exc}")
            return False
        if hello is None:
            return False  # port-scanner said nothing; nothing owed
        if hello.get("qckpt") != PROTOCOL_VERSION:
            self.auth_failures += 1
            _log.warning(
                "handshake-rejected",
                reason="protocol",
                offered=hello.get("qckpt"),
            )
            self._try_error(
                sock,
                f"unsupported protocol {hello.get('qckpt')!r} "
                f"(server speaks {PROTOCOL_VERSION})",
            )
            return False
        if self.auth_token is not None:
            offered = hello.get("token")
            if not isinstance(offered, str) or not hmac.compare_digest(
                offered, self.auth_token
            ):
                self.auth_failures += 1
                _log.warning("handshake-rejected", reason="auth")
                self._try_error(sock, "bad auth token")
                return False
        try:
            send_frame(sock, {"ok": True, "protocol": PROTOCOL_VERSION})
        except TransportError:
            return False
        return True

    def _serve_request(self, sock: socket.socket, request: Dict) -> bool:
        request_id = str(request.get("id") or uuid.uuid4().hex[:12])
        done = threading.Event()
        req_lock = threading.Lock()
        slot: List[Dict] = []
        abandoned = [False]

        def responder(response: Dict) -> None:
            # Counted as in-flight only while this connection thread will
            # still send it — a late answer to an abandoned (timed-out)
            # request must not pin close() on a frame nobody will write.
            with req_lock:
                slot.append(response)
                if not abandoned[0]:
                    with self._inflight_lock:
                        self._inflight += 1
                done.set()

        self._queue.put(
            ControlRequest(request, request_id, responder, transport=self.name)
        )
        # The daemon thread handles the request between scheduler passes; a
        # wedged daemon must not wedge the connection forever.
        done.wait(timeout=self.response_timeout_seconds)
        with req_lock:
            if slot:
                response = slot[0]
                counted = True
            else:
                abandoned[0] = True
                counted = False
                response = {
                    "ok": False,
                    "id": request_id,
                    "error": "daemon did not answer within "
                    f"{self.response_timeout_seconds}s",
                }
        try:
            send_frame(sock, response)
        except TransportError:
            # Client disconnected mid-response: its loss, daemon unharmed.
            return False
        finally:
            if counted:
                with self._inflight_lock:
                    self._inflight -= 1
        return True

    def _try_error(self, sock: socket.socket, message: str) -> None:
        try:
            send_frame(sock, {"ok": False, "error": message})
        except TransportError:
            pass

    # -- the daemon-facing side -------------------------------------------------

    def poll(self) -> List[ControlRequest]:
        pending = []
        while True:
            try:
                pending.append(self._queue.get_nowait())
            except queue.Empty:
                return pending


# ---------------------------------------------------------------------------
# Socket client
# ---------------------------------------------------------------------------


class SocketControlClient:
    """One authenticated connection to a :class:`SocketTransport`.

    Connects lazily, re-handshakes transparently after a dropped
    connection, and correlates every response by request id.  Thread-safe:
    a lock serializes round trips so concurrent callers never interleave
    frames.

    Two reconnect regimes:

    * without a ``retry`` policy (the default): one fresh-connection retry
      per request, and only when the failure provably happened before the
      daemon could have read the request — the conservative legacy rule;
    * with a :class:`~repro.reliability.RetryPolicy`: reconnect-with-backoff
      for up to ``max_attempts``, resending the *same request id* on every
      attempt.  The daemon deduplicates by id (replaying its recorded
      response), so a request that died mid-send — where the daemon may or
      may not have applied it — is safe to resend: a submit or preempt is
      applied exactly once no matter how many deliveries happen.
    """

    def __init__(
        self,
        address: "str | Tuple[str, int]",
        token: Optional[str] = None,
        timeout: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        retry: Optional[RetryPolicy] = None,
    ):
        if timeout <= 0:
            raise ConfigError(f"timeout must be > 0, got {timeout}")
        self.host, self.port = parse_address(address)
        self.token = token
        self.timeout = float(timeout)
        self.max_frame_bytes = int(max_frame_bytes)
        self.retry = retry
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- connection management --------------------------------------------------

    def _connect(self, timeout: float) -> socket.socket:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=timeout
            )
        except OSError as exc:
            raise TransportConnectError(
                f"cannot connect to daemon at {self.address}: {exc}"
            ) from exc
        sock.settimeout(timeout)
        try:
            send_frame(
                sock, {"qckpt": PROTOCOL_VERSION, "token": self.token or ""}
            )
            welcome = recv_frame(sock, self.max_frame_bytes)
        except TransportError:
            sock.close()
            raise
        if welcome is None or not welcome.get("ok"):
            error = (welcome or {}).get("error", "connection closed")
            sock.close()
            raise TransportError(
                f"daemon at {self.address} refused the handshake: {error}"
            )
        return sock

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    # -- round trips ------------------------------------------------------------

    def request(
        self,
        body: Dict,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Dict:
        """One request/response round trip; raises on transport failure.

        Without a :attr:`retry` policy the request is retried on a *fresh*
        connection exactly once if the cached connection turns out to be
        dead (daemon restarted, idle timeout) — and only when the failure
        happened before any response byte arrived, so a request is never
        silently issued twice after the daemon may have acted on it.

        With a policy, every transport failure — including a death
        mid-send, after the daemon may have applied the op — is retried
        with backoff under the **same request id**; the daemon's
        idempotency cache turns the resend into a response replay instead
        of a second apply.  The id is generated once, before any attempt,
        and threaded through every reconnect (the fix for the double-apply
        race).  ``deadline`` (or the ambient one) bounds the backoff sleeps.
        """
        timeout = self.timeout if timeout is None else float(timeout)
        request_id = str(body.get("id") or uuid.uuid4().hex[:12])
        frame = {**body, "id": request_id}
        if deadline is None:
            deadline = current_deadline()
        with self._lock:
            if self.retry is not None:
                last_error: Optional[TransportError] = None
                for attempt in range(self.retry.max_attempts):
                    if attempt:
                        self.retry.pause(attempt - 1, deadline)
                    try:
                        return self._attempt(frame, request_id, timeout)
                    except TransportError as exc:
                        self._drop()
                        last_error = exc
                raise last_error
            for attempt in (0, 1):
                sock = self._sock
                fresh = sock is None
                if sock is None:
                    sock = self._connect(timeout)
                    self._sock = sock
                else:
                    sock.settimeout(timeout)
                try:
                    send_frame(sock, frame)
                except TransportError:
                    self._drop()
                    if fresh or attempt:
                        raise
                    continue  # stale cached connection: retry once, fresh
                try:
                    response = recv_frame(sock, self.max_frame_bytes)
                except TransportError:
                    self._drop()
                    raise
                if response is None:
                    self._drop()
                    if fresh or attempt:
                        raise TransportError(
                            f"daemon at {self.address} closed the "
                            "connection before responding"
                        )
                    continue
                if response.get("id") != request_id:
                    # Not ours — e.g. the server's buffered idle-timeout
                    # error envelope (no id) on a connection it already
                    # closed.  Frames are ordered, so an un-correlated
                    # frame predates our request: the server never read
                    # it on this connection, making a single fresh retry
                    # safe.
                    self._drop()
                    if fresh or attempt:
                        raise TransportError(
                            f"response id {response.get('id')!r} does not "
                            f"match request id {request_id!r}"
                        )
                    continue
                return response
        raise TransportError(f"request to {self.address} failed")  # unreachable

    def _attempt(
        self, frame: Dict, request_id: str, timeout: float
    ) -> Dict:
        """One send/recv on the current (or a fresh) connection.

        Any failure raises :class:`TransportError`; the policy loop owns
        classification — with id-correlated deduplication on the daemon a
        resend is always safe, so there is nothing to distinguish.
        """
        sock = self._sock
        if sock is None:
            sock = self._connect(timeout)
            self._sock = sock
        else:
            sock.settimeout(timeout)
        send_frame(sock, frame)
        response = recv_frame(sock, self.max_frame_bytes)
        if response is None:
            raise TransportError(
                f"daemon at {self.address} closed the connection before "
                "responding"
            )
        if response.get("id") != request_id:
            # A stale buffered frame (e.g. the server's idle-timeout error
            # envelope) from before this request: the connection is out of
            # sync, drop it and resend on a fresh one.
            raise TransportError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}"
            )
        return response

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
