"""Content-addressed, sharded chunk store for multi-job checkpointing.

Where :class:`~repro.core.store.CheckpointStore` persists each checkpoint as
one monolithic QCKPT object, the service chunk store splits every snapshot
into fixed-size blocks of canonical tensor bytes and addresses each block by
the SHA-256 of its *raw* content:

* blocks whose content was already written — by an earlier checkpoint of the
  same job, or by *any other job* sharing the store — are not written again
  (cross-checkpoint and cross-job dedup; sweep fleets share their initial
  and slow-moving tensors),
* the content address doubles as the integrity check: a chunk read back must
  hash to its own name,
* chunk names hash uniformly, so putting a
  :class:`~repro.storage.sharded.ShardedBackend` underneath spreads fleet
  write traffic across devices with no placement state.

Layout inside the backend (flat namespace, possibly sharded)::

    ch-<sha256[:32]>             # one compressed block of tensor bytes
    job-<job>-ckpt-000001.json   # checkpoint manifest: meta tree + block map

Ordering guarantee (same as the core store): every referenced chunk is fully
written *before* the checkpoint manifest that names it, so a crash leaves at
most orphan chunks — swept by :meth:`ChunkStore.gc` against the set of
blocks reachable from surviving manifests.  Refcounts are therefore never
persisted; manifests are the single source of truth.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.codecs import get_codec
from repro.core.hashing import block_address_stream
from repro.core.restore import (
    CONTENT_ADDRESS_PREFIX,
    BlockSpec,
    MODE_WHOLE,
    ObjectPlan,
    RestoreExecutor,
    RestorePlan,
    RestoreSource,
    TensorPlan,
    content_address,
)
from repro.core.serialize import tensor_to_bytes
from repro.core.snapshot import TrainingSnapshot
from repro.errors import (
    CheckpointNotFoundError,
    ConfigError,
    IntegrityError,
    ReproError,
    SerializationError,
    StorageError,
    TransientStorageError,
)
from repro.faults.crashpoints import crash_point, register_crash_point
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.obs.trace import span_scope
from repro.storage.backend import StorageBackend, validate_name

CP_CHUNK_BEFORE_WRITE = register_crash_point(
    "chunkstore.chunk.before-write",
    "die before a new chunk's payload reaches the backend",
)
CP_CHUNK_AFTER_WRITE = register_crash_point(
    "chunkstore.chunk.after-write",
    "die after the chunk write lands but before it is published to the "
    "dedup index (an orphan chunk, no manifest)",
)
CP_MANIFEST_BEFORE_WRITE = register_crash_point(
    "chunkstore.manifest.before-write",
    "die with every chunk durable but the checkpoint manifest unwritten",
)
CP_MANIFEST_AFTER_WRITE = register_crash_point(
    "chunkstore.manifest.after-write",
    "die after the manifest commit point but before in-memory bookkeeping",
)

CHUNK_PREFIX = CONTENT_ADDRESS_PREFIX
MANIFEST_VERSION = 1


def chunk_name(raw: bytes, codec_name: str) -> str:
    """Content address of one raw block.

    The codec is part of the identity: the same raw content stored under two
    codecs is two different objects, so stores reopened with a different
    codec neither overwrite old-codec chunks nor dedup against them — every
    manifest's ``codec`` field describes all of its blocks.  (The address
    format itself is owned by :func:`repro.core.restore.content_address`, so
    the restore executor can verify chunks without importing this module.)
    """
    return content_address(raw, codec_name)


class ChunkStoreStats(StatsView):
    """Dedup accounting across the store's lifetime (this process).

    ``logical`` counts every block reference as if dedup did not exist;
    ``physical`` counts blocks actually written.  Their ratio is what
    content addressing saved.  Registry-backed (``store.*`` series) so a
    fleet daemon's shared registry sees the same numbers.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        super().__init__()
        registry = metrics if metrics is not None else MetricsRegistry()
        for name in (
            "chunks_written",
            "chunks_deduped",
            "logical_bytes",
            "physical_bytes",
            "manifest_bytes",
            "checkpoints",
        ):
            self._bind(name, registry.counter(f"store.{name}"))

    @property
    def dedup_ratio(self) -> float:
        if self.physical_bytes == 0:
            return 1.0
        return self.logical_bytes / self.physical_bytes


class ChunkManifestSource(RestoreSource):
    """Restore source over one chunk-store checkpoint manifest.

    Plans chunk-object fetches: each block of a requested tensor is one
    content-addressed object, read whole (chunk objects *are* blocks) and
    verified against its address by the executor.  Chunks shared by several
    tensors are fetched once.  Reads go through :meth:`StorageBackend.read`,
    so a :class:`~repro.storage.tiered.TieredBackend` underneath promotes
    every chunk a restore touches — repeated restores of hot jobs run at
    fast-tier speed.
    """

    kind = "chunks"

    def __init__(self, backend: StorageBackend, object_name: str, manifest: Dict):
        self.backend = backend
        self.object_name = object_name
        self.manifest = manifest

    def read_object(self, name: str) -> bytes:
        try:
            return self.backend.read(name)
        except TransientStorageError:
            # Retryable by contract: let the executor's retry policy see
            # it instead of laundering it into permanent-looking damage.
            raise
        except StorageError as exc:
            if name.startswith(CHUNK_PREFIX):
                # The classic damage mode: a gc raced this restore, or a
                # shard was wiped.  Surface it as integrity damage naming
                # the checkpoint, not a bare missing-object error.
                raise IntegrityError(
                    f"checkpoint {self.manifest.get('ckpt_id')!r} of job "
                    f"{self.manifest.get('job')!r} references chunk {name} "
                    f"which is missing from the store "
                    f"(garbage-collected or lost): {exc}"
                ) from exc
            raise

    def read_range(self, name: str, start: int, length: int) -> bytes:
        return self.read_object(name)[start : start + length]

    def plan(
        self,
        names: Optional[Sequence[str]] = None,
        require_all: bool = True,
    ) -> RestorePlan:
        manifest = self.manifest
        wanted = None if names is None else tuple(dict.fromkeys(names))
        tensors: Dict[str, TensorPlan] = {}
        objects: Dict[str, ObjectPlan] = {}
        # What a full restore fetches: each *distinct* chunk once — blocks
        # deduplicated within the checkpoint share one stored object.
        total_stored = 0
        stored_addresses: set = set()
        found: set = set()
        for entry in manifest["tensors"]:
            blocks_meta = entry["blocks"]
            for block in blocks_meta:
                if block["chunk"] not in stored_addresses:
                    stored_addresses.add(block["chunk"])
                    total_stored += int(block["stored_nbytes"])
            name = entry["name"]
            if wanted is not None and name not in wanted:
                continue
            found.add(name)
            blocks = []
            for seq, block in enumerate(blocks_meta):
                address = block["chunk"]
                blocks.append(
                    BlockSpec(
                        tensor=name,
                        seq=seq,
                        object_name=address,
                        start=0,
                        stored_nbytes=int(block["stored_nbytes"]),
                        raw_nbytes=int(block["raw_nbytes"]),
                        chunk_address=address,
                    )
                )
                if address not in objects:
                    objects[address] = ObjectPlan(
                        name=address,
                        mode=MODE_WHOLE,
                        nbytes=int(block["stored_nbytes"]),
                    )
            tensors[name] = TensorPlan(
                name=name,
                dtype=entry["dtype"],
                shape=tuple(int(d) for d in entry["shape"]),
                transform="identity",
                transform_meta={},
                blocks=tuple(blocks),
            )
        if require_all and wanted is not None and found != set(wanted):
            missing = sorted(set(wanted) - found)
            raise SerializationError(
                f"tensors not in this checkpoint: {missing}"
            )
        return RestorePlan(
            kind=self.kind,
            meta=manifest["meta"],
            codec=manifest["codec"],
            tensors=tensors,
            objects=list(objects.values()),
            requested=wanted,
            total_stored_bytes=total_stored,
            checkpoint_id=manifest.get("ckpt_id"),
        )


@dataclass(frozen=True)
class ChunkCheckpointRecord:
    """Summary of one checkpoint committed to the chunk store."""

    job_id: str
    ckpt_id: str
    step: int
    object_name: str
    created: float
    n_blocks: int
    n_new_blocks: int
    logical_bytes: int
    physical_bytes: int
    extra: Dict = field(default_factory=dict)


class ChunkStore:
    """Multi-tenant snapshot store with content-addressed block dedup.

    Thread-safe: writer-pool workers serving different jobs commit
    checkpoints concurrently.  The chunk index is guarded by a lock; chunk
    payload writes are idempotent (same name ⇒ same bytes) so two workers
    racing on a block both land the identical object.
    """

    def __init__(
        self,
        backend: StorageBackend,
        codec: str = "zlib-6",
        block_bytes: int = 1 << 16,
        restore_workers: int = 4,
        tier_placement: bool = True,
        placement_journal=None,
        retry=None,
        metrics: Optional[MetricsRegistry] = None,
        metadb=None,
    ):
        if block_bytes < 64:
            raise ConfigError(f"block_bytes must be >= 64, got {block_bytes}")
        self.backend = backend
        self.codec = get_codec(codec)
        self.block_bytes = int(block_bytes)
        self.restore_workers = int(restore_workers)
        self.tier_placement = bool(tier_placement)
        # Shared placement journal (repro.storage.placement): when set,
        # fleet-wide sweeps like rebalance_tiers() serialize on its
        # "rebalance" lease, so two daemons sharing this store never demote
        # the same chunk set concurrently.
        self.placement_journal = placement_journal
        # Optional repro.storage.metadb.MetaDB: manifest headers and chunk
        # refs are mirrored there (files written first, index second) so
        # discovery, latest_valid and gc's liveness set become point
        # queries.  Every process sharing the backend must share the index
        # file too; the index is reconciled against the file listing on
        # open and any miss falls back to the scan.
        self.metadb = metadb
        # retry: an optional repro.reliability.RetryPolicy — restores retry
        # transient fetch failures and refetch blocks that fail verification.
        self._executor = RestoreExecutor(
            max_workers=restore_workers, retry=retry
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = ChunkStoreStats(self.metrics)
        self._lock = threading.RLock()
        # raw-hash name -> stored (compressed) size.  -1 marks a chunk another
        # save is currently packing+writing; a real size is published only
        # AFTER the chunk's backend write landed, so deduping against a known
        # entry never references bytes that might not exist.
        self._known: Dict[str, int] = {}
        # addresses pinned by in-flight saves (written or about to be
        # referenced, manifest not yet committed); gc treats them as live.
        self._inflight: Dict[str, int] = {}
        self._next_seq: Dict[str, int] = {}
        # job id -> the manifest object currently pinned to its fast tier.
        self._pinned_manifests: Dict[str, str] = {}
        self._adopt_existing()

    def _adopt_existing(self) -> None:
        """Rebuild the dedup index of a reopened store from its manifests.

        Only chunks actually present in the backend are adopted: a manifest
        may survive the loss of a chunk (a wiped shard), and deduping against
        a phantom entry would silently propagate the damage into brand-new
        checkpoints instead of letting the re-save heal it.
        """
        present = set(self.backend.list(CHUNK_PREFIX))
        listed: Dict[str, int] = {}
        for object_name in self.backend.list("job-"):
            job_id, seq = _parse_manifest_name(object_name)
            if job_id is None:
                continue
            listed[object_name] = seq
            self._next_seq[job_id] = max(self._next_seq.get(job_id, 1), seq + 1)
        if self.metadb is not None:
            # Index-assisted adopt: reconcile rows against the name listing
            # (reading only manifests the index does not know), then pull
            # the dedup map out of one query instead of O(store) reads.
            try:
                self._reconcile_index(set(listed))
                for chunk, nbytes in self.metadb.chunk_sizes(
                    self.codec.name
                ).items():
                    if chunk in present:
                        self._known[chunk] = int(nbytes)
            except StorageError:
                self._adopt_by_scan(listed, present)
        else:
            self._adopt_by_scan(listed, present)
        # Re-establish hot placement: each job's newest manifest goes back
        # onto the fast tier of whatever shard holds it.
        for job_id in list(self._next_seq):
            names = self.manifest_names(job_id)
            if names:
                self._pin_manifest(names[-1])

    def _adopt_by_scan(self, listed: Dict[str, int], present: set) -> None:
        """Read every manifest to rebuild the dedup index (no metadata
        index, or the index failed — the files are always enough)."""
        for object_name in listed:
            try:
                manifest = self._read_manifest(object_name)
            except ReproError:
                continue  # damaged manifest: recovery skips it too
            if manifest.get("codec") != self.codec.name:
                continue  # other-codec chunks live in a disjoint address space
            for entry in manifest["tensors"]:
                for block in entry["blocks"]:
                    if block["chunk"] in present:
                        self._known[block["chunk"]] = int(
                            block["stored_nbytes"]
                        )

    def _reconcile_index(self, listed: set) -> None:
        """Make the index's manifest rows agree with the backend listing.

        Rows whose file is gone are deleted; listed manifests the index
        does not know are read (only the delta) and inserted.  Damaged
        manifests stay out of the index, matching the recovery path.
        """
        from repro.storage.metadb import index_manifest

        known_rows = self.metadb.manifest_objects()
        for object_name in known_rows - listed:
            self.metadb.delete_manifest(object_name)
        for object_name in sorted(listed - known_rows):
            try:
                manifest = self._read_manifest(object_name)
            except ReproError:
                continue
            index_manifest(self.metadb, object_name, manifest)

    # -- tier-aware placement ---------------------------------------------------

    def _tier_of(self, name: str):
        """The tiered backend holding ``name``, if placement is enabled."""
        if not self.tier_placement:
            return None
        return self.backend.tier_for(name)

    def _pin_manifest(self, object_name: str) -> None:
        """Keep a job's *newest* manifest fast-tier resident.

        The newest manifest is what every restore, discovery and gc pass
        reads first; pinning it means chunk churn cannot evict it.  Older
        manifests of the job are unpinned as newer ones land (they stay
        LRU-resident until evicted), so pinned bytes stay bounded at one
        manifest per job per tier no matter how long the history grows.
        """
        tier = self._tier_of(object_name)
        if tier is None:
            return
        job_id, _ = _parse_manifest_name(object_name)
        try:
            tier.pin(object_name)
        except (StorageError, ReproError):
            return  # placement is an optimization, never a save/load failure
        if job_id is not None:
            with self._lock:
                previous = self._pinned_manifests.get(job_id)
                self._pinned_manifests[job_id] = object_name
            if previous is not None and previous != object_name:
                previous_tier = self._tier_of(previous)
                if previous_tier is not None:
                    try:
                        previous_tier.unpin(previous)
                    except (StorageError, ReproError):
                        # Same contract as the pin above: advisory journal
                        # writes must never fail an already-committed save.
                        pass

    def rebalance_tiers(self, hot_per_job: int = 1) -> Dict[str, int]:
        """Demote cold chunks, promote the hot set; returns move counts.

        The *hot set* is every chunk referenced by the newest ``hot_per_job``
        checkpoints of each job — what the next fleet-wide restore would
        touch.  Fast-tier-resident chunks outside it are demoted (making
        room), hot chunks are promoted while capacity allows.  Manifests
        stay pinned throughout.  A no-op without a tiered backend.

        With a :attr:`placement_journal`, the sweep runs only while holding
        the journal's ``rebalance`` lease: two daemons sharing the store
        take turns instead of demoting the same chunks concurrently.  A
        store that cannot get the lease returns zero moves and names the
        current holder under ``"lease_holder"``.
        """
        if hot_per_job < 1:
            raise ConfigError(f"hot_per_job must be >= 1, got {hot_per_job}")
        journal = self.placement_journal
        if journal is not None:
            from repro.storage.placement import LEASE_REBALANCE

            if not journal.acquire_lease(LEASE_REBALANCE):
                return {
                    "promoted": 0,
                    "demoted": 0,
                    "lease_holder": journal.lease_holder(LEASE_REBALANCE),
                }
            try:
                return self._rebalance_tiers_locked(hot_per_job)
            finally:
                journal.release_lease(LEASE_REBALANCE)
        return self._rebalance_tiers_locked(hot_per_job)

    def _rebalance_tiers_locked(self, hot_per_job: int) -> Dict[str, int]:
        hot: set = set()
        for job_id in self.jobs():
            for object_name in self.manifest_names(job_id)[-hot_per_job:]:
                hot.update(self._manifest_references(object_name))
        promoted = 0
        demoted = 0
        addresses = self.backend.list(CHUNK_PREFIX)
        # Demote every cold chunk first so promotions land in freed space
        # instead of evicting other hot chunks.
        for address in addresses:
            if address in hot:
                continue
            tier = self._tier_of(address)
            if tier is None:
                continue
            try:
                demoted += 1 if tier.demote(address) else 0
            except (StorageError, ReproError):
                continue  # placement is best-effort
        for address in addresses:
            if address not in hot:
                continue
            tier = self._tier_of(address)
            if tier is None:
                continue
            try:
                promoted += 1 if tier.promote(address) else 0
            except (StorageError, ReproError):
                continue
        return {"promoted": promoted, "demoted": demoted}

    # -- saving -----------------------------------------------------------------

    def save_snapshot(
        self,
        job_id: str,
        snapshot: TrainingSnapshot,
        extra: Optional[Dict] = None,
    ) -> ChunkCheckpointRecord:
        """Commit ``snapshot`` for ``job_id``; dedups against every tenant.

        Observability wrapper: the commit runs under a ``store.save`` span
        (joining whatever trace is ambient — e.g. a pool task's) and its
        latency lands in the per-job ``save.seconds`` histogram.
        """
        started = time.perf_counter()
        stages: Dict[str, float] = {}
        with span_scope("store.save", job=job_id) as span:
            record = self._save_snapshot(job_id, snapshot, extra, stages)
            if span is not None:
                # Stage attribution for `qckpt profile`: wall seconds per
                # pipeline stage plus byte counts, accumulated inline by
                # the commit (no per-block spans on the hot path).
                span.attrs["ckpt"] = record.ckpt_id
                span.attrs["stages"] = {
                    stage: round(seconds, 6)
                    for stage, seconds in stages.items()
                    if seconds > 0
                }
                span.attrs["bytes"] = record.logical_bytes
                span.attrs["new_bytes"] = record.physical_bytes
        self.metrics.histogram("save.seconds", job=job_id).observe(
            time.perf_counter() - started
        )
        return record

    def _save_snapshot(
        self,
        job_id: str,
        snapshot: TrainingSnapshot,
        extra: Optional[Dict] = None,
        stages: Optional[Dict[str, float]] = None,
    ) -> ChunkCheckpointRecord:
        """The actual commit (see :meth:`save_snapshot`).

        Block packing (hash + compress) and chunk writes run outside the
        index lock, so concurrent jobs overlap their CPU and I/O; only index
        bookkeeping and sequence allocation serialize.  A new chunk is
        published to the dedup index only *after* its backend write returned
        — a racing save deduping against it can safely commit a manifest
        naming it.  Every address this save will reference (new or deduped)
        is pinned in ``_inflight`` until the manifest lands, so a concurrent
        :meth:`gc` cannot sweep it out from underneath the commit.

        Hashing makes one zero-copy pass per tensor: each block is a
        ``memoryview`` slice of the serialized stream fed straight into the
        address hash (:func:`repro.core.hashing.block_address_stream`), so no
        per-block ``bytes`` copy exists before the dedup decision.  Encoding
        is *pipelined*: a single packer thread speculatively compresses the
        next likely-new block while this thread writes the current one, so
        compression CPU overlaps backend I/O within one save.  Speculation is
        a pure perf hint — a block that turns out to dedup just discards the
        encode (``save.pipeline.wasted`` counts those, ``.speculated`` the
        attempts).
        """
        _validate_job_id(job_id)
        if stages is None:
            stages = {}
        stages.setdefault("serialize", 0.0)
        stages.setdefault("hash", 0.0)
        stages.setdefault("encode", 0.0)
        stages.setdefault("write", 0.0)
        stages.setdefault("manifest", 0.0)
        meta, tensors = snapshot.to_payload()
        directory = []
        n_blocks = 0
        n_new = 0
        logical = 0
        physical = 0
        reserved: List[str] = []
        pinned: List[str] = []
        # Speculative compress-ahead pays only when encoding costs CPU.
        speculative = self.codec.name != "none"
        packer: Optional[ThreadPoolExecutor] = None
        futures: Dict[int, Future] = {}

        def pin(address: str) -> None:
            self._inflight[address] = self._inflight.get(address, 0) + 1
            pinned.append(address)

        try:
            for name in sorted(tensors):
                stage_t0 = time.perf_counter()
                raw, dtype_token, shape = tensor_to_bytes(tensors[name])
                stage_t1 = time.perf_counter()
                stages["serialize"] += stage_t1 - stage_t0
                pairs = list(
                    block_address_stream(raw, self.block_bytes, self.codec.name)
                )
                stages["hash"] += time.perf_counter() - stage_t1
                futures.clear()
                blocks = []
                for idx, (piece, address) in enumerate(pairs):
                    if speculative:
                        for ahead in (idx, idx + 1):
                            if ahead >= len(pairs) or ahead in futures:
                                continue
                            with self._lock:
                                likely_new = (
                                    self._known.get(pairs[ahead][1]) is None
                                )
                            if likely_new:
                                if packer is None:
                                    packer = ThreadPoolExecutor(
                                        max_workers=1,
                                        thread_name_prefix="qckpt-pack",
                                    )
                                futures[ahead] = packer.submit(
                                    self.codec.encode, pairs[ahead][0]
                                )
                                self.metrics.counter(
                                    "save.pipeline.speculated"
                                ).inc()
                    n_blocks += 1
                    with self._lock:
                        pin(address)
                    encoded = futures.pop(idx, None)
                    stored_nbytes, was_new = self._ensure_block(
                        piece, address, reserved, encoded=encoded,
                        stages=stages,
                    )
                    if encoded is not None and not was_new:
                        self.metrics.counter("save.pipeline.wasted").inc()
                    if was_new:
                        n_new += 1
                        physical += stored_nbytes
                    blocks.append(
                        {
                            "chunk": address,
                            "raw_nbytes": len(piece),
                            "stored_nbytes": int(stored_nbytes),
                        }
                    )
                    logical += int(stored_nbytes)
                directory.append(
                    {
                        "name": name,
                        "dtype": dtype_token,
                        "shape": list(shape),
                        "blocks": blocks,
                    }
                )
            with self._lock:
                seq = self._next_seq.get(job_id, 1)
                self._next_seq[job_id] = seq + 1
                ckpt_id = f"ckpt-{seq:06d}"
            object_name = f"job-{job_id}-{ckpt_id}.json"
            manifest = {
                "version": MANIFEST_VERSION,
                "job": job_id,
                "ckpt_id": ckpt_id,
                "step": snapshot.step,
                "created": time.time(),
                "codec": self.codec.name,
                "meta": meta,
                "tensors": directory,
                "extra": dict(extra or {}),
            }
            stage_t0 = time.perf_counter()
            manifest_bytes = json.dumps(manifest, sort_keys=True).encode(
                "utf-8"
            )
            crash_point(CP_MANIFEST_BEFORE_WRITE)
            self.backend.write(object_name, manifest_bytes)
            crash_point(CP_MANIFEST_AFTER_WRITE)
            if self.metadb is not None:
                # Manifest first, index second: a crash here leaves the
                # index behind, and reconcile-on-open reads the delta.
                from repro.storage.metadb import index_manifest

                try:
                    index_manifest(self.metadb, object_name, manifest)
                except StorageError:
                    pass
            self._pin_manifest(object_name)
            stages["manifest"] += time.perf_counter() - stage_t0
        except BaseException:
            # Roll back reservations that never published: concurrent
            # writers must not wait on (or dedup against) content whose
            # write died.  Published chunks stay — their bytes are in the
            # backend; if no manifest ever names them, gc sweeps them.
            with self._lock:
                for address in reserved:
                    if self._known.get(address) == -1:
                        del self._known[address]
                self._unpin(pinned)
            raise
        finally:
            # Unconsumed speculation (aborted save) must not keep views of
            # the tensor stream alive or leave the packer thread behind.
            for future in futures.values():
                future.cancel()
            if packer is not None:
                packer.shutdown(wait=True)
        with self._lock:
            self._unpin(pinned)
            self.stats.chunks_written += n_new
            self.stats.logical_bytes += logical
            self.stats.physical_bytes += physical
            self.stats.manifest_bytes += len(manifest_bytes)
            self.stats.checkpoints += 1
        return ChunkCheckpointRecord(
            job_id=job_id,
            ckpt_id=ckpt_id,
            step=snapshot.step,
            object_name=object_name,
            created=float(manifest["created"]),
            n_blocks=n_blocks,
            n_new_blocks=n_new,
            logical_bytes=logical,
            physical_bytes=physical,
            extra=dict(extra or {}),
        )

    def _ensure_block(
        self,
        piece,
        address: str,
        reserved: List[str],
        encoded: Optional[Future] = None,
        stages: Optional[Dict[str, float]] = None,
    ) -> Tuple[int, bool]:
        """Make sure ``address`` holds ``piece``; returns ``(size, was_new)``.

        Three outcomes per attempt: the chunk is published (dedup hit), this
        thread claims the reservation and writes it, or another thread holds
        the reservation — then wait for its write to publish.  If that
        writer fails, its rollback removes the reservation and the wait
        returns ``None``; we loop and claim the address ourselves (we hold
        the bytes in hand, so the failed peer must not fail us too).

        ``piece`` is any bytes-like view of the block; ``encoded`` optionally
        carries a speculative compress-ahead future whose result replaces the
        inline ``codec.encode`` when this thread wins the claim.
        """
        while True:
            with self._lock:
                stored_nbytes = self._known.get(address)
                if stored_nbytes is None:
                    # Reserve the address so a racing writer of the same
                    # content skips the redundant encode+write.
                    self._known[address] = -1
                    reserved.append(address)
                    claimed = True
                elif stored_nbytes == -1:
                    claimed = False
                else:
                    self.stats.chunks_deduped += 1
                    return int(stored_nbytes), False
            if claimed:
                stage_t0 = time.perf_counter()
                if encoded is not None:
                    stored = encoded.result()
                else:
                    stored = self.codec.encode(piece)
                if not isinstance(stored, bytes):
                    # The identity codec hands the input view back; the
                    # backend must never hold a view aliasing a live tensor.
                    stored = bytes(stored)
                stage_t1 = time.perf_counter()
                crash_point(CP_CHUNK_BEFORE_WRITE)
                self.backend.write(address, stored)
                crash_point(CP_CHUNK_AFTER_WRITE)
                if stages is not None:
                    stage_t2 = time.perf_counter()
                    stages["encode"] += stage_t1 - stage_t0
                    stages["write"] += stage_t2 - stage_t1
                with self._lock:
                    # Write landed: now (and only now) publish it, so a
                    # racing save deduping against this entry can safely
                    # commit a manifest naming the chunk.
                    self._known[address] = len(stored)
                return len(stored), True
            stage_t0 = time.perf_counter()
            waited = self._wait_for_size(address)
            if stages is not None:
                # Waiting on a peer's in-flight write is write-bound time.
                stages["write"] += time.perf_counter() - stage_t0
            if waited is not None:
                with self._lock:
                    self.stats.chunks_deduped += 1
                return waited, False

    def _unpin(self, pinned: List[str]) -> None:
        """Release this save's in-flight pins (caller holds the lock)."""
        for address in pinned:
            count = self._inflight.get(address, 0) - 1
            if count <= 0:
                self._inflight.pop(address, None)
            else:
                self._inflight[address] = count
        pinned.clear()

    def _wait_for_size(
        self, address: str, timeout: float = 60.0
    ) -> Optional[int]:
        """Wait for a reserved chunk to publish its stored size.

        Returns the size once the owning writer's backend write lands, or
        ``None`` if the reservation disappeared (the writer failed and
        rolled back) — the caller should claim the address itself.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                size = self._known.get(address)
                if size is None:
                    return None
                if size >= 0:
                    return size
            time.sleep(0.001)
        raise IntegrityError(f"chunk {address} never finished packing")

    # -- discovery ----------------------------------------------------------------

    def jobs(self) -> List[str]:
        """Job ids with at least one committed checkpoint."""
        if self.metadb is not None:
            try:
                jobs = self.metadb.jobs()
            except StorageError:
                jobs = []
            if jobs:
                return jobs
            # Empty index: fall through to the scan (a stale index must
            # never hide checkpoints; an empty store scans for free).
        found = set()
        for object_name in self.backend.list("job-"):
            job_id, _ = _parse_manifest_name(object_name)
            if job_id is not None:
                found.add(job_id)
        return sorted(found)

    def manifest_names(self, job_id: str) -> List[str]:
        """Manifest object names of ``job_id`` in commit (sequence) order."""
        _validate_job_id(job_id)
        if self.metadb is not None:
            try:
                names = self.metadb.manifest_names(job_id)
            except StorageError:
                names = []
            if names:
                return names
        return self.backend.list(f"job-{job_id}-ckpt-")

    def has_checkpoints(self, job_id: str) -> bool:
        """Whether ``job_id`` has at least one committed checkpoint — the
        daemon's resumability probe, one point query under an index."""
        _validate_job_id(job_id)
        if self.metadb is not None:
            try:
                if self.metadb.has_manifests(job_id):
                    return True
            except StorageError:
                pass
        return bool(self.backend.list(f"job-{job_id}-ckpt-"))

    def latest(self, job_id: str) -> Optional[str]:
        """Newest checkpoint id of ``job_id`` (highest sequence).

        Sequence order is commit order: a save allocates its sequence only
        after every earlier save of the job committed (per-job channels are
        FIFO, and the fleet harness waits out a dead incarnation's in-flight
        save before reincarnating), so the highest sequence is also the
        latest training state.
        """
        names = self.manifest_names(job_id)
        if not names:
            return None
        _, seq = _parse_manifest_name(names[-1])
        return f"ckpt-{seq:06d}"

    # -- loading -----------------------------------------------------------------

    def _read_manifest(self, object_name: str) -> Dict:
        try:
            manifest = json.loads(self.backend.read(object_name).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IntegrityError(
                f"manifest {object_name!r} is not valid JSON: {exc}"
            ) from exc
        if manifest.get("version") != MANIFEST_VERSION:
            raise IntegrityError(
                f"unsupported chunk manifest version {manifest.get('version')!r}"
            )
        return manifest

    def restore_source(
        self, job_id: str, ckpt_id: Optional[str] = None
    ) -> ChunkManifestSource:
        """Pipeline source over one committed checkpoint manifest
        (``ckpt_id=None`` selects the newest)."""
        _validate_job_id(job_id)
        if ckpt_id is None:
            ckpt_id = self.latest(job_id)
            if ckpt_id is None:
                raise CheckpointNotFoundError(
                    f"job {job_id!r} has no checkpoints"
                )
        object_name = f"job-{job_id}-{ckpt_id}.json"
        if not self.backend.exists(object_name):
            raise CheckpointNotFoundError(
                f"checkpoint {ckpt_id!r} of job {job_id!r} not found"
            )
        manifest = self._read_manifest(object_name)
        return ChunkManifestSource(self.backend, object_name, manifest)

    def plan_restore(
        self,
        job_id: str,
        ckpt_id: Optional[str] = None,
        names: Optional[Sequence[str]] = None,
    ) -> RestorePlan:
        """Fetch plan for one restore: which chunks, how many bytes."""
        return self.restore_source(job_id, ckpt_id).plan(
            names, require_all=False
        )

    def prefetch_restore(
        self,
        job_id: str,
        ckpt_id: Optional[str] = None,
        names: Optional[Sequence[str]] = None,
    ):
        """Start read-ahead for a restore that has not happened yet.

        Plans the restore and launches its chunk fetches on the executor's
        threads (bounded by the prefetch window, cancellable).  Every fetch
        goes through the normal backend read path, so with a
        :class:`~repro.storage.tiered.TieredBackend` underneath the touched
        chunks are *promoted* — by the time the actual restore runs, it is
        tier-warm.  The fleet daemon calls this the moment a job is
        preempted: the restart delay is exactly the window in which the
        restore set can be staged.  Returns the
        :class:`~repro.core.restore.PrefetchedPlan` handle (cancel it if
        the restore is abandoned); the later restore does not need the
        handle to benefit — promotion already happened.
        """
        source = self.restore_source(job_id, ckpt_id)
        plan = source.plan(names, require_all=False)
        return self._executor.prefetch(source, plan)

    def load_snapshot(
        self, job_id: str, ckpt_id: Optional[str] = None
    ) -> TrainingSnapshot:
        """Reassemble a snapshot (``ckpt_id=None`` selects the newest)."""
        meta, tensors = self.load_tensors(job_id, ckpt_id)
        return TrainingSnapshot.from_payload(meta, tensors)

    def load_tensors(
        self,
        job_id: str,
        ckpt_id: Optional[str] = None,
        names: Optional[Sequence[str]] = None,
    ) -> Tuple[Dict, Dict[str, np.ndarray]]:
        """Resolve one checkpoint to ``(snapshot_meta, tensors)``.

        ``names`` selects a tensor subset (the chunk-level partial restore:
        only the blocks of the requested tensors are fetched).  Chunks are
        fetched through the restore pipeline — in parallel, each verified
        against its content address, decoded with *the manifest's* codec so
        a store reopened under a different codec still reads every old
        checkpoint.

        Runs under a ``store.restore`` span; latency lands in the per-job
        ``restore.seconds`` histogram.
        """
        started = time.perf_counter()
        stages: Dict[str, float] = {}
        with span_scope("store.restore", job=job_id) as span:
            stage_t0 = time.perf_counter()
            source = self.restore_source(job_id, ckpt_id)
            plan = source.plan(names, require_all=names is not None)
            stages["plan"] = time.perf_counter() - stage_t0
            result = self._executor.run(source, plan, stages=stages)
            if span is not None:
                span.attrs["partial"] = names is not None
                span.attrs["stages"] = {
                    stage: round(seconds, 6)
                    for stage, seconds in stages.items()
                    if seconds > 0
                }
                span.attrs["bytes"] = plan.fetch_bytes
                span.attrs["blocks"] = plan.n_blocks
        self.metrics.histogram("restore.seconds", job=job_id).observe(
            time.perf_counter() - started
        )
        return result

    def load_partial(
        self,
        job_id: str,
        names: Sequence[str],
        ckpt_id: Optional[str] = None,
    ) -> Tuple[Dict, Dict[str, np.ndarray]]:
        """Restore only the named tensors, fetching only their chunks.

        The fleet warm-start path: pulling the O(kB) ``params`` out of a
        checkpoint whose statevector cache is orders of magnitude larger
        costs only the parameter blocks plus the manifest.
        """
        wanted = tuple(dict.fromkeys(names))
        if not wanted:
            raise ConfigError("load_partial needs at least one tensor name")
        return self.load_tensors(job_id, ckpt_id, names=wanted)

    def latest_valid(
        self, job_id: str
    ) -> Tuple[Optional[str], Optional[TrainingSnapshot], List[Tuple[str, str]]]:
        """Newest checkpoint of ``job_id`` that loads; skips damaged ones.

        Returns ``(ckpt_id, snapshot, skipped)`` — the fleet-recovery analog
        of :class:`repro.core.recovery.RecoveryManager`.
        """
        skipped: List[Tuple[str, str]] = []
        for object_name in reversed(self.manifest_names(job_id)):
            _, seq = _parse_manifest_name(object_name)
            ckpt_id = f"ckpt-{seq:06d}"
            try:
                return ckpt_id, self.load_snapshot(job_id, ckpt_id), skipped
            except ReproError as exc:
                skipped.append((ckpt_id, str(exc)))
        return None, None, skipped

    def latest_valid_partial(
        self, job_id: str, names: Sequence[str]
    ) -> Tuple[Optional[str], Optional[Dict], List[Tuple[str, str]]]:
        """Newest checkpoint whose named tensors restore; skips damaged ones.

        The warm-start analog of :meth:`latest_valid`: each candidate costs
        only the requested tensors' chunk fetches (a damaged statevector
        block cannot fail a parameters-only probe, and a missing parameter
        chunk falls back to the previous checkpoint).  Returns
        ``(ckpt_id, {name: array} or None, skipped)``.
        """
        wanted = tuple(dict.fromkeys(names))
        if not wanted:
            raise ConfigError(
                "latest_valid_partial needs at least one tensor name"
            )
        skipped: List[Tuple[str, str]] = []
        for object_name in reversed(self.manifest_names(job_id)):
            _, seq = _parse_manifest_name(object_name)
            ckpt_id = f"ckpt-{seq:06d}"
            try:
                _, tensors = self.load_partial(job_id, wanted, ckpt_id)
                return ckpt_id, tensors, skipped
            except ReproError as exc:
                skipped.append((ckpt_id, str(exc)))
        return None, None, skipped

    # -- verification & GC ------------------------------------------------------------

    def verify(self, job_id: str, ckpt_id: str) -> Tuple[bool, str]:
        """Validate one checkpoint end to end."""
        try:
            self.load_snapshot(job_id, ckpt_id)
            return True, "ok"
        except ReproError as exc:
            return False, str(exc)

    def delete_checkpoint(self, job_id: str, ckpt_id: str) -> None:
        """Drop one manifest (manifest first; chunks go at the next gc)."""
        _validate_job_id(job_id)
        object_name = f"job-{job_id}-{ckpt_id}.json"
        self.backend.delete(object_name)
        if self.metadb is not None:
            try:
                self.metadb.delete_manifest(object_name)
            except StorageError:
                pass

    def _manifest_references(self, object_name: str) -> set:
        """Chunk addresses one manifest pins (empty if unreadable)."""
        try:
            manifest = self._read_manifest(object_name)
        except IntegrityError:
            # Unreadable manifest = unrestorable checkpoint; it pins
            # nothing.  Recovery reports it via latest_valid().
            return set()
        return {
            block["chunk"]
            for entry in manifest["tensors"]
            for block in entry["blocks"]
        }

    def gc(self, keep_last_per_job: Optional[int] = None) -> Dict[str, int]:
        """Apply retention and sweep unreferenced chunks.

        Returns ``{"manifests": n, "chunks": n, "bytes": n}`` deleted.
        Unlike per-job retention in the core store, the sweep is global: a
        chunk survives as long as *any* job still references it.

        Concurrency: the bulk of the work — reading every manifest — runs
        without the index lock, so concurrent saves are not stalled for the
        whole sweep.  The lock is held only to reconcile: manifests that
        committed during the scan are read then, in-flight pins are added,
        and the deletes happen under the lock so they cannot race a save
        re-writing the same address (a writer pins before it writes).
        """
        if keep_last_per_job is not None and keep_last_per_job < 1:
            raise ConfigError(
                f"keep_last_per_job must be >= 1, got {keep_last_per_job}"
            )
        deleted_manifests = 0
        if keep_last_per_job is not None:
            for job_id in self.jobs():
                names = self.manifest_names(job_id)
                for object_name in names[:-keep_last_per_job]:
                    self.backend.delete(object_name)
                    if self.metadb is not None:
                        try:
                            self.metadb.delete_manifest(object_name)
                        except StorageError:
                            pass
                    deleted_manifests += 1
        if self.metadb is not None:
            try:
                return self._gc_sweep_indexed(deleted_manifests)
            except StorageError:
                pass  # index failed: the scan below is always correct
        # Phase 1 (unlocked): scan every surviving manifest.
        scanned = set()
        referenced = set()
        for object_name in self.backend.list("job-"):
            job_id, _ = _parse_manifest_name(object_name)
            if job_id is None:
                continue
            scanned.add(object_name)
            referenced.update(self._manifest_references(object_name))
        # Phase 2 (locked): reconcile and sweep.
        with self._lock:
            for object_name in self.backend.list("job-"):
                job_id, _ = _parse_manifest_name(object_name)
                if job_id is None or object_name in scanned:
                    continue
                # Committed while we were scanning: read the small delta.
                referenced.update(self._manifest_references(object_name))
            deleted_chunks, deleted_bytes = self._sweep_chunks(referenced)
        return {
            "manifests": deleted_manifests,
            "chunks": deleted_chunks,
            "bytes": deleted_bytes,
        }

    def _gc_sweep_indexed(self, deleted_manifests: int) -> Dict[str, int]:
        """Liveness via the metadata index: reconcile rows against the
        listing (reading only the delta), then one query for the referenced
        set — no manifest walk."""
        with self._lock:
            listed = set()
            for object_name in self.backend.list("job-"):
                job_id, _ = _parse_manifest_name(object_name)
                if job_id is not None:
                    listed.add(object_name)
            self._reconcile_index(listed)
            referenced = self.metadb.live_chunks()
            deleted_chunks, deleted_bytes = self._sweep_chunks(referenced)
        return {
            "manifests": deleted_manifests,
            "chunks": deleted_chunks,
            "bytes": deleted_bytes,
        }

    def _sweep_chunks(self, referenced: set) -> Tuple[int, int]:
        """Delete unreferenced chunks (caller holds the lock)."""
        # Chunks a concurrent save has written (or will reference) but
        # not yet named in a manifest are live, not orphans.
        referenced = set(referenced)
        referenced.update(self._inflight)
        deleted_chunks = 0
        deleted_bytes = 0
        for address in self.backend.list(CHUNK_PREFIX):
            if address not in referenced:
                deleted_bytes += self.backend.size(address)
                self.backend.delete(address)
                self._known.pop(address, None)
                deleted_chunks += 1
        return deleted_chunks, deleted_bytes

    def total_physical_bytes(self) -> int:
        """Bytes held by chunk objects currently in the backend."""
        return sum(
            self.backend.size(name) for name in self.backend.list(CHUNK_PREFIX)
        )


def _validate_job_id(job_id: str) -> str:
    # "-ckpt-" anywhere (or "-ckpt" at the end) would make this job's
    # manifest names parse as another job's, colliding the namespaces.
    if (
        not isinstance(job_id, str)
        or not job_id
        or "-ckpt-" in job_id
        or job_id.endswith("-ckpt")
    ):
        raise ConfigError(f"invalid job id {job_id!r}")
    # Reuse backend name validation by probing the name we will construct.
    validate_name(f"job-{job_id}-ckpt-000001.json")
    return job_id


def _parse_manifest_name(object_name: str) -> Tuple[Optional[str], int]:
    """``job-<id>-ckpt-<seq>.json`` -> ``(job_id, seq)`` or ``(None, 0)``."""
    if not object_name.startswith("job-") or not object_name.endswith(".json"):
        return None, 0
    stem = object_name[len("job-") : -len(".json")]
    marker = stem.rfind("-ckpt-")
    if marker < 1:
        return None, 0
    job_id = stem[:marker]
    seq_text = stem[marker + len("-ckpt-") :]
    if not seq_text.isdigit():
        return None, 0
    return job_id, int(seq_text)
