"""``qckpt`` command-line tool: inspect and validate checkpoint stores.

Subcommands::

    qckpt ls <dir>                 list checkpoints in a store directory
    qckpt inspect <file|dir/id>    dump a checkpoint header (no tensor decode)
    qckpt verify <dir>             validate every checkpoint end to end
    qckpt gc <dir> --keep-last N   apply a retention policy
    qckpt diff <dir> <id_a> <id_b> compare two checkpoints tensor by tensor
    qckpt export <dir> <id> <out>  materialize a checkpoint as a standalone file
    qckpt peek <dir> <id> <t...>   read named tensors via ranged (partial) I/O
    qckpt restore <dir> [...]      restore through the unified pipeline
                                   (--tensors subset / --warm-start / --plan);
                                   works on both monolithic and chunk stores
    qckpt stats <dir>              aggregate store statistics
    qckpt scrub <dir> [<dir>...]   verify chunk content; quarantine + repair
    qckpt fsck <dir> [<dir>...]    read-only health check (scrub, no repair)
    qckpt metrics [<dir>] [...]    one-shot telemetry dump (--json for raw);
                                   live from a daemon (--control/--connect)
                                   or the persisted <store>/obs/registry.json
    qckpt top [...]                live fleet dashboard: save/restore rates,
                                   dedup ratio, tier hits, breaker state
    qckpt fleet [--jobs N ...]     run a multi-job checkpoint-service scenario
    qckpt daemon start <dir>       run the long-running fleet daemon
                                   (--listen HOST:PORT serves TCP as well)
    qckpt daemon submit ...        submit a job to a running daemon
    qckpt daemon status ...        query daemon and per-job state
    qckpt daemon preempt ...       kill job incarnations (they reincarnate)
    qckpt daemon drain ...         finish running jobs, then stop the daemon
    qckpt daemon stop ...          stop now: flush queued saves, halt jobs

Every daemon client verb reaches its daemon through ``--control DIR``
(shared filesystem) or ``--connect HOST:PORT [--token T]`` (TCP).

Every subcommand is documented with copy-pasteable examples in
``docs/OPERATIONS.md``.  The CLI never unpickles anything — it reads QCKPT
headers (JSON) and validates checksums, so it is safe to point at untrusted
files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.serialize import inspect_header, pack_snapshot
from repro.core.store import CheckpointStore, RetentionPolicy
from repro.errors import ReproError
from repro.storage.local import LocalDirectoryBackend


def _open_store(path: str) -> CheckpointStore:
    return CheckpointStore(LocalDirectoryBackend(path))


def _human_bytes(n: int) -> str:
    size = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{n} B"


def cmd_ls(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    records = store.records()
    if not records:
        print("(empty store)")
        return 0
    print(f"{'ID':<14} {'KIND':<6} {'STEP':>8} {'SIZE':>12} {'CODEC':<8} BASE")
    for record in records:
        print(
            f"{record.id:<14} {record.kind:<6} {record.step:>8} "
            f"{_human_bytes(record.nbytes):>12} {record.codec:<8} "
            f"{record.base_id or '-'}"
        )
    latest = store.latest()
    print(f"\n{len(records)} checkpoint(s), {_human_bytes(store.total_bytes())} total")
    if latest is not None:
        print(f"latest: {latest.id} at step {latest.step}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    path = Path(args.target)
    if path.is_file():
        data = path.read_bytes()
    else:
        store_dir, _, checkpoint_id = args.target.rpartition("/")
        store = _open_store(store_dir or ".")
        record = store.get(checkpoint_id)
        data = LocalDirectoryBackend(store_dir or ".").read(record.object_name)
    header = inspect_header(data)
    if not args.tensors:
        header = dict(header)
        header["tensors"] = [
            {
                "name": t["name"],
                "dtype": t["dtype"],
                "shape": t["shape"],
                "stored_nbytes": t["stored_nbytes"],
                "transform": t.get("transform", "identity"),
            }
            for t in header.get("tensors", [])
        ]
    json.dump(header, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    results = store.verify_all()
    bad = 0
    for checkpoint_id, (ok, detail) in sorted(results.items()):
        status = "OK " if ok else "BAD"
        print(f"{status} {checkpoint_id}" + ("" if ok else f"  {detail}"))
        bad += 0 if ok else 1
    print(f"\n{len(results) - bad}/{len(results)} checkpoints valid")
    return 1 if bad else 0


def cmd_gc(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    retention = RetentionPolicy(
        keep_last=args.keep_last, keep_every=args.keep_every
    )
    deleted = store.gc(retention)
    print(f"deleted {len(deleted)} object(s)")
    for name in deleted:
        print(f"  {name}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    _, tensors_a = store.load_tensors(args.id_a)
    _, tensors_b = store.load_tensors(args.id_b)
    snapshot_a = store.load(args.id_a)
    snapshot_b = store.load(args.id_b)
    print(
        f"{args.id_a} (step {snapshot_a.step}) vs "
        f"{args.id_b} (step {snapshot_b.step})"
    )
    names = sorted(set(tensors_a) | set(tensors_b))
    identical = 0
    print(f"{'TENSOR':<28} {'SHAPE':<14} {'STATUS':<10} MAX |DELTA|")
    for name in names:
        a, b = tensors_a.get(name), tensors_b.get(name)
        if a is None or b is None:
            status, delta = ("only-b" if a is None else "only-a"), ""
        elif a.shape != b.shape or a.dtype != b.dtype:
            status, delta = "reshaped", ""
        elif np.array_equal(a, b):
            status, delta = "identical", "0"
            identical += 1
        else:
            status = "changed"
            delta = f"{float(np.max(np.abs(a - b))):.3e}"
        shape = "x".join(str(d) for d in (a if a is not None else b).shape) or "-"
        print(f"{name:<28} {shape:<14} {status:<10} {delta}")
    print(f"\n{identical}/{len(names)} tensors identical")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    chain = store.chain_length(args.id)
    snapshot = store.load(args.id)
    data = pack_snapshot(snapshot, codec=args.codec)
    Path(args.out).write_bytes(data)
    print(
        f"exported {args.id} (step {snapshot.step}, chain of {chain}) "
        f"to {args.out}: {_human_bytes(len(data))} standalone"
    )
    return 0


def cmd_peek(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    meta, tensors = store.load_partial(args.id, args.tensors)
    print(f"{args.id} at step {meta.get('step', '?')}")
    for name, array in tensors.items():
        preview = np.array2string(
            array.reshape(-1)[:4], precision=6, separator=", "
        )
        norm = float(np.linalg.norm(array))
        print(
            f"  {name}: {array.dtype} {'x'.join(str(d) for d in array.shape)} "
            f"|x|={norm:.6g} head={preview}"
        )
    return 0


def _print_plan(plan) -> None:
    fetched = plan.fetch_bytes
    total = plan.total_stored_bytes
    what = (
        "full checkpoint"
        if plan.requested is None
        else "tensors " + ", ".join(plan.requested)
    )
    print(
        f"plan [{plan.kind}]: {what}: {plan.n_blocks} block(s) from "
        f"{len(plan.objects)} object(s), fetching {_human_bytes(fetched)}"
        + (
            f" of {_human_bytes(total)} stored"
            f" ({100.0 * fetched / total:.1f}%)"
            if total
            else ""
        )
    )


def _print_tensors(tensors: dict) -> None:
    for name, array in tensors.items():
        preview = np.array2string(
            array.reshape(-1)[:4], precision=6, separator=", "
        )
        norm = float(np.linalg.norm(array))
        print(
            f"  {name}: {array.dtype} "
            f"{'x'.join(str(d) for d in array.shape) or 'scalar'} "
            f"|x|={norm:.6g} head={preview}"
        )


def cmd_restore(args: argparse.Namespace) -> int:
    """Restore a checkpoint through the unified pipeline.

    Detects the store format: a directory with ``MANIFEST.json`` is a
    monolithic :class:`CheckpointStore`; one with ``job-*.json`` manifests
    is a service :class:`ChunkStore`.  ``--tensors``/``--warm-start``
    restrict the plan to a tensor subset; ``--plan`` prints what would be
    fetched without fetching it.  Damaged checkpoints (a manifest naming a
    garbage-collected chunk, a bit-rotted object) surface as clean errors;
    without an explicit ``--id`` the restore falls back to the newest valid
    checkpoint, reporting what it skipped.
    """
    from repro.core.restore import WARM_START_TENSORS

    if args.warm_start and args.tensors:
        raise ReproError("--warm-start and --tensors are mutually exclusive")
    names = None
    if args.warm_start:
        names = list(WARM_START_TENSORS)
    elif args.tensors:
        names = list(args.tensors)

    backend = LocalDirectoryBackend(args.store)
    if backend.exists("MANIFEST.json"):
        return _restore_core(args, names)
    if backend.list("job-"):
        return _restore_chunks(args, backend, names)
    raise ReproError(
        f"{args.store!r} is neither a checkpoint store (no MANIFEST.json) "
        "nor a chunk store (no job-*.json manifests)"
    )


def _restore_core(args: argparse.Namespace, names) -> int:
    from repro.core.recovery import RecoveryManager

    store = _open_store(args.store)
    checkpoint_id = args.id
    skipped = []
    if checkpoint_id is None:
        if names is None:
            report = RecoveryManager(store).latest_valid()
            if not report.recovered:
                raise ReproError(
                    "no restorable checkpoint in store"
                    + (f"; skipped: {report.skipped}" if report.skipped else "")
                )
            checkpoint_id, skipped = report.record.id, report.skipped
        else:
            record, _, skipped = RecoveryManager(store).latest_valid_tensors(
                names
            )
            if record is None:
                raise ReproError(
                    "no restorable checkpoint in store"
                    + (f"; skipped: {skipped}" if skipped else "")
                )
            checkpoint_id = record.id
    for ckpt_id, reason in skipped:
        print(f"warning: skipped damaged checkpoint {ckpt_id}: {reason}")
    plans = store.restore_plan(checkpoint_id, names)
    for plan in plans:
        _print_plan(plan)
    if args.plan:
        return 0
    meta, tensors = (
        store.load_tensors(checkpoint_id)
        if names is None
        else store.load_partial(checkpoint_id, names)
    )
    print(f"{checkpoint_id} at step {meta.get('step', '?')}")
    _print_tensors(tensors)
    if args.out:
        if names is not None:
            raise ReproError(
                "--out requires a full restore (drop --tensors/--warm-start)"
            )
        data = pack_snapshot(store.load(checkpoint_id), codec=args.codec)
        Path(args.out).write_bytes(data)
        print(f"wrote {_human_bytes(len(data))} to {args.out}")
    return 0


def _restore_chunks(args: argparse.Namespace, backend, names) -> int:
    from repro.core.snapshot import TrainingSnapshot
    from repro.service.chunkstore import ChunkStore

    store = ChunkStore(backend)
    jobs = store.jobs()
    job_id = args.job
    if job_id is None:
        if len(jobs) != 1:
            raise ReproError(
                f"store holds jobs {jobs}; pick one with --job"
            )
        job_id = jobs[0]
    if args.plan:
        plan = store.plan_restore(job_id, args.id, names)
        _print_plan(plan)
        return 0
    if args.id is not None:
        # Explicit checkpoint: no fallback.  Damage (a manifest naming a
        # gc'd chunk, a corrupt block) surfaces as one clean error line.
        ckpt_id = args.id
        _print_plan(store.plan_restore(job_id, ckpt_id, names))
        meta, tensors = store.load_tensors(job_id, ckpt_id, names=names)
    else:
        # Newest-first with fallback — the same damage-tolerant walk fleet
        # recovery uses, so `qckpt restore` and reincarnation agree on what
        # counts as restorable.
        meta = None
        if names is None:
            ckpt_id, snapshot, skipped = store.latest_valid(job_id)
            tensors = None
            if snapshot is not None:
                meta, tensors = snapshot.to_payload()
        else:
            ckpt_id, tensors, skipped = store.latest_valid_partial(
                job_id, names
            )
        for bad_id, reason in skipped:
            print(f"warning: skipped damaged checkpoint {bad_id}: {reason}")
        if ckpt_id is None or tensors is None:
            raise ReproError(
                f"job {job_id!r} has no restorable checkpoint"
                + (
                    f"; skipped: {[s[0] for s in skipped]}"
                    if skipped
                    else ""
                )
            )
        plan = store.plan_restore(job_id, ckpt_id, names)
        _print_plan(plan)
        if meta is None:
            meta = plan.meta
    print(f"job {job_id} {ckpt_id} at step {meta.get('step', '?')}")
    _print_tensors(tensors)
    if args.out:
        if names is not None:
            raise ReproError(
                "--out requires a full restore (drop --tensors/--warm-start)"
            )
        snapshot = TrainingSnapshot.from_payload(meta, tensors)
        data = pack_snapshot(snapshot, codec=args.codec)
        Path(args.out).write_bytes(data)
        print(f"wrote {_human_bytes(len(data))} to {args.out}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    records = store.records()
    if not records:
        print("(empty store)")
        return 0
    by_kind: dict = {}
    by_codec: dict = {}
    for record in records:
        kind = by_kind.setdefault(record.kind, {"count": 0, "bytes": 0})
        kind["count"] += 1
        kind["bytes"] += record.nbytes
        by_codec[record.codec] = by_codec.get(record.codec, 0) + 1
    for kind, agg in sorted(by_kind.items()):
        print(
            f"{kind:<6} {agg['count']:>4} checkpoint(s) "
            f"{_human_bytes(agg['bytes']):>12}"
        )
    chains = [store.chain_length(record.id) for record in records]
    print(f"codec usage: {', '.join(f'{c}={n}' for c, n in sorted(by_codec.items()))}")
    print(f"longest restore chain: {max(chains)} object(s)")
    steps = [record.step for record in records]
    print(f"step range: {min(steps)}..{max(steps)}")
    print(f"total stored: {_human_bytes(store.total_bytes())}")
    return 0


def _scrub_backend(dirs):
    """Storage stack over chunk-store director(ies) for scrub/fsck.

    Mirrors how ``daemon start`` lays stores out on disk: a directory with
    ``shard-N`` subdirectories reopens as a :class:`ShardedBackend`; several
    directories are replicas of one logical store (read_repair off — scrub
    is the explicit repair path here, and fsck must observe, not heal).
    """
    from repro.storage.replicated import ReplicatedBackend
    from repro.storage.sharded import ShardedBackend

    def one(path: str):
        directory = Path(path)
        if (directory / "MANIFEST.json").exists():
            raise ReproError(
                f"{path} is a monolithic checkpoint store; scrub/fsck work "
                "on chunk stores — use 'qckpt verify' there instead"
            )
        shards = sorted(
            (p for p in directory.glob("shard-*") if p.is_dir()),
            key=lambda p: (len(p.name), p.name),
        )
        if shards:
            backends = [LocalDirectoryBackend(p) for p in shards]
            return (
                backends[0] if len(backends) == 1 else ShardedBackend(backends)
            )
        return LocalDirectoryBackend(directory)

    backends = [one(path) for path in dirs]
    if len(backends) == 1:
        return backends[0]
    return ReplicatedBackend(backends, read_repair=False)


def _scrub_journal(dirs, daemon_id=None):
    """Placement journal of the store, when it keeps one on disk."""
    from repro.storage.placement import PlacementJournal

    import uuid

    journal_dir = Path(dirs[0]) / "placement"
    if not journal_dir.is_dir():
        return None
    owner = daemon_id or f"scrub-{uuid.uuid4().hex[:8]}"
    return PlacementJournal(LocalDirectoryBackend(journal_dir), owner=owner)


def cmd_scrub(args: argparse.Namespace) -> int:
    from repro.obs.export import ObsDir, store_obs_dir
    from repro.obs.metrics import MetricsRegistry
    from repro.service.scrub import scrub_store

    backend = _scrub_backend(args.store)
    journal = _scrub_journal(args.store)
    # Scrub refreshes the persisted registry: it folds in the prior
    # snapshot (epoch-bumped) and writes back with this pass's scrub.*
    # series, so counters survive even daemons that never shut down clean.
    obs = ObsDir(store_obs_dir(args.store[0]))
    registry = MetricsRegistry()
    obs.load_registry(registry)
    report = scrub_store(backend, repair=True, journal=journal, metrics=registry)
    obs.save_registry(registry)
    print(report.summary())
    if report.lease_holder is not None:
        return 1
    # Orphan chunks are gc's business, not damage — only unrepaired
    # corruption (or an unrestorable checkpoint) fails the scrub.
    damaged = report.unrestorable or any(
        not f.repaired and f.kind != "orphan-chunk" for f in report.findings
    )
    return 1 if damaged else 0


def cmd_fsck(args: argparse.Namespace) -> int:
    from repro.service.scrub import scrub_store

    if args.index:
        return _fsck_index(args)
    # fsck observes without mutating — no registry write-back either.
    backend = _scrub_backend(args.store)
    report = scrub_store(backend, repair=False)
    print(report.summary())
    return 0 if report.clean else 1


def _fsck_index(args: argparse.Namespace) -> int:
    """Verify the metadata index agrees with the files it caches.

    The index is caught up first (suffix fold, manifest reconcile — exactly
    what any indexed open does), then every row is compared against a full
    read of the files.  A disagreement that survives catch-up means the
    index code is wrong or the .db belongs to another store; the runbook
    fix is always the same — delete the .db, it rebuilds.
    """
    from repro.service.chunkstore import ChunkStore, _parse_manifest_name
    from repro.storage.metadb import DB_FILENAME, MetaDB, manifest_index_row
    from repro.storage.placement import PlacementJournal

    import uuid

    db_path = Path(args.store[0]) / DB_FILENAME
    if not db_path.exists():
        print(
            f"index: no {DB_FILENAME} under {args.store[0]} — nothing to "
            "verify (an indexed open creates and populates it)"
        )
        return 0
    db = MetaDB(db_path)
    mismatches = []
    if db.discarded_previous:
        mismatches.append(
            "index file was corrupt or version-mismatched; it has been "
            "discarded and recreated empty"
        )
    backend = _scrub_backend(args.store)
    store = ChunkStore(backend, metadb=db)  # reconciles rows on open
    manifests = 0
    listed = set()
    for object_name in backend.list("job-"):
        job_id, _ = _parse_manifest_name(object_name)
        if job_id is None:
            continue
        listed.add(object_name)
        try:
            manifest = store._read_manifest(object_name)
        except ReproError:
            continue  # damaged manifests are fsck's (not --index's) business
        manifests += 1
        row = manifest_index_row(object_name, manifest)
        if object_name not in db.manifest_objects():
            mismatches.append(f"manifest {object_name} missing from index")
        elif row is not None and db.manifest_refs(object_name) != dict(row[6]):
            mismatches.append(
                f"chunk refs of {object_name} diverge between index and file"
            )
    for object_name in sorted(db.manifest_objects() - listed):
        mismatches.append(f"index row for deleted manifest {object_name}")
    records = 0
    journal_dir = Path(args.store[0]) / "placement"
    if journal_dir.is_dir():
        journal_backend = LocalDirectoryBackend(journal_dir)
        oracle = PlacementJournal(
            journal_backend, owner=f"fsck-{uuid.uuid4().hex[:8]}"
        )
        indexed = PlacementJournal(
            journal_backend,
            owner=f"fsck-{uuid.uuid4().hex[:8]}",
            metadb=db,
        )
        records = len(oracle.records())
        if indexed.pinned_names() != oracle.pinned_names():
            mismatches.append(
                f"indexed pin fold {sorted(indexed.pinned_names())} != "
                f"file-journal fold {sorted(oracle.pinned_names())}"
            )
        for role in sorted(set(oracle._leases) | set(indexed._leases)):
            if indexed.lease_holder(role) != oracle.lease_holder(role):
                mismatches.append(
                    f"lease {role!r}: index holder "
                    f"{indexed.lease_holder(role)!r} != file fold "
                    f"{oracle.lease_holder(role)!r}"
                )
    for line in mismatches:
        print(f"index MISMATCH: {line}")
    verdict = "FAILED" if mismatches else "OK"
    print(
        f"index {verdict}: {manifests} manifest(s), {records} journal "
        f"record(s) verified against {db_path}"
    )
    if mismatches:
        print("recovery: delete the .db file; it rebuilds on the next open")
    return 1 if mismatches else 0


def _hist_quantile(record: dict, q: float) -> float:
    """Quantile estimate from a snapshot histogram record (upper bound)."""
    count = record.get("count", 0)
    buckets = record.get("buckets", [])
    counts = record.get("counts", [])
    if not count or not buckets:
        return 0.0
    target = q * count
    seen = 0
    for index, bucket_count in enumerate(counts):
        seen += bucket_count
        if seen >= target:
            return buckets[min(index, len(buckets) - 1)]
    return buckets[-1]


def _series_value(snapshot: dict, name: str, **labels) -> float:
    """Value of one counter/gauge series in a snapshot (0.0 if absent)."""
    want = {str(k): str(v) for k, v in labels.items()}
    for record in snapshot.get("series", []):
        if record.get("name") == name and record.get("labels", {}) == want:
            return float(record.get("value", 0.0))
    return 0.0


def _job_histograms(snapshot: dict, name: str) -> dict:
    """``job label -> histogram record`` for every ``name`` series."""
    out = {}
    for record in snapshot.get("series", []):
        if record.get("name") == name and record.get("type") == "histogram":
            out[record.get("labels", {}).get("job", "")] = record
    return out


def _metrics_response(args: argparse.Namespace) -> dict:
    """Fetch telemetry: live daemon round trip, or the persisted registry."""
    from repro.obs.export import REGISTRY_FILENAME, store_obs_dir

    if args.control is not None or args.connect is not None:
        client = _daemon_client(args)
        response = client.request("metrics")
        if not response.get("ok"):
            raise ReproError(f"metrics failed: {response.get('error')}")
        return response
    store = getattr(args, "store", None)
    if not store:
        raise ReproError(
            "pick a source: a store directory (reads the persisted "
            "<store>/obs/registry.json) or --control/--connect (live daemon)"
        )
    registry_path = store_obs_dir(store) / REGISTRY_FILENAME
    try:
        snapshot = json.loads(registry_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ReproError(
            f"no persisted metrics at {registry_path} — a daemon writes it "
            "at clean shutdown and scrub refreshes it; query a live daemon "
            "with --control/--connect instead"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read {registry_path}: {exc}") from exc
    logical = _series_value(snapshot, "store.logical_bytes")
    physical = _series_value(snapshot, "store.physical_bytes")
    return {
        "ok": True,
        "source": str(registry_path),
        "epoch": snapshot.get("epoch"),
        "metrics": snapshot,
        "dedup_ratio": logical / physical if physical else 0.0,
    }


def _engine_line(snapshot: dict) -> str:
    """One-line engine/shard summary from ``engine.*`` / ``shard.*`` series.

    Empty string when the process never selected an engine (e.g. a metrics
    file persisted by a storage-only run).
    """
    tiers = [
        record.get("labels", {}).get("tier", "?")
        for record in snapshot.get("series", [])
        if record.get("name") == "engine.selected" and record.get("value")
    ]
    if not tiers:
        return ""
    text = f"engine: {'/'.join(sorted(set(tiers)))}"
    workers = _series_value(snapshot, "shard.workers")
    shifts = _series_value(snapshot, "shard.shifts")
    if workers or shifts:
        text += (
            f"  shard workers {workers:.0f}  "
            f"sharded shifts {shifts:.0f}"
        )
        crashes = _series_value(snapshot, "shard.worker_crashes")
        if crashes:
            text += f"  worker crashes {crashes:.0f}"
    return text


def _print_metrics(response: dict) -> None:
    snapshot = response.get("metrics", {})
    if "daemon_id" in response:
        print(
            f"daemon {response['daemon_id']}: {response.get('state')} at "
            f"tick {response.get('tick')} (metrics epoch "
            f"{response.get('epoch')})"
        )
    else:
        print(
            f"source: {response.get('source')} (metrics epoch "
            f"{response.get('epoch')})"
        )
    print(f"dedup ratio: {response.get('dedup_ratio', 0.0):.2f}x")
    engine_line = _engine_line(snapshot)
    if engine_line:
        print(engine_line)
    fast_hits = _series_value(snapshot, "tier.fast_hits", tier="fast")
    fast_misses = _series_value(snapshot, "tier.fast_misses", tier="fast")
    if fast_hits or fast_misses:
        total = fast_hits + fast_misses
        print(
            f"fast tier: {fast_hits:.0f}/{total:.0f} hits "
            f"({fast_hits / total:.0%})"
        )
    reliability = response.get("reliability")
    if reliability is not None:
        breaker = reliability.get("breaker_state", "-")
        print(
            f"reliability: {reliability.get('retries', 0)} retries, "
            f"{reliability.get('recovered_ops', 0)} recovered, "
            f"{reliability.get('exhausted_ops', 0)} exhausted, "
            f"breaker {breaker}"
        )
    queues = response.get("queues")
    if queues:
        depths = ", ".join(f"{j}={d}" for j, d in sorted(queues.items()))
        print(f"queues: {depths}")
    saves = _job_histograms(snapshot, "save.seconds")
    restores = _job_histograms(snapshot, "restore.seconds")
    if saves or restores:
        print(
            f"\n{'JOB':<12} {'SAVES':>6} {'MEAN(ms)':>9} {'P50(ms)':>8} "
            f"{'P99(ms)':>8} {'RESTORES':>9} {'RST-P99(ms)':>12}"
        )
        for job in sorted(set(saves) | set(restores)):
            save = saves.get(job)
            restore = restores.get(job)
            s_count = save.get("count", 0) if save else 0
            s_mean = (
                save["sum"] / s_count * 1000 if save and s_count else 0.0
            )
            print(
                f"{job or '-':<12} {s_count:>6} {s_mean:>9.2f} "
                f"{_hist_quantile(save or {}, 0.5) * 1000:>8.2f} "
                f"{_hist_quantile(save or {}, 0.99) * 1000:>8.2f} "
                f"{restore.get('count', 0) if restore else 0:>9} "
                f"{_hist_quantile(restore or {}, 0.99) * 1000:>12.2f}"
            )
    counters = [
        record
        for record in snapshot.get("series", [])
        if record.get("type") in ("counter", "gauge")
        and record.get("value")
    ]
    if counters:
        print("\nSERIES")
        for record in counters:
            labels = record.get("labels", {})
            label_text = (
                "{"
                + ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                + "}"
                if labels
                else ""
            )
            print(
                f"  {record['name']}{label_text} = {record['value']:g}"
            )


def cmd_metrics(args: argparse.Namespace) -> int:
    """One-shot telemetry dump from a live daemon or a persisted registry."""
    if args.prom:
        if args.control is not None or args.connect is not None:
            client = _daemon_client(args)
            response = client.request("metrics_text")
            if not response.get("ok"):
                raise ReproError(
                    f"metrics_text failed: {response.get('error')}"
                )
            print(response.get("text", ""), end="")
            return 0
        from repro.obs.export import prometheus_text

        response = _metrics_response(args)
        print(prometheus_text(response.get("metrics", {})), end="")
        return 0
    response = _metrics_response(args)
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    _print_metrics(response)
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live fleet dashboard: poll the daemon's ``metrics`` op and render.

    Rates are deltas between consecutive polls; a poll that crosses a
    metrics-epoch boundary (daemon restarted between polls) skips the
    rate column instead of reporting a bogus negative rate.
    """
    import time as _time

    if args.control is None and args.connect is None:
        raise ReproError(
            "qckpt top needs a live daemon: --control DIR or "
            "--connect HOST:PORT"
        )
    if args.interval <= 0:
        raise ReproError(f"--interval must be > 0, got {args.interval}")
    previous = None
    shown = 0
    try:
        while True:
            response = _metrics_response(args)
            history = _top_history(args)
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            _print_top(response, previous, args.interval, history)
            previous = response
            shown += 1
            if args.iterations and shown >= args.iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _top_history(args: argparse.Namespace):
    """Sampled ``save.seconds`` history from the daemon's ``series`` op.

    ``None`` when the daemon predates the op or runs without a timeseries
    store — top silently falls back to two-frame deltas.
    """
    try:
        client = _daemon_client(args)
        response = client.request(
            "series", name="save.seconds", window=120.0, limit=32
        )
    except ReproError:
        return None
    return response if response.get("ok") else None


_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _sparkline(points, width: int = 16) -> str:
    """Per-gap delta sparkline over ``series`` op points.

    Points are ``[ts, epoch, cumulative]`` triples, oldest first.  A gap
    that crosses a metrics-epoch boundary (daemon restarted between
    samples) renders as ``·`` instead of a bogus negative bar.
    """
    deltas = []
    for prev, cur in zip(points, points[1:]):
        if cur[1] != prev[1] or cur[2] < prev[2]:
            deltas.append(None)
        else:
            deltas.append(cur[2] - prev[2])
    deltas = deltas[-width:]
    if not deltas:
        return ""
    peak = max((d for d in deltas if d is not None), default=0.0)
    out = []
    for delta in deltas:
        if delta is None:
            out.append("·")
        elif not peak:
            out.append(_SPARK_CHARS[0])
        else:
            index = int(delta / peak * (len(_SPARK_CHARS) - 1) + 0.5)
            out.append(_SPARK_CHARS[min(index, len(_SPARK_CHARS) - 1)])
    return "".join(out)


def _print_top(response: dict, previous, interval: float, history=None) -> None:
    snapshot = response.get("metrics", {})
    prev_snapshot = (previous or {}).get("metrics", {})
    same_epoch = (
        previous is not None
        and previous.get("epoch") == response.get("epoch")
    )
    print(
        f"daemon {response.get('daemon_id')}: {response.get('state')} "
        f"tick {response.get('tick')}  active {response.get('active_jobs')}"
        + ("" if same_epoch or previous is None else "  (restarted)")
    )
    fast_hits = _series_value(snapshot, "tier.fast_hits", tier="fast")
    fast_misses = _series_value(snapshot, "tier.fast_misses", tier="fast")
    hit_rate = (
        f"{fast_hits / (fast_hits + fast_misses):.0%}"
        if fast_hits + fast_misses
        else "-"
    )
    reliability = response.get("reliability") or {}
    print(
        f"dedup {response.get('dedup_ratio', 0.0):.2f}x  "
        f"fast-tier hits {hit_rate}  "
        f"retries {reliability.get('retries', '-')}  "
        f"breaker {reliability.get('breaker_state', '-')}"
    )
    engine_line = _engine_line(snapshot)
    if engine_line:
        print(engine_line)
    queues = response.get("queues") or {}
    saves = _job_histograms(snapshot, "save.seconds")
    prev_saves = _job_histograms(prev_snapshot, "save.seconds")
    restores = _job_histograms(snapshot, "restore.seconds")
    hist_map = {}
    for entry in (history or {}).get("series", []):
        hist_map[entry.get("labels", {}).get("job", "")] = entry
    jobs = sorted(set(saves) | set(restores) | set(queues))
    if not jobs:
        print("(no per-job series yet)")
        return
    print(
        f"{'JOB':<12} {'SAVES':>6} {'SAVE/S':>7} {'P99(ms)':>8} "
        f"{'RESTORES':>9} {'QUEUE':>6}  TREND"
    )
    for job in jobs:
        save = saves.get(job, {})
        entry = hist_map.get(job)
        rate = "-"
        if entry is not None and entry.get("rate") is not None:
            # windowed, epoch-aware rate from the daemon's sampled history
            rate = f"{entry['rate']:.2f}"
        elif same_epoch:
            prev = prev_saves.get(job, {})
            delta = save.get("count", 0) - prev.get("count", 0)
            rate = f"{delta / interval:.2f}"
        trend = _sparkline(entry.get("points", [])) if entry else ""
        restore = restores.get(job, {})
        print(
            f"{job or '-':<12} {save.get('count', 0):>6} {rate:>7} "
            f"{_hist_quantile(save, 0.99) * 1000:>8.2f} "
            f"{restore.get('count', 0):>9} {queues.get(job, 0):>6}  {trend}"
        )


def cmd_health(args: argparse.Namespace) -> int:
    """Evaluate health rules against a daemon (live) or a store (offline).

    The exit code encodes the verdict — 0 ok, 1 warn, 2 critical — so
    scripts and probes can alert without parsing the output.
    """
    if args.control is not None or args.connect is not None:
        client = _daemon_client(args)
        response = client.request("health")
        if not response.get("ok"):
            raise ReproError(f"health failed: {response.get('error')}")
        report = response.get("health") or {}
        source = (
            f"daemon {response.get('daemon_id')}, {response.get('state')} "
            f"at tick {response.get('tick')}"
        )
    else:
        report, source = _offline_health(args)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        _print_health(report, source)
    return {"ok": 0, "warn": 1, "critical": 2}.get(report.get("verdict"), 2)


def _offline_health(args: argparse.Namespace):
    """(report dict, source text) from a store's persisted observability.

    Staleness rules are skipped offline: the registry file is *expected*
    to be old, that is not an incident.
    """
    from repro.obs.export import REGISTRY_FILENAME, store_obs_dir
    from repro.obs.health import HealthEngine
    from repro.obs.timeseries import DB_FILENAME, TimeSeriesDB

    store = getattr(args, "store", None)
    if not store:
        raise ReproError(
            "pick a source: a store directory (reads the persisted "
            "<store>/obs/registry.json + timeseries.db) or "
            "--control/--connect (live daemon)"
        )
    obs_dir = store_obs_dir(store)
    registry_path = obs_dir / REGISTRY_FILENAME
    try:
        snapshot = json.loads(registry_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ReproError(
            f"no persisted metrics at {registry_path} — a daemon writes it "
            "at clean shutdown; query a live daemon with --control/--connect "
            "instead"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read {registry_path}: {exc}") from exc
    timeseries = None
    db_path = obs_dir / DB_FILENAME
    if db_path.exists():
        timeseries = TimeSeriesDB(db_path)
    try:
        report = HealthEngine().evaluate(
            snapshot, timeseries, include_staleness=False
        )
    finally:
        if timeseries is not None:
            timeseries.close()
    return report.to_dict(), str(registry_path)


def _print_health(report: dict, source: str) -> None:
    verdict = str(report.get("verdict", "unknown"))
    findings = report.get("findings", [])
    firing = [f for f in findings if f.get("firing")]
    print(
        f"health {verdict.upper()}  ({len(findings)} rule(s) checked; "
        f"{source})"
    )
    for finding in firing:
        print(
            f"  [{finding.get('severity')}] {finding.get('rule')}: "
            f"{finding.get('reason')}"
        )
    if not firing:
        print("  all rules passing")


def cmd_profile(args: argparse.Namespace) -> int:
    """Span profiler over ``<store>/obs/trace.jsonl``: per-op aggregates,
    per-trace trees, critical paths, folded stacks."""
    from repro.obs import profile as obs_profile
    from repro.obs.export import TRACE_FILENAME, store_obs_dir

    trace_path = store_obs_dir(args.store) / TRACE_FILENAME
    trees = obs_profile.load_trees(trace_path)
    if not trees:
        raise ReproError(
            f"no spans in {trace_path} — run a traced workload (daemon, "
            "fleet, save/restore) against this store first"
        )
    if args.folded:
        for line in obs_profile.folded_stacks(trees):
            print(line)
        return 0
    if args.trace:
        if args.trace not in trees:
            raise ReproError(
                f"unknown trace {args.trace!r} ({len(trees)} trace(s) in "
                f"{trace_path})"
            )
        selected = args.trace
    elif args.last_save or args.last_restore:
        wanted = "store.save" if args.last_save else "store.restore"
        selected = obs_profile.newest_trace(trees, containing=wanted)
        if selected is None:
            raise ReproError(f"no trace containing {wanted} in {trace_path}")
    else:
        selected = None
    if args.json:
        print(
            json.dumps(
                _profile_json(trees, selected, obs_profile),
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    if selected is not None:
        _print_profile_trace(selected, trees[selected], obs_profile)
        return 0
    _print_profile_overview(trees, trace_path, obs_profile)
    return 0


def _profile_json(trees, selected, obs_profile) -> dict:
    def node_dict(node):
        return {
            "name": node.name,
            "duration_ms": round(node.duration_ms, 3),
            "self_ms": round(node.self_ms, 3),
            "status": node.status,
            "synthetic": node.synthetic,
            "bytes": node.bytes,
            "children": [node_dict(child) for child in node.children],
        }

    out = {
        "traces": len(trees),
        "aggregate": [
            {
                "name": agg.name,
                "count": agg.count,
                "total_ms": round(agg.total_ms, 3),
                "self_ms": round(agg.self_ms, 3),
                "mean_ms": round(agg.mean_ms, 3),
                "bytes": agg.bytes,
                "errors": agg.errors,
                "throughput_mb_s": (
                    None
                    if agg.throughput_mb_s is None
                    else round(agg.throughput_mb_s, 3)
                ),
            }
            for agg in obs_profile.aggregate(trees)
        ],
    }
    if selected is not None:
        roots = trees[selected]
        out["trace"] = selected
        out["spans"] = [node_dict(root) for root in roots]
        heaviest = max(roots, key=lambda root: root.duration_ms)
        out["critical_path"] = [
            {"name": node.name, "duration_ms": round(node.duration_ms, 3)}
            for node in obs_profile.critical_path(heaviest)
        ]
    return out


def _print_profile_node(node, root_ms: float, depth: int = 0) -> None:
    pct = node.duration_ms / root_ms * 100 if root_ms else 0.0
    label = ("  " * depth) + node.name
    extra = ""
    if node.bytes:
        extra = f"  {node.bytes / (1 << 20):.2f} MiB"
    if node.status != "ok":
        extra += f"  [{node.status}]"
    print(
        f"  {label:<34} {node.duration_ms:>9.2f}ms "
        f"self {node.self_ms:>8.2f}ms {pct:>5.1f}%{extra}"
    )
    for child in node.children:
        _print_profile_node(child, root_ms, depth + 1)


def _print_critical_path(root, obs_profile) -> None:
    path = obs_profile.critical_path(root)
    chain = " -> ".join(
        f"{node.name} ({node.duration_ms:.2f}ms)" for node in path
    )
    print(f"critical path: {chain}")
    target = path[-1]
    if target.synthetic and len(path) > 1:
        target = path[-2]
    coverage = obs_profile.stage_coverage(target)
    if coverage is not None and target.children:
        print(
            f"stage coverage: {coverage:.1%} of {target.name} wall time "
            "attributed to named child stages"
        )


def _print_profile_trace(trace_id: str, roots, obs_profile) -> None:
    print(f"trace {trace_id} ({len(roots)} root span(s))")
    heaviest = max(roots, key=lambda root: root.duration_ms)
    for root in roots:
        _print_profile_node(root, heaviest.duration_ms or 1.0)
    print()
    _print_critical_path(heaviest, obs_profile)


def _print_profile_overview(trees, trace_path, obs_profile) -> None:
    aggregates = obs_profile.aggregate(trees)
    print(f"{len(trees)} trace(s) in {trace_path}")
    print(
        f"\n{'OP':<26} {'COUNT':>6} {'TOTAL(ms)':>10} {'SELF(ms)':>9} "
        f"{'MEAN(ms)':>9} {'MB/s':>7} {'ERR':>4}"
    )
    for agg in aggregates:
        mbs = "-" if agg.throughput_mb_s is None else f"{agg.throughput_mb_s:.1f}"
        print(
            f"{agg.name:<26} {agg.count:>6} {agg.total_ms:>10.2f} "
            f"{agg.self_ms:>9.2f} {agg.mean_ms:>9.2f} {mbs:>7} "
            f"{agg.errors:>4}"
        )
    for wanted in ("store.save", "store.restore"):
        trace_id = obs_profile.newest_trace(trees, containing=wanted)
        if trace_id is None:
            continue
        span = obs_profile.find_span(trees[trace_id], wanted)
        if span is None:
            continue
        print(f"\nnewest {wanted} (trace {trace_id}):")
        _print_critical_path(span, obs_profile)


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run an N-job sweep through the checkpoint service and report."""
    import numpy as np

    from repro.faults.injector import Brownout, PreemptionStorm
    from repro.ml.dataset import make_moons
    from repro.ml.models import VariationalClassifier
    from repro.ml.optimizers import Adam
    from repro.ml.trainer import Trainer, TrainerConfig
    from repro.quantum.templates import hardware_efficient
    from repro.service import (
        ChunkStore,
        FleetHarness,
        FleetJobSpec,
        ThrottledBackend,
        WriterPool,
    )
    from repro.storage.memory import InMemoryBackend
    from repro.storage.sharded import ShardedBackend

    def trainer_factory(lr: float):
        def make() -> Trainer:
            model = VariationalClassifier(
                hardware_efficient(args.qubits, args.layers)
            )
            dataset = make_moons(args.samples, np.random.default_rng(args.seed))
            return Trainer(
                model,
                Adam(lr=lr),
                dataset=dataset,
                config=TrainerConfig(batch_size=8, seed=args.seed),
            )

        return make

    if args.store:
        shards = [
            LocalDirectoryBackend(Path(args.store) / f"shard-{i}")
            for i in range(args.shards)
        ]
    else:
        shards = [InMemoryBackend() for _ in range(args.shards)]
    throttled = ThrottledBackend(ShardedBackend(shards))
    store = ChunkStore(
        throttled, codec=args.codec, block_bytes=args.block_bytes
    )
    pool = WriterPool(workers=args.workers)
    specs = [
        FleetJobSpec(
            job_id=f"job{i:02d}",
            trainer_factory=trainer_factory(0.01 * (1 + i)),
            target_steps=args.steps,
            checkpoint_every=args.every,
            cadence_offset=i if args.staggered else 0,
            backpressure=args.backpressure,
        )
        for i in range(args.jobs)
    ]
    events = []
    if args.scenario == "storm":
        events.append(PreemptionStorm(at_tick=args.storm_tick))
    elif args.scenario == "brownout":
        events.append(
            Brownout(
                start_tick=args.storm_tick,
                end_tick=args.storm_tick + 2,
                write_delay_seconds=args.brownout_delay,
            )
        )
    harness = FleetHarness(store, pool, specs, events=events, throttle=throttled)
    try:
        result = harness.run()
    finally:
        pool.close()

    print(
        f"{'JOB':<8} {'FINAL':>6} {'EXEC':>6} {'LOST':>6} {'RESTORES':>9} "
        f"{'DROPPED':>8} {'DEGRADED':>9}"
    )
    for job_id in sorted(result.jobs):
        job = result.jobs[job_id]
        print(
            f"{job_id:<8} {job.final_step:>6} {job.steps_executed:>6} "
            f"{job.lost_steps:>6} {job.restores:>9} {job.dropped_saves:>8} "
            f"{job.degraded_saves:>9}"
        )
    print(
        f"\nfleet: {result.makespan_ticks} ticks, "
        f"{result.wall_seconds:.2f}s wall, "
        f"recovered-work ratio {result.recovered_work_ratio:.3f}"
    )
    print(
        f"store: {_human_bytes(result.physical_bytes)} written for "
        f"{_human_bytes(result.logical_bytes)} logical "
        f"(dedup {result.dedup_ratio:.2f}x), "
        f"{_human_bytes(result.manifest_bytes)} manifests"
    )
    if args.scenario != "sweep":
        print(f"events: {', '.join(result.events_fired) or '(none fired)'}")
    return 0


def cmd_daemon_start(args: argparse.Namespace) -> int:
    """Build the storage stack and run the fleet daemon loop (foreground)."""
    from repro.obs.export import store_obs_dir
    from repro.obs.metrics import MetricsRegistry
    from repro.reliability import CircuitBreaker, RetryPolicy
    from repro.service import ChunkStore, DaemonConfig, FleetDaemon, WriterPool
    from repro.storage.memory import InMemoryBackend
    from repro.storage.metadb import metadb_for_dir
    from repro.storage.placement import PlacementJournal
    from repro.storage.reliable import ReliableBackend
    from repro.storage.sharded import ShardedBackend
    from repro.storage.tiered import TieredBackend

    import uuid

    store_dir = Path(args.store)
    # ONE registry threaded through the whole stack: backend tiers, chunk
    # store, writer pool, and daemon all count into the same labeled
    # series, which is what `qckpt metrics`/`qckpt top` read back.
    registry = MetricsRegistry()
    control = args.control or str(store_dir / "control")
    # One identity for heartbeats AND journal records: without --daemon-id
    # it must be unique per process, never derived from paths — two daemons
    # sharing a store would otherwise collide journal record names and both
    # "hold" the rebalance lease.
    daemon_id = args.daemon_id or f"daemon-{uuid.uuid4().hex[:8]}"
    shards = [
        LocalDirectoryBackend(store_dir / f"shard-{i}")
        for i in range(args.shards)
    ]
    backend = shards[0] if args.shards == 1 else ShardedBackend(shards)
    # Optional metadata index sidecar (QCKPT_METADB=1 or --index): one
    # SQLite file at the store root shared by the journal fold, manifest
    # discovery, and the daemon's job registry.  Files stay the truth —
    # delete the .db and it rebuilds on the next open.
    metadb = metadb_for_dir(
        store_dir, metrics=registry, enabled=True if args.index else None
    )
    journal = None
    if args.fast_bytes > 0:
        journal = PlacementJournal(
            LocalDirectoryBackend(store_dir / "placement"),
            owner=daemon_id,
            metadb=metadb,
        )
        backend = TieredBackend(
            InMemoryBackend(),
            backend,
            fast_capacity_bytes=args.fast_bytes,
            journal=journal,
            metrics=registry,
        )
    if args.retries > 0:
        # Outermost wrapper so every op — including tier_for probes, which
        # it forwards — runs under the retry/breaker policy.
        backend = ReliableBackend(
            backend,
            retry=RetryPolicy(max_attempts=args.retries + 1, base_delay=0.05),
            breaker=CircuitBreaker(failure_threshold=5, reset_timeout=30.0),
            metrics=registry,
        )
    store = ChunkStore(
        backend,
        codec=args.codec,
        block_bytes=args.block_bytes,
        placement_journal=journal,
        metrics=registry,
        metadb=metadb,
    )
    pool = WriterPool(workers=args.workers, metrics=registry)
    config = DaemonConfig(
        tick_seconds=args.tick_seconds,
        rebalance_every_ticks=args.rebalance_every,
        restart_delay_ticks=args.restart_delay,
        max_ticks=args.max_ticks if args.max_ticks > 0 else None,
        compact_journal_records=args.compact_journal_records,
        metrics_export_seconds=args.metrics_export_seconds,
        obs_sample_seconds=args.obs_sample_seconds,
    )
    daemon = FleetDaemon(
        store,
        pool,
        control,
        config=config,
        daemon_id=daemon_id,
        listen=args.listen,
        auth_token=args.token,
        metrics=registry,
        obs_dir=store_obs_dir(store_dir),
    )
    print(
        f"daemon {daemon.daemon_id} serving {args.store} "
        f"(control plane: {control}"
        + (f", listening on {args.listen}" if args.listen else "")
        + f"); drain with: qckpt daemon drain --control {control}"
    )
    try:
        daemon.serve()
    finally:
        pool.close()
    print(
        f"daemon {daemon.daemon_id} stopped after {daemon.tick} tick(s), "
        f"{daemon.requests_served} request(s) served"
    )
    return 0


def _daemon_client(args: argparse.Namespace):
    """Build a client from --control (files) or --connect (TCP socket)."""
    from repro.service import DaemonClient

    if args.control is None and args.connect is None:
        raise ReproError(
            "pick a control plane: --control DIR (shared filesystem) "
            "or --connect HOST:PORT (TCP)"
        )
    return DaemonClient(
        args.control,
        timeout=args.timeout,
        connect=args.connect,
        token=args.token,
    )


def cmd_daemon_submit(args: argparse.Namespace) -> int:
    """Submit one job to a running daemon over its control plane."""
    client = _daemon_client(args)
    spec = {
        "job_id": args.job,
        "workload": args.workload,
        "target_steps": args.steps,
        "checkpoint_every": args.every,
        "max_pending": args.max_pending,
        "backpressure": args.backpressure,
        "restore_mode": args.restore_mode,
        "priority": args.priority,
        "shard_workers": args.shard_workers,
        "params": {
            "qubits": args.qubits,
            "layers": args.layers,
            "lr": args.lr,
            "samples": args.samples,
            "batch_size": args.batch_size,
            "seed": args.seed,
            "gradient_method": args.gradient_method,
        },
    }
    response = client.submit(spec)
    if not response.get("ok"):
        raise ReproError(f"submit refused: {response.get('error')}")
    resumed = response.get("resumed_from_step", 0)
    print(
        f"submitted {args.job} ({args.workload}, {args.steps} steps)"
        + (f", resumed from step {resumed}" if resumed else "")
    )
    return 0


def cmd_daemon_status(args: argparse.Namespace) -> int:
    """Print daemon state and a per-job table (or one job with --job)."""
    client = _daemon_client(args)
    if not client.is_alive():
        meta = client.daemon_meta()
        state = (meta or {}).get("state", "absent")
        print(f"daemon: not running (control meta: {state})")
        return 1
    response = client.status(args.job)
    if not response.get("ok"):
        raise ReproError(f"status failed: {response.get('error')}")
    print(
        f"daemon: {response['state']} at tick {response['tick']}"
        + (
            f" ({response.get('requests_served')} requests served)"
            if "requests_served" in response
            else ""
        )
    )
    jobs = response.get("jobs", {})
    if not jobs:
        print("(no jobs submitted)")
        return 0
    print(
        f"{'JOB':<12} {'STATE':<9} {'STEP':>6} {'TARGET':>7} {'PRI':>4} "
        f"{'SHARE':>6} {'PREEMPT':>8} {'RESTORES':>9} {'LOST':>5}"
    )
    for job_id in sorted(jobs):
        job = jobs[job_id]
        step = job["step"] if job["step"] is not None else job["final_step"]
        share = job.get("sched_share", 0.0)
        print(
            f"{job_id:<12} {job['state']:<9} {step:>6} "
            f"{job['target_steps']:>7} {job.get('priority', 1):>4} "
            f"{share:>6.2f} {job['preemptions']:>8} "
            f"{job['restores']:>9} {job['lost_steps']:>5}"
        )
    return 0


def cmd_daemon_preempt(args: argparse.Namespace) -> int:
    """Kill one job's incarnation (or every running job's without --job)."""
    client = _daemon_client(args)
    response = client.preempt(
        args.job, restart_delay_ticks=args.restart_delay
    )
    if not response.get("ok"):
        raise ReproError(f"preempt refused: {response.get('error')}")
    preempted = response.get("preempted", [])
    print(
        f"preempted {len(preempted)} job(s): {', '.join(preempted) or '-'} "
        f"(restart delay {response.get('restart_delay_ticks')} tick(s))"
    )
    return 0


def cmd_daemon_drain(args: argparse.Namespace) -> int:
    """Stop accepting jobs, let running jobs finish, then stop the daemon."""
    client = _daemon_client(args)
    response = client.drain(wait=not args.no_wait)
    print(f"daemon: {response.get('state', 'draining')}")
    return 0


def cmd_daemon_stop(args: argparse.Namespace) -> int:
    """Stop the daemon now: queued saves flush, running jobs halt."""
    client = _daemon_client(args)
    response = client.stop()
    if not response.get("ok"):
        raise ReproError(f"stop refused: {response.get('error')}")
    print(f"daemon: stopping (was {response.get('state', '?')})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qckpt", description="Inspect and validate QCkpt checkpoint stores."
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="structured debug logging to stderr (same as QCKPT_LOG=debug)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ls = sub.add_parser("ls", help="list checkpoints in a store")
    p_ls.add_argument("store", help="store directory")
    p_ls.set_defaults(func=cmd_ls)

    p_inspect = sub.add_parser("inspect", help="dump a checkpoint header")
    p_inspect.add_argument("target", help="a .qckpt file or <store>/<ckpt-id>")
    p_inspect.add_argument(
        "--tensors", action="store_true", help="include full tensor directory"
    )
    p_inspect.set_defaults(func=cmd_inspect)

    p_verify = sub.add_parser("verify", help="validate all checkpoints")
    p_verify.add_argument("store", help="store directory")
    p_verify.set_defaults(func=cmd_verify)

    p_gc = sub.add_parser("gc", help="apply a retention policy")
    p_gc.add_argument("store", help="store directory")
    p_gc.add_argument(
        "--keep-last",
        type=int,
        default=None,
        help="retain the N checkpoints with the highest steps",
    )
    p_gc.add_argument(
        "--keep-every",
        type=int,
        default=None,
        help="additionally retain checkpoints whose step is a multiple of N",
    )
    p_gc.set_defaults(func=cmd_gc)

    p_diff = sub.add_parser("diff", help="compare two checkpoints")
    p_diff.add_argument("store", help="store directory")
    p_diff.add_argument("id_a", help="first checkpoint id")
    p_diff.add_argument("id_b", help="second checkpoint id")
    p_diff.set_defaults(func=cmd_diff)

    p_export = sub.add_parser(
        "export", help="materialize a checkpoint as a standalone .qckpt file"
    )
    p_export.add_argument("store", help="store directory")
    p_export.add_argument("id", help="checkpoint id (delta chains are resolved)")
    p_export.add_argument("out", help="output file path")
    p_export.add_argument(
        "--codec", default="zlib-6", help="byte codec for the exported file"
    )
    p_export.set_defaults(func=cmd_export)

    p_peek = sub.add_parser(
        "peek", help="read named tensors without transferring the rest"
    )
    p_peek.add_argument("store", help="store directory")
    p_peek.add_argument("id", help="checkpoint id")
    p_peek.add_argument(
        "tensors", nargs="+", help="tensor names (e.g. params loss_history)"
    )
    p_peek.set_defaults(func=cmd_peek)

    p_restore = sub.add_parser(
        "restore",
        help="restore a checkpoint through the unified pipeline "
        "(monolithic or chunk store)",
    )
    p_restore.add_argument("store", help="store directory")
    p_restore.add_argument(
        "--id", default=None, help="checkpoint id (default: newest valid)"
    )
    p_restore.add_argument(
        "--job",
        default=None,
        help="job id (chunk stores; default: the store's only job)",
    )
    p_restore.add_argument(
        "--tensors",
        nargs="+",
        default=None,
        help="restore only these tensors (ranged/partial fetch)",
    )
    p_restore.add_argument(
        "--warm-start",
        action="store_true",
        help="restore the parameters-only warm-start subset",
    )
    p_restore.add_argument(
        "--plan",
        action="store_true",
        help="print the fetch plan without transferring payload",
    )
    p_restore.add_argument(
        "--out", default=None, help="write a standalone .qckpt file here"
    )
    p_restore.add_argument(
        "--codec", default="zlib-6", help="byte codec for --out"
    )
    p_restore.set_defaults(func=cmd_restore)

    p_scrub = sub.add_parser(
        "scrub",
        help="verify chunk content addresses; quarantine and repair damage",
    )
    p_scrub.add_argument(
        "store",
        nargs="+",
        help="chunk-store directory; pass several replicas of one store to "
        "repair each from the others",
    )
    p_scrub.set_defaults(func=cmd_scrub)

    p_fsck = sub.add_parser(
        "fsck", help="read-only store health check (scrub without repair)"
    )
    p_fsck.add_argument(
        "store", nargs="+", help="chunk-store directory (or its replicas)"
    )
    p_fsck.add_argument(
        "--index",
        action="store_true",
        help="verify the metadata index (.qckpt-meta.db) agrees with the "
        "journal/manifest files instead of checking content copies",
    )
    p_fsck.set_defaults(func=cmd_fsck)

    p_stats = sub.add_parser("stats", help="aggregate store statistics")
    p_stats.add_argument("store", help="store directory")
    p_stats.set_defaults(func=cmd_stats)

    p_metrics = sub.add_parser(
        "metrics",
        help="one-shot telemetry: live from a daemon, or the persisted "
        "<store>/obs/registry.json",
    )
    p_metrics.add_argument(
        "store",
        nargs="?",
        default=None,
        help="store directory (reads its persisted obs/registry.json; "
        "omit when querying a live daemon)",
    )
    p_metrics.add_argument(
        "--control",
        default=None,
        help="query a live daemon via its control directory",
    )
    p_metrics.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="query a live daemon via its TCP control plane",
    )
    p_metrics.add_argument(
        "--token", default=None, help="shared-secret token for --connect"
    )
    p_metrics.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="seconds to wait for the daemon's answer",
    )
    p_metrics.add_argument(
        "--json",
        action="store_true",
        help="print the full response as JSON instead of the summary",
    )
    p_metrics.add_argument(
        "--prom",
        action="store_true",
        help="print Prometheus text exposition instead of the summary "
        "(scrape-ready; uses the daemon's metrics_text op when live)",
    )
    p_metrics.set_defaults(func=cmd_metrics)

    p_health = sub.add_parser(
        "health",
        help="health verdict from the rule engine: ok/warn/critical "
        "(exit code 0/1/2)",
    )
    p_health.add_argument(
        "store",
        nargs="?",
        default=None,
        help="store directory (offline: evaluates the persisted "
        "obs/registry.json + obs/timeseries.db; staleness rules skipped)",
    )
    p_health.add_argument(
        "--control",
        default=None,
        help="evaluate on a live daemon via its control directory",
    )
    p_health.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="evaluate on a live daemon via its TCP control plane",
    )
    p_health.add_argument(
        "--token", default=None, help="shared-secret token for --connect"
    )
    p_health.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="seconds to wait for the daemon's answer",
    )
    p_health.add_argument(
        "--json",
        action="store_true",
        help="print the full report (every finding) as JSON",
    )
    p_health.set_defaults(func=cmd_health)

    p_profile = sub.add_parser(
        "profile",
        help="span profiler over <store>/obs/trace.jsonl: aggregates, "
        "critical paths, flamegraph export",
    )
    p_profile.add_argument("store", help="store directory (reads its obs/)")
    p_profile.add_argument(
        "--trace",
        default=None,
        metavar="ID",
        help="print one trace's span tree and critical path",
    )
    p_profile.add_argument(
        "--last-save",
        action="store_true",
        help="profile the newest trace containing a store.save span",
    )
    p_profile.add_argument(
        "--last-restore",
        action="store_true",
        help="profile the newest trace containing a store.restore span",
    )
    p_profile.add_argument(
        "--folded",
        action="store_true",
        help="emit folded stacks (name;name <self-us>) for flamegraph tools",
    )
    p_profile.add_argument(
        "--json",
        action="store_true",
        help="print aggregates (and the selected trace) as JSON",
    )
    p_profile.set_defaults(func=cmd_profile)

    p_top = sub.add_parser(
        "top",
        help="live fleet dashboard over a running daemon (Ctrl-C to exit)",
    )
    p_top.add_argument(
        "--control",
        default=None,
        help="the daemon's control directory (file transport)",
    )
    p_top.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="the daemon's socket address (TCP transport)",
    )
    p_top.add_argument(
        "--token", default=None, help="shared-secret token for --connect"
    )
    p_top.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="seconds to wait for each poll's answer",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (rates are per-interval deltas)",
    )
    p_top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="exit after N refreshes (0 = run until Ctrl-C)",
    )
    p_top.add_argument(
        "--no-clear",
        action="store_true",
        help="append refreshes instead of clearing the screen (for logs)",
    )
    p_top.set_defaults(func=cmd_top)

    p_fleet = sub.add_parser(
        "fleet", help="run a multi-job checkpoint-service scenario"
    )
    p_fleet.add_argument("--jobs", type=int, default=4, help="number of jobs")
    p_fleet.add_argument(
        "--steps", type=int, default=4, help="training steps per job"
    )
    p_fleet.add_argument("--every", type=int, default=1, help="checkpoint cadence")
    p_fleet.add_argument("--workers", type=int, default=2, help="writer pool size")
    p_fleet.add_argument("--shards", type=int, default=2, help="storage shards")
    p_fleet.add_argument(
        "--scenario",
        choices=["sweep", "storm", "brownout"],
        default="storm",
        help="fault scenario to inject (sweep = none)",
    )
    p_fleet.add_argument(
        "--storm-tick", type=int, default=2, help="event tick (storm/brownout)"
    )
    p_fleet.add_argument(
        "--brownout-delay",
        type=float,
        default=0.02,
        help="per-write delay during a brownout (seconds)",
    )
    p_fleet.add_argument(
        "--backpressure",
        choices=["block", "drop-oldest", "degrade"],
        default="block",
        help="per-job channel policy when its save queue is full",
    )
    p_fleet.add_argument(
        "--staggered",
        action="store_true",
        help="offset each job's start tick so checkpoints desynchronize",
    )
    p_fleet.add_argument(
        "--store",
        default=None,
        help="persist to this directory (default: in-memory)",
    )
    p_fleet.add_argument(
        "--block-bytes",
        type=int,
        default=1 << 12,
        help="chunk-store block size in bytes",
    )
    p_fleet.add_argument("--codec", default="zlib-6", help="chunk byte codec")
    p_fleet.add_argument(
        "--qubits", type=int, default=4, help="circuit width per job"
    )
    p_fleet.add_argument(
        "--layers", type=int, default=2, help="ansatz layers per job"
    )
    p_fleet.add_argument(
        "--samples", type=int, default=128, help="training set size"
    )
    p_fleet.add_argument("--seed", type=int, default=11, help="RNG seed")
    p_fleet.set_defaults(func=cmd_fleet)

    p_daemon = sub.add_parser(
        "daemon",
        help="run and control the long-running fleet daemon",
    )
    dsub = p_daemon.add_subparsers(dest="daemon_command", required=True)

    def _add_daemon_client_flags(parser, timeout_default: float) -> None:
        """The shared way every client verb reaches its daemon."""
        parser.add_argument(
            "--control",
            default=None,
            help="the daemon's control directory (file transport)",
        )
        parser.add_argument(
            "--connect",
            default=None,
            metavar="HOST:PORT",
            help="the daemon's socket address (TCP transport; needs "
            "a daemon started with --listen)",
        )
        parser.add_argument(
            "--token",
            default=None,
            help="shared-secret auth token for --connect",
        )
        parser.add_argument(
            "--timeout",
            type=float,
            default=timeout_default,
            help="seconds to wait for the daemon's answer",
        )

    d_start = dsub.add_parser(
        "start",
        help="run the daemon loop in the foreground (Ctrl-C or drain to stop)",
    )
    d_start.add_argument("store", help="store directory (shards live inside)")
    d_start.add_argument(
        "--control",
        default=None,
        help="control-plane directory (default: <store>/control)",
    )
    d_start.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="additionally serve the control plane over TCP on this "
        "address (port 0 picks a free port, printed in daemon.json)",
    )
    d_start.add_argument(
        "--token",
        default=None,
        help="shared-secret auth token required from --connect clients "
        "(only meaningful with --listen)",
    )
    d_start.add_argument(
        "--workers", type=int, default=2, help="writer pool size"
    )
    d_start.add_argument(
        "--shards", type=int, default=2, help="storage shards under the store"
    )
    d_start.add_argument(
        "--block-bytes",
        type=int,
        default=1 << 12,
        help="chunk-store block size in bytes",
    )
    d_start.add_argument("--codec", default="zlib-6", help="chunk byte codec")
    d_start.add_argument(
        "--fast-bytes",
        type=int,
        default=0,
        help="fast-tier capacity in bytes; > 0 enables tiering with a "
        "durable placement journal at <store>/placement",
    )
    d_start.add_argument(
        "--tick-seconds",
        type=float,
        default=0.02,
        help="idle sleep between scheduler passes",
    )
    d_start.add_argument(
        "--rebalance-every",
        type=int,
        default=0,
        help="run a lease-gated tier rebalance every N ticks (0 = never)",
    )
    d_start.add_argument(
        "--compact-journal-records",
        type=int,
        default=512,
        help="compact the placement journal when it exceeds N records "
        "(0 = only at drain)",
    )
    d_start.add_argument(
        "--restart-delay",
        type=int,
        default=1,
        help="default reincarnation delay (ticks) after a preemption",
    )
    d_start.add_argument(
        "--max-ticks",
        type=int,
        default=0,
        help="stop after N scheduler ticks (0 = run until drained)",
    )
    d_start.add_argument(
        "--daemon-id",
        default=None,
        help="stable identity for heartbeats and placement-journal leases",
    )
    d_start.add_argument(
        "--index",
        action="store_true",
        help="keep a SQLite metadata index (.qckpt-meta.db) at the store "
        "root so discovery, journal folds and job status are point "
        "queries (also enabled by QCKPT_METADB=1; files stay the truth)",
    )
    d_start.add_argument(
        "--retries",
        type=int,
        default=0,
        help="wrap the storage stack in a retry/circuit-breaker layer "
        "allowing N retries per op (0 = no reliability wrapper)",
    )
    d_start.add_argument(
        "--metrics-export-seconds",
        type=float,
        default=5.0,
        help="append a metrics snapshot to <store>/obs/metrics.jsonl "
        "every N seconds (0 = only at shutdown)",
    )
    d_start.add_argument(
        "--obs-sample-seconds",
        type=float,
        default=None,
        help="sample the registry into <store>/obs/timeseries.db and "
        "evaluate health rules every N seconds (default: the heartbeat "
        "cadence; 0 disables history and in-loop health)",
    )
    d_start.set_defaults(func=cmd_daemon_start)

    d_submit = dsub.add_parser(
        "submit", help="submit one job to a running daemon"
    )
    _add_daemon_client_flags(d_submit, timeout_default=30.0)
    d_submit.add_argument("--job", required=True, help="job id (unique)")
    d_submit.add_argument(
        "--priority",
        type=int,
        default=1,
        help="scheduling weight: a priority-2 job gets ~2x the training "
        "ticks of a priority-1 job",
    )
    d_submit.add_argument(
        "--shard-workers",
        type=int,
        default=0,
        help="fan this job's gradient batches out across N shard worker "
        "processes (0 = in-process; results are bitwise identical)",
    )
    d_submit.add_argument(
        "--gradient-method",
        choices=["adjoint", "parameter-shift"],
        default="adjoint",
        help="analytic differentiator for the workload; parameter-shift "
        "batches are what shard workers fan out",
    )
    d_submit.add_argument(
        "--workload",
        default="classifier",
        help="registered workload recipe the job is built from",
    )
    d_submit.add_argument(
        "--steps", type=int, default=4, help="training steps to run"
    )
    d_submit.add_argument(
        "--every", type=int, default=1, help="checkpoint cadence (steps)"
    )
    d_submit.add_argument(
        "--max-pending",
        type=int,
        default=2,
        help="bounded save-queue depth before backpressure",
    )
    d_submit.add_argument(
        "--backpressure",
        choices=["block", "drop-oldest", "degrade"],
        default="block",
        help="policy when the job's save queue is full",
    )
    d_submit.add_argument(
        "--restore-mode",
        choices=["exact", "warm-start"],
        default="exact",
        help="how a preempted incarnation reincarnates",
    )
    d_submit.add_argument(
        "--qubits", type=int, default=4, help="circuit width"
    )
    d_submit.add_argument(
        "--layers", type=int, default=2, help="ansatz layers"
    )
    d_submit.add_argument(
        "--lr", type=float, default=0.01, help="optimizer learning rate"
    )
    d_submit.add_argument(
        "--samples", type=int, default=64, help="training set size"
    )
    d_submit.add_argument(
        "--batch-size", type=int, default=8, help="minibatch size"
    )
    d_submit.add_argument("--seed", type=int, default=11, help="RNG seed")
    d_submit.set_defaults(func=cmd_daemon_submit)

    d_status = dsub.add_parser(
        "status", help="query daemon liveness and per-job progress"
    )
    _add_daemon_client_flags(d_status, timeout_default=30.0)
    d_status.add_argument(
        "--job", default=None, help="report only this job id"
    )
    d_status.set_defaults(func=cmd_daemon_status)

    d_preempt = dsub.add_parser(
        "preempt",
        help="kill job incarnations; each reincarnates from the store "
        "after its restart delay",
    )
    _add_daemon_client_flags(d_preempt, timeout_default=30.0)
    d_preempt.add_argument(
        "--job",
        default=None,
        help="preempt only this job (default: every running job)",
    )
    d_preempt.add_argument(
        "--restart-delay",
        type=int,
        default=None,
        help="reincarnation delay in ticks (default: the daemon's)",
    )
    d_preempt.set_defaults(func=cmd_daemon_preempt)

    d_drain = dsub.add_parser(
        "drain",
        help="refuse new jobs, finish running ones, then stop the daemon",
    )
    _add_daemon_client_flags(d_drain, timeout_default=60.0)
    d_drain.add_argument(
        "--no-wait",
        action="store_true",
        help="return after the drain is acknowledged instead of waiting "
        "for the daemon to stop",
    )
    d_drain.set_defaults(func=cmd_daemon_drain)

    d_stop = dsub.add_parser(
        "stop",
        help="stop the daemon immediately: queued saves flush, running "
        "jobs halt where they are",
    )
    _add_daemon_client_flags(d_stop, timeout_default=30.0)
    d_stop.set_defaults(func=cmd_daemon_stop)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        from repro.obs.log import configure

        configure("debug")
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
