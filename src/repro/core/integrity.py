"""Checksum helpers for checkpoint integrity.

Two layers of protection:

* **CRC32 per tensor chunk** — cheap, catches localized corruption and lets
  :func:`repro.core.serialize.unpack_payload` name the damaged tensor,
* **SHA-256 over the whole file** — a 32-byte footer; any mutation of header
  or payload is detected before the header is trusted.
"""

from __future__ import annotations

import hashlib
import zlib

from repro.errors import IntegrityError

SHA256_NBYTES = 32


def crc32_of(data: bytes) -> int:
    """CRC32 as an unsigned 32-bit int."""
    return zlib.crc32(data) & 0xFFFFFFFF


def sha256_of(data: bytes) -> bytes:
    """Raw 32-byte SHA-256 digest."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 digest."""
    return hashlib.sha256(data).hexdigest()


def verify_crc32(data: bytes, expected: int, label: str = "chunk") -> None:
    """Raise :class:`IntegrityError` on CRC mismatch."""
    actual = crc32_of(data)
    if actual != expected:
        raise IntegrityError(
            f"CRC32 mismatch for {label}: stored {expected:#010x}, "
            f"computed {actual:#010x}"
        )


def verify_sha256(data: bytes, expected: bytes, label: str = "file") -> None:
    """Raise :class:`IntegrityError` on SHA-256 mismatch."""
    actual = sha256_of(data)
    if actual != expected:
        raise IntegrityError(
            f"SHA-256 mismatch for {label}: stored {expected.hex()[:16]}..., "
            f"computed {actual.hex()[:16]}..."
        )
