"""Checkpoint interval policies.

A policy answers one question per step: *checkpoint now?*  The manager calls
:meth:`CheckpointPolicy.observe_step` after every training step,
:meth:`CheckpointPolicy.should_checkpoint` to decide, and
:meth:`CheckpointPolicy.record_checkpoint` after a save completes (with its
measured cost, which adaptive policies feed back).

The Young–Daly policy implements the classical optimum for the checkpoint
interval: for checkpoint cost ``delta`` and mean time between failures ``M``,
Young's first-order interval is ``sqrt(2 * delta * M)``; Daly's higher-order
refinement is used when ``delta`` is not small relative to ``M``.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional

from repro.errors import ConfigError

Clock = Callable[[], float]


def young_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Young (1974) first-order optimal interval ``sqrt(2 delta M)``."""
    if checkpoint_cost < 0:
        raise ConfigError(f"checkpoint cost must be >= 0, got {checkpoint_cost}")
    if mtbf <= 0:
        raise ConfigError(f"MTBF must be > 0, got {mtbf}")
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def young_daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Daly (2006) higher-order optimum; falls back to ``M`` when δ ≥ M/2."""
    if checkpoint_cost < 0:
        raise ConfigError(f"checkpoint cost must be >= 0, got {checkpoint_cost}")
    if mtbf <= 0:
        raise ConfigError(f"MTBF must be > 0, got {mtbf}")
    if checkpoint_cost == 0:
        return 0.0
    ratio = checkpoint_cost / (2.0 * mtbf)
    if ratio >= 1.0:
        return mtbf
    return (
        math.sqrt(2.0 * checkpoint_cost * mtbf)
        * (1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0)
        - checkpoint_cost
    )


class CheckpointPolicy:
    """Base policy: never checkpoints."""

    def observe_step(self, step: int, step_seconds: float) -> None:
        """Called after every training step with its duration."""

    def should_checkpoint(self, step: int, now: float) -> bool:
        """Whether the manager should capture + save right now."""
        return False

    def record_checkpoint(self, now: float, cost_seconds: float) -> None:
        """Called after a save completes with its measured cost."""


class EveryKSteps(CheckpointPolicy):
    """Checkpoint every ``k`` steps (the fixed-interval baseline)."""

    def __init__(self, k: int):
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        self.k = int(k)

    def should_checkpoint(self, step: int, now: float) -> bool:
        return step > 0 and step % self.k == 0


class FixedTimeInterval(CheckpointPolicy):
    """Checkpoint whenever ``interval_seconds`` elapsed since the last save."""

    def __init__(self, interval_seconds: float, clock: Optional[Clock] = None):
        if interval_seconds <= 0:
            raise ConfigError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        self.interval_seconds = float(interval_seconds)
        self._clock = clock or time.monotonic
        self._last_checkpoint = self._clock()

    def should_checkpoint(self, step: int, now: float) -> bool:
        return (now - self._last_checkpoint) >= self.interval_seconds

    def record_checkpoint(self, now: float, cost_seconds: float) -> None:
        self._last_checkpoint = now


class YoungDalyPolicy(CheckpointPolicy):
    """Time-based policy with the Young–Daly optimal interval.

    The interval is recomputed from the running mean of measured checkpoint
    costs, starting from ``initial_cost_estimate`` before any save has been
    observed.

    When a *cost source* is attached (:meth:`attach_cost_source`), the
    policy prefers its live estimate over the lifetime running mean.  The
    service layer attaches each job's
    :meth:`~repro.service.pool.PoolChannel.observed_save_seconds` — a moving
    window over recent save durations *as measured on the shared writer
    pool*, so the interval tracks what saves actually cost under pool
    contention (brownouts, chatty neighbors) instead of a stale average.
    """

    def __init__(
        self,
        mtbf_seconds: float,
        initial_cost_estimate: float = 1.0,
        clock: Optional[Clock] = None,
        use_daly_refinement: bool = True,
    ):
        if mtbf_seconds <= 0:
            raise ConfigError(f"MTBF must be > 0, got {mtbf_seconds}")
        if initial_cost_estimate <= 0:
            raise ConfigError(
                f"initial_cost_estimate must be > 0, got {initial_cost_estimate}"
            )
        self.mtbf_seconds = float(mtbf_seconds)
        self.use_daly_refinement = bool(use_daly_refinement)
        self._cost_sum = float(initial_cost_estimate)
        self._cost_count = 1
        self._cost_source: Optional[Callable[[], Optional[float]]] = None
        self._clock = clock or time.monotonic
        self._last_checkpoint = self._clock()

    def attach_cost_source(
        self, source: Callable[[], Optional[float]]
    ) -> None:
        """Prefer ``source()`` (a live moving cost estimate, seconds) over
        the running mean.  A source returning ``None`` or a non-positive
        value falls back to the running mean for that query."""
        self._cost_source = source

    @property
    def mean_cost(self) -> float:
        """Current checkpoint-cost estimate (seconds).

        The attached cost source wins when it has data; otherwise the
        lifetime running mean of :meth:`record_checkpoint` observations.
        """
        if self._cost_source is not None:
            observed = self._cost_source()
            if observed is not None and observed > 0:
                return float(observed)
        return self._cost_sum / self._cost_count

    @property
    def interval_seconds(self) -> float:
        """Current target interval from the Young–Daly formula."""
        compute = young_daly_interval if self.use_daly_refinement else young_interval
        interval = compute(self.mean_cost, self.mtbf_seconds)
        return max(interval, self.mean_cost)

    def should_checkpoint(self, step: int, now: float) -> bool:
        return (now - self._last_checkpoint) >= self.interval_seconds

    def record_checkpoint(self, now: float, cost_seconds: float) -> None:
        self._last_checkpoint = now
        if cost_seconds > 0:
            self._cost_sum += cost_seconds
            self._cost_count += 1


class AdaptiveOverheadPolicy(CheckpointPolicy):
    """Keep checkpoint overhead below a target fraction of runtime.

    Fires when ``elapsed_since_last >= mean_cost / target_overhead``, so a
    5% target with a 0.2 s checkpoint yields one save every 4 s of training —
    without needing an MTBF estimate.
    """

    def __init__(
        self,
        target_overhead: float = 0.05,
        initial_cost_estimate: float = 1.0,
        clock: Optional[Clock] = None,
    ):
        if not 0.0 < target_overhead < 1.0:
            raise ConfigError(
                f"target_overhead must be in (0, 1), got {target_overhead}"
            )
        if initial_cost_estimate <= 0:
            raise ConfigError(
                f"initial_cost_estimate must be > 0, got {initial_cost_estimate}"
            )
        self.target_overhead = float(target_overhead)
        self._cost_sum = float(initial_cost_estimate)
        self._cost_count = 1
        self._clock = clock or time.monotonic
        self._last_checkpoint = self._clock()

    @property
    def mean_cost(self) -> float:
        """Running mean of observed checkpoint costs (seconds)."""
        return self._cost_sum / self._cost_count

    @property
    def interval_seconds(self) -> float:
        """Interval implied by the overhead target."""
        return self.mean_cost / self.target_overhead

    def should_checkpoint(self, step: int, now: float) -> bool:
        return (now - self._last_checkpoint) >= self.interval_seconds

    def record_checkpoint(self, now: float, cost_seconds: float) -> None:
        self._last_checkpoint = now
        if cost_seconds > 0:
            self._cost_sum += cost_seconds
            self._cost_count += 1
