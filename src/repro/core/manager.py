"""CheckpointManager: the trainer hook tying policy, store, and writer.

Responsibilities per training step:

1. feed the policy the step report,
2. if the policy fires, capture a snapshot (deep copy) and submit the save
   task to the writer (inline for sync, background thread for async),
3. track full-vs-delta cadence (a full checkpoint every ``full_every`` saves,
   deltas in between, chain length bounded by construction),
4. apply retention after every save.

Delta bookkeeping: deltas are encoded against the tensors of the *last
written full checkpoint*, which the manager keeps in memory — this avoids a
store round trip per delta and pins chain length to at most ``full_every``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from repro.core.policy import CheckpointPolicy, Clock, EveryKSteps
from repro.core.recovery import resume_trainer, warm_start_trainer
from repro.core.snapshot import TrainingSnapshot
from repro.core.store import CheckpointRecord, CheckpointStore, RetentionPolicy
from repro.core.writer import SyncCheckpointWriter
from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry, StatsView


class CheckpointStats(StatsView):
    """Aggregate accounting for one manager's lifetime.

    Registry-backed ``ckpt.*`` counters; ``last_record`` stays a plain
    attribute.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        super().__init__()
        registry = metrics if metrics is not None else MetricsRegistry()
        for name in ("full_saves", "delta_saves", "bytes_written"):
            self._bind(name, registry.counter(f"ckpt.{name}"))
        self._bind(
            "save_seconds",
            registry.counter("ckpt.save_seconds"),
            as_int=False,
        )
        self.last_record: Optional[CheckpointRecord] = None

    @property
    def saves(self) -> int:
        return self.full_saves + self.delta_saves

    @property
    def mean_save_seconds(self) -> float:
        return self.save_seconds / self.saves if self.saves else 0.0


class CheckpointManager:
    """Trainer hook that persists snapshots according to a policy."""

    def __init__(
        self,
        store: CheckpointStore,
        policy: Optional[CheckpointPolicy] = None,
        writer=None,
        codec: str = "zlib-6",
        transforms: Optional[Dict[str, str]] = None,
        delta: bool = False,
        full_every: int = 10,
        retention: Optional[RetentionPolicy] = None,
        clock: Optional[Clock] = None,
    ):
        if full_every < 1:
            raise ConfigError(f"full_every must be >= 1, got {full_every}")
        if delta and transforms:
            raise ConfigError(
                "delta checkpoints require lossless storage; lossy transforms "
                "would make XOR deltas diverge from the stored base"
            )
        self.store = store
        self.policy = policy or EveryKSteps(10)
        self.writer = writer or SyncCheckpointWriter()
        self.codec = codec
        self.transforms = dict(transforms or {})
        self.delta = bool(delta)
        self.full_every = int(full_every)
        self.retention = retention
        self._clock = clock or time.monotonic
        self.stats = CheckpointStats()
        self._base_record: Optional[CheckpointRecord] = None
        self._base_tensors: Optional[Dict[str, np.ndarray]] = None
        self._saves_since_full = 0

    # -- hook protocol ------------------------------------------------------------

    def on_step_end(self, trainer, info) -> None:
        """Trainer hook: maybe checkpoint after this step."""
        self.policy.observe_step(info.step, info.seconds)
        now = self._clock()
        if self.policy.should_checkpoint(trainer.step_count, now):
            self.save(trainer.capture())

    def on_run_end(self, trainer) -> None:
        """Trainer hook: flush pending asynchronous saves."""
        self.writer.drain()

    # -- saving -----------------------------------------------------------------

    def save(self, snapshot: TrainingSnapshot) -> None:
        """Persist ``snapshot`` through the writer (full or delta)."""
        snapshot = snapshot.copy()
        use_delta = (
            self.delta
            and self._base_record is not None
            and self._saves_since_full < self.full_every - 1
        )

        def task() -> None:
            started = time.perf_counter()
            if use_delta:
                record = self.store.save_delta(
                    snapshot,
                    self._base_record.id,
                    base_tensors=self._base_tensors,
                    codec=self.codec,
                )
                self.stats.delta_saves += 1
                self._saves_since_full += 1
            else:
                record = self.store.save_full(
                    snapshot, codec=self.codec, transforms=self.transforms
                )
                self.stats.full_saves += 1
                self._saves_since_full = 0
                if self.delta:
                    _, tensors = snapshot.to_payload()
                    self._base_record = record
                    self._base_tensors = tensors
            elapsed = time.perf_counter() - started
            self.stats.bytes_written += record.nbytes
            self.stats.save_seconds += elapsed
            self.stats.last_record = record
            self.policy.record_checkpoint(self._clock(), elapsed)
            if self.retention is not None:
                self.store.gc(self.retention)

        self.writer.submit(task)

    # -- restoring ----------------------------------------------------------------

    def resume(
        self, trainer, mode: str = "exact", required: bool = False
    ) -> Optional[CheckpointRecord]:
        """Restore ``trainer`` from this manager's store via the pipeline.

        ``mode="exact"`` resumes bitwise (full tensor set, whole-object
        integrity); ``mode="warm-start"`` fetches only the parameters (the
        planner's minimal byte ranges) and seeds a fresh run.  Returns the
        record used, or ``None`` when nothing restorable exists.
        """
        if mode == "exact":
            return resume_trainer(trainer, self.store, required=required)
        if mode == "warm-start":
            return warm_start_trainer(trainer, self.store, required=required)
        raise ConfigError(
            f"mode must be 'exact' or 'warm-start', got {mode!r}"
        )

    def close(self) -> None:
        """Flush and shut down the writer."""
        self.writer.drain()
        close = getattr(self.writer, "close", None)
        if close is not None:
            close()
