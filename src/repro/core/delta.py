"""Incremental (delta) checkpoints.

A delta checkpoint stores, per tensor, the cheapest exact encoding against a
base checkpoint:

* ``"xor"`` — same shape/dtype: the XOR of the raw byte streams.  Identical
  regions XOR to zero runs that zlib collapses, so XOR deltas pay exactly
  when bytes are *bitwise unchanged* (a frozen sampler permutation, untouched
  optimizer slots) — float tensors whose values move at all produce
  full-entropy XOR streams and gain nothing (Fig. 5 quantifies this).
* ``"append"`` — 1-D, same dtype, and the base is a bitwise prefix of the
  current tensor: only the appended suffix is stored.  This is the
  loss-history case — append-only arrays would otherwise be re-stored in
  full every step because their shapes differ.
* ``"full"`` — anything else (shape/dtype changes) stores the tensor whole.

All modes are exact: applying the delta to the base reproduces the current
tensor bitwise.  Tensors absent from the current snapshot are recorded in
``removed``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import SerializationError

MODE_XOR = "xor"
MODE_APPEND = "append"
MODE_FULL = "full"


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise SerializationError(
            f"xor_bytes length mismatch: {len(a)} vs {len(b)}"
        )
    left = np.frombuffer(a, dtype=np.uint8)
    right = np.frombuffer(b, dtype=np.uint8)
    return np.bitwise_xor(left, right).tobytes()


def _byte_view(array: np.ndarray) -> np.ndarray:
    """Flat ``uint8`` view of an array's raw bytes (no copy if contiguous)."""
    return np.ascontiguousarray(array).view(np.uint8).reshape(-1)


def _xor_arrays(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """XOR the raw bytes of two arrays directly into a fresh uint8 array.

    Operates on ``uint8`` views rather than materializing two intermediate
    ``bytes`` objects per tensor, which halves the allocations on the delta
    hot path.  When the compiled engine tier is live its one-pass
    ``qk_xor3`` kernel does the combine; XOR is exact either way, so the
    two paths are bitwise interchangeable.
    """
    left = _byte_view(a)
    right = _byte_view(b)
    if left.size != right.size:
        raise SerializationError(
            f"xor length mismatch: {left.size} vs {right.size}"
        )
    out = np.empty(left.size, dtype=np.uint8)
    from repro.quantum import engines

    lib = engines.storage_library()
    if lib is not None and lib.xor_to(out, left, right):
        return out
    np.bitwise_xor(left, right, out=out)
    return out


def encode_delta(
    base: Dict[str, np.ndarray], current: Dict[str, np.ndarray]
) -> Tuple[Dict[str, np.ndarray], Dict]:
    """Compute delta tensors + metadata taking ``base`` to ``current``.

    Returns ``(delta_tensors, delta_meta)`` where XOR-mode entries are uint8
    arrays and full-mode entries are the current tensors unchanged.
    """
    delta_tensors: Dict[str, np.ndarray] = {}
    entries: Dict[str, Dict] = {}
    for name, array in current.items():
        base_array = base.get(name)
        if (
            base_array is not None
            and base_array.dtype == array.dtype
            and base_array.shape == array.shape
        ):
            delta_tensors[name] = _xor_arrays(base_array, array)
            entries[name] = {
                "mode": MODE_XOR,
                "dtype": np.dtype(array.dtype).str,
                "shape": list(array.shape),
            }
        elif (
            base_array is not None
            and base_array.dtype == array.dtype
            and base_array.ndim == 1
            and array.ndim == 1
            and base_array.size < array.size
            and np.array_equal(base_array, array[: base_array.size])
        ):
            delta_tensors[name] = np.ascontiguousarray(array[base_array.size :])
            entries[name] = {
                "mode": MODE_APPEND,
                "dtype": np.dtype(array.dtype).str,
                "base_size": int(base_array.size),
            }
        else:
            delta_tensors[name] = array
            entries[name] = {"mode": MODE_FULL}
    removed = sorted(set(base) - set(current))
    return delta_tensors, {"entries": entries, "removed": removed}


def apply_delta(
    base: Dict[str, np.ndarray],
    delta_tensors: Dict[str, np.ndarray],
    delta_meta: Dict,
) -> Dict[str, np.ndarray]:
    """Reconstruct the current tensor directory from base + delta."""
    try:
        entries: Dict[str, Dict] = delta_meta["entries"]
        removed: List[str] = delta_meta.get("removed", [])
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed delta metadata: {exc}") from exc

    current: Dict[str, np.ndarray] = {}
    for name, entry in entries.items():
        mode = entry.get("mode")
        if mode == MODE_FULL:
            current[name] = delta_tensors[name]
        elif mode == MODE_APPEND:
            base_array = base.get(name)
            if base_array is None:
                raise SerializationError(
                    f"delta references missing base tensor {name!r}"
                )
            dtype = np.dtype(entry["dtype"])
            base_size = int(entry["base_size"])
            if (
                base_array.dtype != dtype
                or base_array.ndim != 1
                or base_array.size != base_size
            ):
                raise SerializationError(
                    f"base tensor {name!r} has dtype/size "
                    f"{base_array.dtype}/{base_array.shape}, append delta "
                    f"expects {dtype}/({base_size},)"
                )
            suffix = delta_tensors[name]
            if suffix.dtype != dtype:
                raise SerializationError(
                    f"append suffix for {name!r} has dtype {suffix.dtype}, "
                    f"expected {dtype}"
                )
            current[name] = np.concatenate([base_array, suffix])
        elif mode == MODE_XOR:
            base_array = base.get(name)
            if base_array is None:
                raise SerializationError(
                    f"delta references missing base tensor {name!r}"
                )
            dtype = np.dtype(entry["dtype"])
            shape = tuple(entry["shape"])
            if base_array.dtype != dtype or base_array.shape != shape:
                raise SerializationError(
                    f"base tensor {name!r} has dtype/shape "
                    f"{base_array.dtype}/{base_array.shape}, delta expects "
                    f"{dtype}/{shape}"
                )
            patched = _xor_arrays(base_array, delta_tensors[name])
            current[name] = patched.view(dtype).reshape(shape)
        else:
            raise SerializationError(f"unknown delta mode {mode!r} for {name!r}")
    for name in removed:
        current.pop(name, None)
    return current


def delta_sparsity(delta_tensors: Dict[str, np.ndarray], delta_meta: Dict) -> float:
    """Fraction of zero bytes across XOR-mode delta tensors (1.0 = identical)."""
    zero = 0
    total = 0
    for name, entry in delta_meta.get("entries", {}).items():
        if entry.get("mode") != MODE_XOR:
            continue
        array = delta_tensors[name]
        total += array.size
        zero += int(np.count_nonzero(array == 0))
    return zero / total if total else 1.0
