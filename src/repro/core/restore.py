"""Unified restore pipeline: plan → fetch → verify → assemble.

Every restore in the system — full exact resume, tensor-selective partial
restore, warm start, fleet reincarnation, CLI ``qckpt restore`` — runs
through the same three stages:

1. a :class:`RestoreSource` (one per checkpoint format) turns one stored
   checkpoint into a :class:`RestorePlan`: the *minimal* set of byte ranges
   or chunk objects that must be transferred to materialize the requested
   tensor subset, plus the integrity evidence each block must satisfy,
2. a :class:`RestoreExecutor` fetches the plan's blocks — ranged reads where
   the backend supports them, whole-object reads where it does not or where
   whole-file integrity is wanted, in parallel when the plan has independent
   blocks — and verifies every transferred byte (CRC32, content address, or
   whole-object SHA-256),
3. verified raw blocks are reassembled into tensors
   (:func:`~repro.core.serialize.tensor_from_bytes` + transform decode).

Two sources exist: :class:`QckptSource` for the monolithic QCKPT container
(`core.serialize` / `core.store`) and
:class:`~repro.service.chunkstore.ChunkManifestSource` for the
content-addressed chunk format.  Callers —
:class:`~repro.core.store.CheckpointStore`,
:class:`~repro.service.chunkstore.ChunkStore`,
:class:`~repro.core.recovery.RecoveryManager`, the trainer, the fleet
harness, and the CLI — never touch format bytes directly.

Failure contract: a restore either returns tensors bitwise-identical to what
was saved or raises :class:`~repro.errors.IntegrityError` /
:class:`~repro.errors.StorageError`.  It never returns corrupt tensors —
every block is verified against evidence recorded at save time before any
byte of it reaches an array.

Read-ahead: plans carry chain identity (``checkpoint_id``/``base_id``), and
:meth:`RestoreExecutor.prefetch` starts a plan's transfers in the
background — bounded by a byte window, cancellable, and advisory (a failed
or skipped prefetch unit is re-fetched synchronously at run time).  Chain
restores in :class:`~repro.core.store.CheckpointStore` use it to hide the
next delta's fetch latency behind the current delta's decode; the service
chunk store uses it to stage (and tier-promote) a restore before it runs.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.codecs import get_codec, get_transform
from repro.core.integrity import SHA256_NBYTES, sha256_hex
from repro.core.serialize import (
    decode_stored_chunk,
    read_header_ranged,
    tensor_from_bytes,
)
from repro.errors import (
    ConfigError,
    IntegrityError,
    SerializationError,
    TransientStorageError,
)
from repro.reliability import RetryPolicy

#: The tensor subset a parameters-only warm start needs: enough to seed a new
#: training run (architecture search, cross-validation) without transferring
#: optimizer slots, RNG streams, or the warm-start statevector cache.
WARM_START_TENSORS: Tuple[str, ...] = ("params",)

CONTENT_ADDRESS_PREFIX = "ch-"
_CONTENT_ADDRESS_CHARS = 32  # 128 bits of SHA-256: collision-safe at fleet scale


def content_address(raw: bytes, codec_name: str) -> str:
    """Content address of one raw block under one codec.

    The codec is part of the identity: the same raw content stored under two
    codecs is two different objects.  This is the canonical address format of
    the service chunk store; it lives here so the restore executor can verify
    fetched chunks without importing the service layer.
    """
    digest = sha256_hex(codec_name.encode("utf-8") + b"\x00" + raw)
    return CONTENT_ADDRESS_PREFIX + digest[:_CONTENT_ADDRESS_CHARS]


# ---------------------------------------------------------------------------
# Plan data model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BlockSpec:
    """One verifiable unit of stored bytes belonging to one tensor.

    ``start`` is a byte offset inside ``object_name`` (0 for chunk objects,
    which are fetched whole).  Exactly one kind of evidence is set: ``crc32``
    checks the *stored* (encoded) bytes, ``chunk_address`` checks the decoded
    raw bytes against their content address.
    """

    tensor: str
    seq: int
    object_name: str
    start: int
    stored_nbytes: int
    raw_nbytes: int
    crc32: Optional[int] = None
    chunk_address: Optional[str] = None


@dataclass(frozen=True)
class TensorPlan:
    """Decode recipe for one requested tensor."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    transform: str
    transform_meta: Dict
    blocks: Tuple[BlockSpec, ...]

    @property
    def stored_nbytes(self) -> int:
        """Encoded bytes this tensor's blocks occupy in the store."""
        return sum(block.stored_nbytes for block in self.blocks)


MODE_RANGED = "ranged"
MODE_WHOLE = "whole"


@dataclass(frozen=True)
class ObjectPlan:
    """How one backend object participates in a plan.

    ``whole`` objects are read in one piece (and, when ``sha256`` is set,
    verified end to end before any block is sliced out); ``ranged`` objects
    contribute only the byte ranges their blocks name.
    """

    name: str
    mode: str
    sha256: Optional[str] = None
    nbytes: Optional[int] = None


@dataclass
class RestorePlan:
    """Minimal fetch set for one checkpoint restore.

    ``requested`` is ``None`` for a full restore; otherwise the tensor names
    asked for.  ``fetch_bytes`` is what the executor will transfer;
    ``total_stored_bytes`` is what a *full* restore of this checkpoint
    would transfer — their ratio is what partial restore saves.

    Chain identity (read-ahead support): ``checkpoint_id`` names the
    checkpoint this plan restores and ``base_id`` the checkpoint its delta
    applies to (``None`` for self-contained records).  A chain restore is a
    sequence of plans linked by ``base_id``; the executor can
    :meth:`~RestoreExecutor.prefetch` the next link's blocks while the
    current link decodes.
    """

    kind: str  # "qckpt" | "chunks"
    meta: Dict
    codec: str
    tensors: Dict[str, TensorPlan]
    objects: List[ObjectPlan]
    requested: Optional[Tuple[str, ...]]
    total_stored_bytes: int = 0
    checkpoint_id: Optional[str] = None
    base_id: Optional[str] = None

    @property
    def fetch_bytes(self) -> int:
        """Bytes this plan transfers (ranged blocks + whole objects)."""
        total = 0
        whole = {o.name: o for o in self.objects if o.mode == MODE_WHOLE}
        counted: set = set()
        for plan in self.tensors.values():
            for block in plan.blocks:
                if block.object_name in whole:
                    if block.object_name not in counted:
                        counted.add(block.object_name)
                        obj = whole[block.object_name]
                        total += (
                            obj.nbytes
                            if obj.nbytes is not None
                            else block.stored_nbytes
                        )
                else:
                    total += block.stored_nbytes
        return total

    @property
    def n_blocks(self) -> int:
        """Total verifiable blocks across the plan's tensors."""
        return sum(len(plan.blocks) for plan in self.tensors.values())


# ---------------------------------------------------------------------------
# Source contract
# ---------------------------------------------------------------------------


class RestoreSource(ABC):
    """One stored checkpoint, queryable for plans and raw bytes.

    Implementations exist per format: :class:`QckptSource` for the monolithic
    container, ``ChunkManifestSource`` (service layer) for the chunk store.
    A source is cheap to construct and short-lived — plan, execute, discard.
    """

    kind: str = "abstract"

    @abstractmethod
    def plan(
        self,
        names: Optional[Sequence[str]] = None,
        require_all: bool = True,
    ) -> RestorePlan:
        """Compute the minimal fetch set for ``names`` (``None`` = all).

        With ``require_all`` (default) a requested name absent from the
        checkpoint raises :class:`~repro.errors.SerializationError`; without
        it the name is silently skipped (delta chains store a tensor only in
        the records where it changed).
        """

    @abstractmethod
    def read_object(self, name: str) -> bytes:
        """Whole content of one backend object in the plan."""

    @abstractmethod
    def read_range(self, name: str, start: int, length: int) -> bytes:
        """Bytes ``[start, start+length)`` of one backend object."""

    @property
    def supports_ranged(self) -> bool:
        """Whether ranged reads transfer less than whole objects here."""
        return False


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


class PrefetchedPlan:
    """Handle over the in-flight read-ahead of one plan's fetch units.

    Produced by :meth:`RestoreExecutor.prefetch`; consumed by passing it back
    to :meth:`RestoreExecutor.run` for the same plan instance.  The handle is
    *advisory*: a cancelled, failed, or window-skipped unit is simply fetched
    synchronously at run time, so prefetch can never change what a restore
    returns — only when its bytes arrive.
    """

    def __init__(self, plan: RestorePlan):
        self.plan = plan
        self.object_futures: Dict[str, "object"] = {}
        self.block_futures: Dict[int, "object"] = {}
        #: Bytes submitted to the fetch pool (bounded by the window).
        self.enqueued_bytes = 0
        #: Bytes the window bound kept out of the read-ahead.
        self.skipped_bytes = 0
        self.cancelled = False

    @property
    def n_enqueued(self) -> int:
        """Fetch units this read-ahead actually submitted to the pool."""
        return len(self.object_futures) + len(self.block_futures)

    def cancel(self) -> int:
        """Cancel not-yet-started fetches; returns how many were cancelled.

        In-flight reads complete on their worker thread and are discarded —
        backends have no abort primitive — but no *new* read-ahead I/O
        starts after this returns.
        """
        cancelled = 0
        for future in (
            list(self.object_futures.values())
            + list(self.block_futures.values())
        ):
            if future.cancel():
                cancelled += 1
        self.cancelled = True
        return cancelled

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every enqueued fetch finished; ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for future in (
            list(self.object_futures.values())
            + list(self.block_futures.values())
        ):
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                future.exception(timeout=remaining)
            except CancelledError:
                continue
            except FuturesTimeoutError:
                return False
        return True

    @staticmethod
    def _result_or_none(future) -> Optional[bytes]:
        """A future's bytes, or ``None`` when it failed/was cancelled."""
        if future is None:
            return None
        try:
            return future.result()
        except CancelledError:
            return None
        except Exception:  # noqa: BLE001 - sync fallback is the retry
            return None

    def take_object(self, name: str) -> Optional[bytes]:
        """Prefetched bytes of one whole object (``None`` = fetch yourself)."""
        return self._result_or_none(self.object_futures.get(name))

    def take_block(self, block: BlockSpec) -> Optional[bytes]:
        """Prefetched bytes of one ranged block (``None`` = fetch yourself)."""
        return self._result_or_none(self.block_futures.get(id(block)))


class RestoreExecutor:
    """Fetches a plan's blocks, verifies them, and assembles tensors.

    ``max_workers`` bounds the parallel ranged-read fan-out.  Independent
    fetch units (distinct chunk objects, distinct byte ranges) run
    concurrently — backend reads release the GIL for files and sleep for
    simulated remotes, so restore latency approaches the slowest single
    fetch rather than the sum.  Verification and decode run on the fetching
    thread; assembly order is deterministic regardless of completion order.

    Read-ahead: :meth:`prefetch` starts a plan's fetches in the background —
    bounded by ``prefetch_window_bytes``, cancellable — so a delta-chain
    restore can overlap the next link's transfers with the current link's
    decode.  Prefetched bytes are consumed by passing the handle back to
    :meth:`run`; anything the window skipped, a fault killed, or a cancel
    dropped is re-fetched synchronously there, so prefetch never weakens the
    integrity contract (every consumed byte is verified the same way).
    """

    def __init__(
        self,
        max_workers: int = 4,
        prefetch_window_bytes: int = 64 << 20,
        retry: Optional[RetryPolicy] = None,
    ):
        if max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        if prefetch_window_bytes < 0:
            raise ConfigError(
                f"prefetch_window_bytes must be >= 0, "
                f"got {prefetch_window_bytes}"
            )
        self.max_workers = int(max_workers)
        self.prefetch_window_bytes = int(prefetch_window_bytes)
        # Per-fetch-unit retry: transient backend failures are retried
        # with backoff, and a block that fails *verification* is refetched
        # fresh and re-verified (a backend that lied once — a flaky read —
        # does not doom the restore; replica-capable backends fall through
        # to a surviving copy on the refetch).
        self.retry = retry
        # One persistent pool per executor, created on first parallel fetch:
        # damage-tolerant walks run one restore per candidate checkpoint,
        # and spawning/joining threads per fetch would dominate small plans.
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="qckpt-restore",
                )
            return self._pool

    # -- fetch units ------------------------------------------------------------

    @staticmethod
    def _fetch_units(
        plan: RestorePlan,
    ) -> Tuple[List[ObjectPlan], List[BlockSpec]]:
        """A plan's transfer list: distinct whole objects + ranged blocks."""
        whole = {o.name: o for o in plan.objects if o.mode == MODE_WHOLE}
        needed_whole: List[ObjectPlan] = []
        seen: set = set()
        ranged_blocks: List[BlockSpec] = []
        for tensor_plan in plan.tensors.values():
            for block in tensor_plan.blocks:
                if block.object_name in whole:
                    if block.object_name not in seen:
                        seen.add(block.object_name)
                        needed_whole.append(whole[block.object_name])
                else:
                    ranged_blocks.append(block)
        return needed_whole, ranged_blocks

    def prefetch(
        self, source: RestoreSource, plan: RestorePlan
    ) -> PrefetchedPlan:
        """Start fetching ``plan``'s blocks in the background (read-ahead).

        Fetches are enqueued in plan order until ``prefetch_window_bytes``
        is reached; the rest stays for run time.  The returned handle is
        passed to :meth:`run` (same plan instance) to consume the bytes, or
        :meth:`PrefetchedPlan.cancel`-ed when the restore is abandoned.
        Verification does *not* happen here — the bytes are checked when
        :meth:`run` consumes them, exactly as on the synchronous path.
        """
        handle = PrefetchedPlan(plan)
        pool = self._ensure_pool()
        needed_whole, ranged_blocks = self._fetch_units(plan)
        budget = self.prefetch_window_bytes
        for obj in needed_whole:
            cost = obj.nbytes if obj.nbytes is not None else 0
            if handle.enqueued_bytes + cost > budget:
                handle.skipped_bytes += cost
                continue
            handle.enqueued_bytes += cost
            handle.object_futures[obj.name] = pool.submit(
                source.read_object, obj.name
            )
        for block in ranged_blocks:
            if handle.enqueued_bytes + block.stored_nbytes > budget:
                handle.skipped_bytes += block.stored_nbytes
                continue
            handle.enqueued_bytes += block.stored_nbytes
            handle.block_futures[id(block)] = pool.submit(
                source.read_range,
                block.object_name,
                block.start,
                block.stored_nbytes,
            )
        return handle

    def run(
        self,
        source: RestoreSource,
        plan: RestorePlan,
        verify: bool = True,
        prefetched: Optional[PrefetchedPlan] = None,
        stages: Optional[Dict[str, float]] = None,
    ) -> Tuple[Dict, Dict[str, np.ndarray]]:
        """Execute ``plan`` against ``source``; returns ``(meta, tensors)``.

        ``prefetched`` consumes a read-ahead started by :meth:`prefetch` for
        this plan instance; missing/failed/cancelled units fall back to
        synchronous fetches (the retry), so the result is identical with or
        without it.  ``stages`` (if given) accumulates wall seconds per
        pipeline stage — ``fetch`` / ``verify`` / ``assemble`` — for the
        profiler's critical-path attribution.
        """
        codec_obj = get_codec(plan.codec)
        needed_whole, ranged_blocks = self._fetch_units(plan)

        stage_t0 = time.perf_counter()
        buffers = self._fetch_whole_objects(
            source, needed_whole, verify, prefetched
        )
        ranged_bytes = self._fetch_ranged_blocks(
            source, ranged_blocks, prefetched
        )
        fetch_s = time.perf_counter() - stage_t0

        verify_s = 0.0
        assemble_s = 0.0
        tensors: Dict[str, np.ndarray] = {}
        for name, tensor_plan in plan.tensors.items():
            raws: List[bytes] = []
            for block in tensor_plan.blocks:
                if block.object_name in buffers:
                    data = buffers[block.object_name]
                    stored = data[block.start : block.start + block.stored_nbytes]
                else:
                    stored = ranged_bytes[id(block)]
                stage_t0 = time.perf_counter()
                raws.append(
                    self._block_raw(source, block, stored, codec_obj, verify)
                )
                verify_s += time.perf_counter() - stage_t0
            stage_t0 = time.perf_counter()
            raw = raws[0] if len(raws) == 1 else b"".join(raws)
            array = tensor_from_bytes(raw, tensor_plan.dtype, tensor_plan.shape)
            transform = get_transform(tensor_plan.transform)
            tensors[name] = transform.decode(array, tensor_plan.transform_meta)
            assemble_s += time.perf_counter() - stage_t0
        if stages is not None:
            stages["fetch"] = stages.get("fetch", 0.0) + fetch_s
            stages["verify"] = stages.get("verify", 0.0) + verify_s
            stages["assemble"] = stages.get("assemble", 0.0) + assemble_s
        return plan.meta, tensors

    def _fetch_whole_objects(
        self,
        source: RestoreSource,
        objects: List[ObjectPlan],
        verify: bool,
        prefetched: Optional[PrefetchedPlan] = None,
    ) -> Dict[str, bytes]:
        def fetch(obj: ObjectPlan) -> Tuple[str, bytes]:
            data = None
            if prefetched is not None:
                data = prefetched.take_object(obj.name)
            if data is None:
                data = self._read(lambda: source.read_object(obj.name))
            if verify and obj.sha256 is not None:
                actual = sha256_hex(data)
                if actual != obj.sha256:
                    raise IntegrityError(
                        f"object {obj.name!r}: expected SHA-256 "
                        f"{obj.sha256[:16]}..., got {actual[:16]}..."
                    )
            return obj.name, data

        return dict(self._map(fetch, objects))

    def _fetch_ranged_blocks(
        self,
        source: RestoreSource,
        blocks: List[BlockSpec],
        prefetched: Optional[PrefetchedPlan] = None,
    ) -> Dict[int, bytes]:
        def fetch(block: BlockSpec) -> Tuple[int, bytes]:
            data = None
            if prefetched is not None:
                data = prefetched.take_block(block)
            if data is None:
                data = self._read(
                    lambda: source.read_range(
                        block.object_name, block.start, block.stored_nbytes
                    )
                )
            return id(block), data

        return dict(self._map(fetch, blocks))

    def _read(self, fn: Callable[[], bytes]) -> bytes:
        """One source read, retried on transient failures if a policy is set."""
        if self.retry is None:
            return fn()
        return self.retry.call(fn)

    def _block_raw(
        self,
        source: RestoreSource,
        block: BlockSpec,
        stored: bytes,
        codec_obj,
        verify: bool,
    ) -> bytes:
        """Verify one block; on damage, refetch fresh and re-verify.

        The retry path bypasses every buffer (prefetch, whole-object cache)
        and goes straight back to the source: the point is to observe the
        backend *again*, where a transient lie has cleared or a replicated
        backend falls through to a surviving copy.
        """
        try:
            return self._verified_raw(block, stored, codec_obj, verify)
        except IntegrityError:
            if self.retry is None:
                raise

            def refetch_and_verify() -> bytes:
                fresh = source.read_range(
                    block.object_name, block.start, block.stored_nbytes
                )
                return self._verified_raw(block, fresh, codec_obj, verify)

            return self.retry.call(
                refetch_and_verify,
                retry_on=(TransientStorageError, IntegrityError),
            )

    def _map(self, fn: Callable, items: List) -> List:
        if len(items) <= 1 or self.max_workers == 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        """Release the fetch threads (idempotent; pool rebuilds on use)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None

    def __del__(self):  # release threads when the owning store is dropped
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter teardown
            pass

    @staticmethod
    def _verified_raw(
        block: BlockSpec, stored: bytes, codec_obj, verify: bool
    ) -> bytes:
        """Stored bytes → verified raw bytes for one block."""
        if len(stored) != block.stored_nbytes:
            raise IntegrityError(
                f"block {block.seq} of tensor {block.tensor!r} is truncated: "
                f"got {len(stored)} of {block.stored_nbytes} bytes"
            )
        try:
            raw = decode_stored_chunk(
                stored,
                block.crc32,
                block.raw_nbytes,
                codec_obj,
                label=f"tensor {block.tensor!r} block {block.seq}",
                verify=verify,
            )
        except SerializationError as exc:
            # A block that will not decode is damaged data, not a caller
            # bug: content-addressed blocks carry no CRC, so a corrupted
            # codec frame surfaces here first.
            raise IntegrityError(
                f"tensor {block.tensor!r} block {block.seq} failed to "
                f"decode: {exc}"
            ) from exc
        if verify and block.chunk_address is not None:
            actual = content_address(raw, codec_obj.name)
            if actual != block.chunk_address:
                raise IntegrityError(
                    f"chunk {block.chunk_address} content does not match "
                    "its address"
                )
        return raw


_DEFAULT_EXECUTOR = RestoreExecutor()


def restore_tensors(
    source: RestoreSource,
    names: Optional[Sequence[str]] = None,
    require_all: bool = True,
    executor: Optional[RestoreExecutor] = None,
    verify: bool = True,
) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Plan + execute in one call; returns ``(meta, tensors)``."""
    executor = executor or _DEFAULT_EXECUTOR
    plan = source.plan(names, require_all=require_all)
    return executor.run(source, plan, verify=verify)


# ---------------------------------------------------------------------------
# Monolithic QCKPT source
# ---------------------------------------------------------------------------


class QckptSource(RestoreSource):
    """Restore source over one QCKPT container object.

    Planning parses the container's JSON header through ranged reads; block
    specs are the header's tensor directory entries (one stored chunk per
    tensor, CRC32-verified).  A full restore against a known whole-file
    SHA-256 plans a single whole-object fetch instead — same transfer as the
    legacy path, plus its end-to-end integrity check.  On backends without
    ranged-read support the source reads the object once and serves every
    "ranged" read from that buffer, so planning never multiplies transfers.
    """

    kind = "qckpt"

    def __init__(
        self,
        backend,
        object_name: str,
        expected_sha256: Optional[str] = None,
        data: Optional[bytes] = None,
    ):
        self.backend = backend
        self.object_name = object_name
        self.expected_sha256 = expected_sha256
        self._buffer: Optional[bytes] = data
        self._verified = False
        self._lock = threading.Lock()

    @classmethod
    def from_bytes(cls, data: bytes, name: str = "<bytes>") -> "QckptSource":
        """Source over an already-loaded container (CLI standalone files)."""
        return cls(None, name, data=data)

    @property
    def supports_ranged(self) -> bool:
        if self._buffer is not None:
            return True  # slicing a resident buffer is free
        return bool(getattr(self.backend, "supports_ranged_reads", False))

    def _whole(self) -> bytes:
        with self._lock:
            if self._buffer is None:
                self._buffer = self.backend.read(self.object_name)
            return self._buffer

    def _whole_verified(self) -> bytes:
        """Whole object, checked against the expected SHA-256 exactly once.

        Matches the legacy full-restore ordering: end-to-end integrity is
        established *before* any byte of the object is interpreted.
        """
        data = self._whole()
        with self._lock:
            if self.expected_sha256 is not None and not self._verified:
                actual = sha256_hex(data)
                if actual != self.expected_sha256:
                    raise IntegrityError(
                        f"checkpoint object {self.object_name!r}: expected "
                        f"SHA-256 {self.expected_sha256[:16]}..., "
                        f"got {actual[:16]}..."
                    )
                self._verified = True
        return data

    def read_object(self, name: str) -> bytes:
        return self._whole_verified()

    def read_range(self, name: str, start: int, length: int) -> bytes:
        if self._buffer is not None or not self.supports_ranged:
            return self._whole()[start : start + length]
        return self.backend.read_range(name, start, length)

    def plan(
        self,
        names: Optional[Sequence[str]] = None,
        require_all: bool = True,
        prefetch: bool = True,
    ) -> RestorePlan:
        # A full restore is one whole-object read (verified end to end when
        # the caller knows the object's SHA-256); so is any restore against a
        # backend where ranged reads cannot transfer less.  With ``prefetch``
        # (the load path) that read happens now, so integrity is established
        # *before* header parsing — the legacy ordering — and the executor
        # reuses the buffer.  ``prefetch=False`` (plan introspection, e.g.
        # ``qckpt restore --plan``) keeps planning to header-sized reads.
        wanted = None if names is None else tuple(dict.fromkeys(names))
        whole = wanted is None or not self.supports_ranged
        if whole and prefetch:
            self._whole_verified()
        header, payload_offset = read_header_ranged(
            lambda start, length: self.read_range(
                self.object_name, start, length
            )
        )
        entries = header["tensors"]
        payload_stored = sum(int(e["stored_nbytes"]) for e in entries)
        # What a full restore transfers: the whole container
        # (magic + header + payload + SHA-256 footer).
        total_stored = (
            len(self._buffer)
            if self._buffer is not None
            else payload_offset + payload_stored + SHA256_NBYTES
        )
        tensors: Dict[str, TensorPlan] = {}
        found: set = set()
        for entry in entries:
            name = entry["name"]
            if wanted is not None and name not in wanted:
                continue
            found.add(name)
            block = BlockSpec(
                tensor=name,
                seq=0,
                object_name=self.object_name,
                start=payload_offset + int(entry["offset"]),
                stored_nbytes=int(entry["stored_nbytes"]),
                raw_nbytes=int(entry["raw_nbytes"]),
                crc32=int(entry["crc32"]),
            )
            tensors[name] = TensorPlan(
                name=name,
                dtype=entry["dtype"],
                shape=tuple(int(d) for d in entry["shape"]),
                transform=entry.get("transform", "identity"),
                transform_meta=entry.get("transform_meta", {}),
                blocks=(block,),
            )
        if require_all and wanted is not None and found != set(wanted):
            missing = sorted(set(wanted) - found)
            raise SerializationError(
                f"tensors not in this checkpoint: {missing}"
            )
        objects = [
            ObjectPlan(
                name=self.object_name,
                mode=MODE_WHOLE if whole else MODE_RANGED,
                # The source verifies whole reads itself (before header
                # parse); no second hash at the executor.
                sha256=None,
                nbytes=total_stored,
            )
        ]
        return RestorePlan(
            kind=self.kind,
            meta=header["meta"],
            codec=header["codec"],
            tensors=tensors,
            objects=objects,
            requested=wanted,
            total_stored_bytes=total_stored,
        )
