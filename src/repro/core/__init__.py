"""Checkpointing core — the paper's contribution.

Data model
----------
:class:`repro.core.snapshot.TrainingSnapshot` defines *what hybrid
quantum-classical training state is*: parameters, optimizer slots, RNG
streams, data-sampler position, loss history, an optional cached
statevector, and the model fingerprint that guards resume compatibility.

Mechanism
---------
* :mod:`repro.core.serialize` — the pickle-free QCKPT binary format,
* :mod:`repro.core.codecs` — lossless byte codecs and lossy statevector
  transforms,
* :mod:`repro.core.delta` — XOR-based incremental checkpoints,
* :mod:`repro.core.integrity` — CRC32/SHA-256 validation,
* :mod:`repro.core.writer` — atomic and asynchronous write paths,
* :mod:`repro.core.store` — manifest, discovery, retention/GC,
* :mod:`repro.core.policy` — when to checkpoint (fixed, Young–Daly, adaptive),
* :mod:`repro.core.restore` — the unified restore pipeline (plan → ranged
  fetch → verify → assemble) every read path runs through,
* :mod:`repro.core.recovery` — finding and applying the latest valid snapshot,
* :mod:`repro.core.manager` — the trainer hook tying it all together.
"""

from repro.core.manager import CheckpointManager
from repro.core.policy import (
    AdaptiveOverheadPolicy,
    EveryKSteps,
    FixedTimeInterval,
    YoungDalyPolicy,
    young_daly_interval,
)
from repro.core.recovery import (
    RecoveryManager,
    resume_trainer,
    warm_start_trainer,
)
from repro.core.restore import (
    WARM_START_TENSORS,
    QckptSource,
    RestoreExecutor,
    RestorePlan,
    RestoreSource,
    restore_tensors,
)
from repro.core.snapshot import TrainingSnapshot
from repro.core.store import CheckpointRecord, CheckpointStore, RetentionPolicy
from repro.core.writer import AsyncCheckpointWriter, SyncCheckpointWriter

__all__ = [
    "TrainingSnapshot",
    "CheckpointStore",
    "RestorePlan",
    "RestoreSource",
    "RestoreExecutor",
    "QckptSource",
    "restore_tensors",
    "WARM_START_TENSORS",
    "warm_start_trainer",
    "CheckpointRecord",
    "RetentionPolicy",
    "CheckpointManager",
    "RecoveryManager",
    "resume_trainer",
    "SyncCheckpointWriter",
    "AsyncCheckpointWriter",
    "EveryKSteps",
    "FixedTimeInterval",
    "YoungDalyPolicy",
    "AdaptiveOverheadPolicy",
    "young_daly_interval",
]
