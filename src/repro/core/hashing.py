"""Fast content hashing over block streams.

The chunk store addresses every ``block_bytes``-sized piece of a tensor's
byte stream by SHA-256.  The original save path sliced the stream with
``raw[start:start+block_bytes]`` — one heap-allocated ``bytes`` copy per
block *before* any hashing happened.  :func:`iter_blocks` and
:func:`block_address_stream` replace that with one pass of zero-copy
``memoryview`` slices fed straight into the hash (``hashlib`` accepts any
buffer), so addressing a gigabyte stream allocates nothing but the digests.
The addresses are byte-for-byte identical to
:func:`repro.core.restore.content_address` of the copied block — the
property tests hold both against each other.

:func:`fast_digest` is the cheap non-cryptographic fingerprint (FNV-1a 64):
compiled C when the engine's compiled tier is available, pure Python
otherwise — both produce the same value, which the oracle tests pin.  A
fingerprint mismatch proves two payloads differ; a match proves nothing, so
it is only ever a *negative* pre-filter (skip work when content definitely
changed) and never a substitute for the SHA-256 address.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Tuple

from repro.core.restore import content_address

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def iter_blocks(buffer, block_bytes: int) -> Iterator[memoryview]:
    """Zero-copy ``memoryview`` slices of ``buffer``, ``block_bytes`` each.

    An empty buffer yields exactly one empty view — the chunk store stores
    an empty tensor as one empty block, and the iteration mirrors that.
    """
    view = memoryview(buffer)
    if view.ndim != 1 or view.itemsize != 1:
        view = view.cast("B")
    total = view.nbytes
    if total == 0:
        yield view[:0]
        return
    for start in range(0, total, block_bytes):
        yield view[start : start + block_bytes]


def block_address_stream(
    buffer, block_bytes: int, codec_name: str
) -> Iterator[Tuple[memoryview, str]]:
    """``(block_view, content_address)`` pairs in one zero-copy pass.

    Addresses match :func:`repro.core.restore.content_address` exactly: the
    codec-name prefix is hashed first and each block view is streamed into
    the same SHA-256, so no intermediate ``prefix + block`` concatenation
    (and no block ``bytes`` copy) is ever materialized.
    """
    prefix = hashlib.sha256(codec_name.encode("utf-8") + b"\x00")
    # content_address truncates the hex digest; recover its exact format
    # from one call so this module can never drift from the canonical one.
    for view in iter_blocks(buffer, block_bytes):
        digest = prefix.copy()
        digest.update(view)
        yield view, _format_address(digest.hexdigest())


def _format_address(hex_digest: str) -> str:
    template = _address_template()
    return template[0] + hex_digest[: template[1]]


_TEMPLATE = None


def _address_template() -> Tuple[str, int]:
    """(prefix, digest_chars) of the canonical address format, probed once."""
    global _TEMPLATE
    if _TEMPLATE is None:
        sample = content_address(b"", "probe")
        digest = hashlib.sha256(b"probe\x00").hexdigest()
        # The canonical form is "<prefix><first-k-hex-chars>"; find k by
        # locating the digest suffix inside the sample.
        for k in range(len(sample), 0, -1):
            if sample.endswith(digest[:k]):
                _TEMPLATE = (sample[: len(sample) - k], k)
                break
        else:  # pragma: no cover - canonical format always hex-suffixed
            raise RuntimeError("cannot derive content-address format")
    return _TEMPLATE


def block_addresses(
    buffer, block_bytes: int, codec_name: str
) -> List[Tuple[memoryview, str]]:
    """Materialized :func:`block_address_stream` (small streams, tests)."""
    return list(block_address_stream(buffer, block_bytes, codec_name))


def _fast_digest_python(view: memoryview) -> int:
    h = _FNV_OFFSET
    for byte in bytes(view):
        h = ((h ^ byte) * _FNV_PRIME) & _MASK64
    return h


def fast_digest(data) -> int:
    """FNV-1a 64 fingerprint of a bytes-like object.

    Dispatches to the compiled kernel library when the engine ladder
    permits it on this host (~50x the pure-Python loop), falling back to
    the Python implementation otherwise; both are pinned to the same test
    vectors.  Non-cryptographic: use only as a negative pre-filter.
    """
    from repro.quantum import engines

    lib = engines.storage_library()
    view = memoryview(data)
    if view.ndim != 1 or view.itemsize != 1:
        view = view.cast("B")
    if lib is not None:
        return lib.fnv1a64(view)
    return _fast_digest_python(view)
