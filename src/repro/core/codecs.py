"""Byte codecs (lossless) and tensor transforms (possibly lossy).

Codecs operate on the serialized byte stream of each tensor chunk; transforms
operate on arrays before byte encoding and are *self-describing* (their
decode metadata is stored in the tensor directory).

The lossy transforms target the statevector, which dominates checkpoint size
beyond ~12 qubits:

* ``c64`` — complex128 → complex64 (precision halves, ~1e-7 amplitude error),
* ``f16-pair`` — complex128 → interleaved float16 (quarter size, ~1e-3),
* ``int8-block`` — blockwise absmax int8 quantization of the interleaved
  real/imag stream (eighth size; fidelity measured in Tab. 2).

Lossy restore renormalizes the statevector, so the decoded object is a valid
quantum state whose fidelity against the original quantifies the loss.
"""

from __future__ import annotations

import bz2
import lzma
import zlib
from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigError, SerializationError

# ---------------------------------------------------------------------------
# Byte codecs
# ---------------------------------------------------------------------------


class Codec:
    """Lossless bytes→bytes codec."""

    name = "none"

    def encode(self, data: bytes) -> bytes:
        return data

    def decode(self, data: bytes) -> bytes:
        return data


class ZlibCodec(Codec):
    """DEFLATE at a fixed level."""

    def __init__(self, level: int):
        if not 1 <= level <= 9:
            raise ConfigError(f"zlib level must be in [1, 9], got {level}")
        self.level = level
        self.name = f"zlib-{level}"

    def encode(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decode(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise SerializationError(f"zlib decode failed: {exc}") from exc


class LzmaCodec(Codec):
    """LZMA/XZ: smallest output, slowest encode."""

    name = "lzma"

    def __init__(self, preset: int = 1):
        if not 0 <= preset <= 9:
            raise ConfigError(f"lzma preset must be in [0, 9], got {preset}")
        self.preset = preset
        if preset != 1:
            self.name = f"lzma-{preset}"

    def encode(self, data: bytes) -> bytes:
        return lzma.compress(data, preset=self.preset)

    def decode(self, data: bytes) -> bytes:
        try:
            return lzma.decompress(data)
        except lzma.LZMAError as exc:
            raise SerializationError(f"lzma decode failed: {exc}") from exc


class Bz2Codec(Codec):
    """bzip2 at a fixed compression level."""

    def __init__(self, level: int = 9):
        if not 1 <= level <= 9:
            raise ConfigError(f"bz2 level must be in [1, 9], got {level}")
        self.level = level
        self.name = "bz2" if level == 9 else f"bz2-{level}"

    def encode(self, data: bytes) -> bytes:
        return bz2.compress(data, self.level)

    def decode(self, data: bytes) -> bytes:
        try:
            return bz2.decompress(data)
        except (OSError, ValueError) as exc:
            raise SerializationError(f"bz2 decode failed: {exc}") from exc


CODECS: Dict[str, Codec] = {}
for _codec in [
    Codec(),
    ZlibCodec(1),
    ZlibCodec(6),
    ZlibCodec(9),
    LzmaCodec(1),
    LzmaCodec(6),
    Bz2Codec(9),
]:
    CODECS[_codec.name] = _codec


def get_codec(name: str) -> Codec:
    """Look up a registered byte codec."""
    try:
        return CODECS[name]
    except KeyError:
        raise ConfigError(
            f"unknown codec {name!r}; registered: {sorted(CODECS)}"
        ) from None


# ---------------------------------------------------------------------------
# Tensor transforms
# ---------------------------------------------------------------------------


class TensorTransform:
    """Array→array transform applied before byte encoding.

    ``encode`` returns the array to store plus JSON metadata that ``decode``
    needs.  The identity transform is the implicit default.
    """

    name = "identity"
    lossy = False

    def encode(self, array: np.ndarray) -> Tuple[np.ndarray, Dict]:
        return array, {}

    def decode(self, array: np.ndarray, meta: Dict) -> np.ndarray:
        return array


def _require_complex128(array: np.ndarray, name: str) -> None:
    if array.dtype != np.complex128 or array.ndim != 1:
        raise SerializationError(
            f"transform {name!r} requires a 1-D complex128 array, "
            f"got {array.dtype} with shape {array.shape}"
        )


def _renormalize(array: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(array)
    if norm > 0:
        array = array / norm
    return array


class Complex64Transform(TensorTransform):
    """complex128 → complex64 (half size, ~float32 amplitude precision)."""

    name = "c64"
    lossy = True

    def encode(self, array: np.ndarray) -> Tuple[np.ndarray, Dict]:
        _require_complex128(array, self.name)
        return array.astype(np.complex64), {}

    def decode(self, array: np.ndarray, meta: Dict) -> np.ndarray:
        return _renormalize(array.astype(np.complex128))


class Float16PairTransform(TensorTransform):
    """complex128 → interleaved (re, im) float16 stream (quarter size).

    Amplitudes are scaled by the absmax before the cast so the full float16
    dynamic range is used; the scale is stored in the metadata.
    """

    name = "f16-pair"
    lossy = True

    def encode(self, array: np.ndarray) -> Tuple[np.ndarray, Dict]:
        _require_complex128(array, self.name)
        interleaved = np.empty(2 * array.size, dtype=np.float64)
        interleaved[0::2] = array.real
        interleaved[1::2] = array.imag
        scale = float(np.max(np.abs(interleaved))) if array.size else 1.0
        if scale == 0.0:
            scale = 1.0
        return (interleaved / scale).astype(np.float16), {"scale": scale}

    def decode(self, array: np.ndarray, meta: Dict) -> np.ndarray:
        scale = float(meta.get("scale", 1.0))
        values = array.astype(np.float64) * scale
        out = values[0::2] + 1j * values[1::2]
        return _renormalize(out)


class Int8BlockTransform(TensorTransform):
    """Blockwise absmax int8 quantization of the interleaved stream.

    The interleaved real/imag float stream is cut into blocks of
    ``block_size`` values; each block is scaled by its absmax and rounded to
    int8.  Per-block scales live in the metadata (float64 list), giving an
    8.03x size reduction at ``block_size=4096``.
    """

    lossy = True

    def __init__(self, block_size: int = 4096):
        if block_size < 2:
            raise ConfigError(f"block_size must be >= 2, got {block_size}")
        self.block_size = int(block_size)
        self.name = (
            "int8-block"
            if block_size == 4096
            else f"int8-block-{block_size}"
        )

    def encode(self, array: np.ndarray) -> Tuple[np.ndarray, Dict]:
        _require_complex128(array, self.name)
        interleaved = np.empty(2 * array.size, dtype=np.float64)
        interleaved[0::2] = array.real
        interleaved[1::2] = array.imag
        # Zero-pad to whole blocks and quantize every block with one
        # vectorized absmax reduction (padding cannot raise a block's absmax).
        n_blocks = -(-interleaved.size // self.block_size) if interleaved.size else 0
        padded = np.zeros(n_blocks * self.block_size, dtype=np.float64)
        padded[: interleaved.size] = interleaved
        blocks = padded.reshape(n_blocks, self.block_size)
        block_scales = np.abs(blocks).max(axis=1)
        block_scales[block_scales == 0.0] = 1.0
        quantized_blocks = np.clip(
            np.round(blocks / block_scales[:, None] * 127.0), -127, 127
        ).astype(np.int8)
        quantized = quantized_blocks.reshape(-1)[: interleaved.size]
        return quantized, {
            "scales": [float(s) for s in block_scales],
            "block_size": self.block_size,
        }

    def decode(self, array: np.ndarray, meta: Dict) -> np.ndarray:
        scales = np.asarray(meta["scales"], dtype=np.float64)
        block_size = int(meta["block_size"])
        per_value = np.repeat(scales, block_size)[: array.size]
        values = array.astype(np.float64) / 127.0 * per_value
        out = values[0::2] + 1j * values[1::2]
        return _renormalize(out)


TRANSFORMS: Dict[str, TensorTransform] = {}
for _transform in [
    TensorTransform(),
    Complex64Transform(),
    Float16PairTransform(),
    Int8BlockTransform(),
]:
    TRANSFORMS[_transform.name] = _transform


def register_codec(codec: Codec, replace: bool = False) -> Codec:
    """Add a byte codec to the global registry (used by extensions)."""
    if codec.name in CODECS and not replace:
        raise ConfigError(f"codec {codec.name!r} is already registered")
    CODECS[codec.name] = codec
    return codec


def register_transform(
    transform: TensorTransform, replace: bool = False
) -> TensorTransform:
    """Add a tensor transform to the global registry (used by extensions).

    ``repro.mps.transform`` registers its MPS transforms through this hook at
    import time; importing any ``repro`` submodule triggers the package
    ``__init__`` which imports ``repro.mps``, so files written with extension
    transforms always decode.
    """
    if transform.name in TRANSFORMS and not replace:
        raise ConfigError(f"transform {transform.name!r} is already registered")
    TRANSFORMS[transform.name] = transform
    return transform


def get_transform(name: str) -> TensorTransform:
    """Look up a registered tensor transform."""
    try:
        return TRANSFORMS[name]
    except KeyError:
        raise ConfigError(
            f"unknown transform {name!r}; registered: {sorted(TRANSFORMS)}"
        ) from None
