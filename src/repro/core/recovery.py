"""Recovery: finding and applying the newest restorable checkpoint.

Recovery must tolerate damage: the newest checkpoint may be torn (crash mid
write on a non-atomic store), bit-rotted, or referencing a missing delta
base.  :meth:`RecoveryManager.latest_valid` walks records newest-first,
validates each end to end, and falls back until one restores — collecting a
report of everything it skipped.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.snapshot import TrainingSnapshot
from repro.core.store import CheckpointRecord, CheckpointStore
from repro.errors import CheckpointNotFoundError, ReproError

logger = logging.getLogger(__name__)


@dataclass
class RecoveryReport:
    """Outcome of a recovery attempt."""

    record: Optional[CheckpointRecord] = None
    snapshot: Optional[TrainingSnapshot] = None
    skipped: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        return self.snapshot is not None


class RecoveryManager:
    """Damage-tolerant restore over a :class:`CheckpointStore`."""

    def __init__(self, store: CheckpointStore):
        self.store = store

    def latest_valid(self) -> RecoveryReport:
        """Newest checkpoint that loads and validates, skipping damaged ones."""
        report = RecoveryReport()
        records = sorted(
            self.store.records(),
            key=lambda r: (r.step, r.created, r.id),
            reverse=True,
        )
        for record in records:
            try:
                snapshot = self.store.load(record.id)
            except ReproError as exc:
                logger.warning(
                    "skipping damaged checkpoint %s (step %d): %s",
                    record.id,
                    record.step,
                    exc,
                )
                report.skipped.append((record.id, str(exc)))
                continue
            report.record = record
            report.snapshot = snapshot
            return report
        return report


def resume_trainer(
    trainer, store: CheckpointStore, required: bool = False
) -> Optional[CheckpointRecord]:
    """Restore ``trainer`` from the newest valid checkpoint in ``store``.

    Returns the record used, or ``None`` when the store holds nothing
    restorable (raising instead when ``required``).  Incompatible snapshots
    (different model fingerprint) propagate
    :class:`~repro.errors.IncompatibleCheckpointError` rather than being
    silently skipped — resuming a different model is a caller bug, not
    storage damage.
    """
    report = RecoveryManager(store).latest_valid()
    if not report.recovered:
        if required:
            raise CheckpointNotFoundError(
                "no restorable checkpoint in store"
                + (f"; skipped: {report.skipped}" if report.skipped else "")
            )
        return None
    trainer.restore(report.snapshot)
    return report.record
