"""Recovery: finding and applying the newest restorable checkpoint.

Recovery must tolerate damage: the newest checkpoint may be torn (crash mid
write on a non-atomic store), bit-rotted, or referencing a missing delta
base.  :meth:`RecoveryManager.latest_valid` walks records newest-first,
validates each end to end, and falls back until one restores — collecting a
report of everything it skipped.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.restore import WARM_START_TENSORS
from repro.core.snapshot import TrainingSnapshot
from repro.core.store import CheckpointRecord, CheckpointStore
from repro.errors import CheckpointNotFoundError, ReproError

logger = logging.getLogger(__name__)


@dataclass
class RecoveryReport:
    """Outcome of a recovery attempt."""

    record: Optional[CheckpointRecord] = None
    snapshot: Optional[TrainingSnapshot] = None
    skipped: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        return self.snapshot is not None


class RecoveryManager:
    """Damage-tolerant restore over a :class:`CheckpointStore`."""

    def __init__(self, store: CheckpointStore):
        self.store = store

    def latest_valid(self) -> RecoveryReport:
        """Newest checkpoint that loads and validates, skipping damaged ones."""
        report = RecoveryReport()
        records = sorted(
            self.store.records(),
            key=lambda r: (r.step, r.created, r.id),
            reverse=True,
        )
        for record in records:
            try:
                snapshot = self.store.load(record.id)
            except ReproError as exc:
                logger.warning(
                    "skipping damaged checkpoint %s (step %d): %s",
                    record.id,
                    record.step,
                    exc,
                )
                report.skipped.append((record.id, str(exc)))
                continue
            report.record = record
            report.snapshot = snapshot
            return report
        return report

    def latest_valid_tensors(
        self, names: Sequence[str]
    ) -> Tuple[Optional[CheckpointRecord], Optional[Dict], List[Tuple[str, str]]]:
        """Newest checkpoint whose named tensors restore; skips damaged ones.

        The partial-restore analog of :meth:`latest_valid`: only the
        requested tensors' chunks are planned and fetched per candidate, so
        probing a damaged history costs ranged reads, not full transfers.
        Returns ``(record, {name: array} or None, skipped)``.
        """
        skipped: List[Tuple[str, str]] = []
        records = sorted(
            self.store.records(),
            key=lambda r: (r.step, r.created, r.id),
            reverse=True,
        )
        for record in records:
            try:
                _, tensors = self.store.load_partial(record.id, names)
            except ReproError as exc:
                logger.warning(
                    "skipping damaged checkpoint %s (step %d): %s",
                    record.id,
                    record.step,
                    exc,
                )
                skipped.append((record.id, str(exc)))
                continue
            return record, tensors, skipped
        return None, None, skipped


def warm_start_trainer(
    trainer, store: CheckpointStore, required: bool = False
) -> Optional[CheckpointRecord]:
    """Seed ``trainer`` with parameters from the newest valid checkpoint.

    The planner fetches only the ``params`` tensor (ranged reads where the
    backend supports them) — the cheap warm start for architecture-search
    and cross-validation sweeps.  Returns the record used, or ``None`` when
    nothing restorable exists (raising instead when ``required``).
    """
    record, tensors, skipped = RecoveryManager(store).latest_valid_tensors(
        WARM_START_TENSORS
    )
    if tensors is None:
        if required:
            raise CheckpointNotFoundError(
                "no restorable checkpoint in store"
                + (f"; skipped: {skipped}" if skipped else "")
            )
        return None
    trainer.warm_start(np.asarray(tensors["params"]))
    return record


def resume_trainer(
    trainer, store: CheckpointStore, required: bool = False
) -> Optional[CheckpointRecord]:
    """Restore ``trainer`` from the newest valid checkpoint in ``store``.

    Returns the record used, or ``None`` when the store holds nothing
    restorable (raising instead when ``required``).  Incompatible snapshots
    (different model fingerprint) propagate
    :class:`~repro.errors.IncompatibleCheckpointError` rather than being
    silently skipped — resuming a different model is a caller bug, not
    storage damage.
    """
    report = RecoveryManager(store).latest_valid()
    if not report.recovered:
        if required:
            raise CheckpointNotFoundError(
                "no restorable checkpoint in store"
                + (f"; skipped: {report.skipped}" if report.skipped else "")
            )
        return None
    trainer.restore(report.snapshot)
    return report.record
