"""The definition of hybrid quantum-classical training state.

:class:`TrainingSnapshot` is the unit the checkpoint layer persists.  Its
payload is split into two parts by :func:`split_tree`:

* a JSON-able *meta tree* (scalars, RNG states, fingerprints, nested dicts),
* a flat ``{path: numpy array}`` *tensor directory* (parameters, optimizer
  moments, sampler permutation, loss history, statevector).

The split is generic: any ``dict`` tree whose leaves are JSON scalars or
numpy arrays round-trips exactly, which keeps the snapshot schema open for
user extensions (the ``extra`` field).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import IncompatibleCheckpointError, SerializationError

_TENSOR_MARKER = "$tensor"


def split_tree(tree: Any, prefix: str = "") -> Tuple[Any, Dict[str, np.ndarray]]:
    """Replace every ndarray leaf by a marker; collect arrays by path.

    Returns ``(json_tree, tensors)``.  Paths join dict keys / list indices
    with ``/``.  Numpy scalars are converted to Python scalars so the JSON
    side serializes cleanly.
    """
    tensors: Dict[str, np.ndarray] = {}

    def walk(node: Any, path: str) -> Any:
        if isinstance(node, np.ndarray):
            tensors[path] = node
            return {_TENSOR_MARKER: path}
        if isinstance(node, (np.integer,)):
            return int(node)
        if isinstance(node, (np.floating,)):
            return float(node)
        if isinstance(node, (np.bool_,)):
            return bool(node)
        if isinstance(node, dict):
            out = {}
            for key, value in node.items():
                if not isinstance(key, str):
                    raise SerializationError(
                        f"tree keys must be strings, got {key!r} at {path!r}"
                    )
                if _TENSOR_MARKER in key or "/" in key:
                    raise SerializationError(
                        f"tree key {key!r} may not contain '/' or the tensor marker"
                    )
                out[key] = walk(value, f"{path}/{key}" if path else key)
            return out
        if isinstance(node, (list, tuple)):
            return [walk(v, f"{path}/{i}") for i, v in enumerate(node)]
        if node is None or isinstance(node, (bool, int, float, str)):
            return node
        raise SerializationError(
            f"unsupported leaf type {type(node).__name__} at {path!r}"
        )

    json_tree = walk(tree, prefix)
    return json_tree, tensors


def join_tree(json_tree: Any, tensors: Dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`split_tree`."""

    def walk(node: Any) -> Any:
        if isinstance(node, dict):
            if set(node.keys()) == {_TENSOR_MARKER}:
                path = node[_TENSOR_MARKER]
                if path not in tensors:
                    raise SerializationError(f"missing tensor {path!r}")
                return tensors[path]
            return {key: walk(value) for key, value in node.items()}
        if isinstance(node, list):
            return [walk(v) for v in node]
        return node

    return walk(json_tree)


def tree_equal(a: Any, b: Any) -> bool:
    """Exact structural equality of trees with ndarray leaves (bitwise)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not isinstance(a, np.ndarray) or not isinstance(b, np.ndarray):
            return False
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and bool(np.array_equal(a, b))
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(tree_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(tree_equal(x, y) for x, y in zip(a, b))
    return bool(a == b)


SNAPSHOT_SCHEMA_VERSION = 1


@dataclass
class TrainingSnapshot:
    """Complete, restorable state of one hybrid training run at one step."""

    step: int
    params: np.ndarray
    optimizer_state: Dict
    rng_state: Dict
    model_fingerprint: str
    sampler_state: Optional[Dict] = None
    loss_history: np.ndarray = field(default_factory=lambda: np.zeros(0))
    statevector: Optional[np.ndarray] = None
    wall_time: float = 0.0
    extra: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.params = np.asarray(self.params, dtype=np.float64)
        self.loss_history = np.asarray(self.loss_history, dtype=np.float64)
        if self.statevector is not None:
            self.statevector = np.asarray(self.statevector)
        self.step = int(self.step)
        self.wall_time = float(self.wall_time)

    # -- payload mapping --------------------------------------------------------

    def to_payload(self) -> Tuple[Dict, Dict[str, np.ndarray]]:
        """Return (JSON meta tree, tensor directory) for serialization."""
        tree = {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "step": self.step,
            "wall_time": self.wall_time,
            "model_fingerprint": self.model_fingerprint,
            "params": self.params,
            "optimizer_state": self.optimizer_state,
            "rng_state": self.rng_state,
            "sampler_state": self.sampler_state,
            "loss_history": self.loss_history,
            "statevector": self.statevector,
            "extra": self.extra,
        }
        return split_tree(tree)

    @classmethod
    def from_payload(
        cls, meta: Dict, tensors: Dict[str, np.ndarray]
    ) -> "TrainingSnapshot":
        """Reconstruct a snapshot from :meth:`to_payload` output."""
        tree = join_tree(meta, tensors)
        try:
            schema = int(tree["schema"])
            if schema != SNAPSHOT_SCHEMA_VERSION:
                raise SerializationError(
                    f"unsupported snapshot schema {schema} "
                    f"(this build reads {SNAPSHOT_SCHEMA_VERSION})"
                )
            return cls(
                step=tree["step"],
                params=tree["params"],
                optimizer_state=tree["optimizer_state"],
                rng_state=tree["rng_state"],
                model_fingerprint=tree["model_fingerprint"],
                sampler_state=tree.get("sampler_state"),
                loss_history=tree.get("loss_history", np.zeros(0)),
                statevector=tree.get("statevector"),
                wall_time=tree.get("wall_time", 0.0),
                extra=tree.get("extra", {}),
            )
        except KeyError as exc:
            raise SerializationError(f"snapshot payload missing {exc}") from exc

    # -- helpers -----------------------------------------------------------------

    def copy(self) -> "TrainingSnapshot":
        """Deep copy, so async writers can persist while training mutates."""
        return TrainingSnapshot(
            step=self.step,
            params=self.params.copy(),
            optimizer_state=copy.deepcopy(self.optimizer_state),
            rng_state=copy.deepcopy(self.rng_state),
            model_fingerprint=self.model_fingerprint,
            sampler_state=copy.deepcopy(self.sampler_state),
            loss_history=self.loss_history.copy(),
            statevector=None if self.statevector is None else self.statevector.copy(),
            wall_time=self.wall_time,
            extra=copy.deepcopy(self.extra),
        )

    def check_compatible(self, model_fingerprint: str) -> None:
        """Raise unless this snapshot was produced by the same model structure."""
        if self.model_fingerprint != model_fingerprint:
            raise IncompatibleCheckpointError(
                "snapshot fingerprint "
                f"{self.model_fingerprint[:12]}... does not match model "
                f"{model_fingerprint[:12]}..."
            )

    def nbytes(self) -> int:
        """Raw (uncompressed) tensor payload size in bytes."""
        _, tensors = self.to_payload()
        return int(sum(t.nbytes for t in tensors.values()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrainingSnapshot):
            return NotImplemented
        mine, my_tensors = self.to_payload()
        theirs, their_tensors = other.to_payload()
        return tree_equal(mine, theirs) and tree_equal(my_tensors, their_tensors)
