"""Synchronous and asynchronous checkpoint execution.

Writers are single-slot task executors the :class:`~repro.core.manager.
CheckpointManager` routes save operations through:

* :class:`SyncCheckpointWriter` runs the task inline — training blocks for
  the full pack+write duration (the baseline in Fig. 3),
* :class:`AsyncCheckpointWriter` runs tasks on one background thread in FIFO
  order — training blocks only for the snapshot capture (a deep copy), and
  write errors surface on the *next* interaction, preserving at-most-one
  outstanding failure semantics.

Tasks are plain callables; FIFO ordering is what keeps the store's
payload-before-manifest ordering intact in async mode.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import CheckpointError
from repro.obs.metrics import MetricsRegistry, StatsView


class WriteStats(StatsView):
    """Aggregate accounting for a writer's lifetime.

    Registry-backed: ``<name>.tasks`` / ``<name>.seconds`` /
    ``<name>.blocked_seconds`` counters (``name`` distinguishes the core
    writers, the shared pool, and per-job channels, which add a ``job``
    label).
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "writer",
        labels: Optional[Dict[str, str]] = None,
    ):
        super().__init__()
        registry = metrics if metrics is not None else MetricsRegistry()
        labels = labels or {}
        self._bind("tasks", registry.counter(f"{name}.tasks", **labels))
        self._bind(
            "seconds",
            registry.counter(f"{name}.seconds", **labels),
            as_int=False,
        )
        self._bind(
            "blocked_seconds",
            registry.counter(f"{name}.blocked_seconds", **labels),
            as_int=False,
        )


class SyncCheckpointWriter:
    """Runs save tasks inline on the caller's thread."""

    def __init__(self) -> None:
        self.stats = WriteStats()

    def submit(self, task: Callable[[], None]) -> None:
        """Execute ``task`` immediately; its duration blocks the caller."""
        started = time.perf_counter()
        task()
        elapsed = time.perf_counter() - started
        self.stats.tasks += 1
        self.stats.seconds += elapsed
        self.stats.blocked_seconds += elapsed

    def drain(self) -> None:
        """No-op: sync writers never have pending work."""

    def close(self) -> None:
        """No-op."""

    @property
    def pending(self) -> int:
        return 0


class AsyncCheckpointWriter:
    """Runs save tasks on one daemon thread, FIFO.

    ``max_pending`` bounds *outstanding* work — queued plus in-flight tasks —
    via a semaphore; when the bound is reached, ``submit`` blocks (back
    pressure).  Unbounded buffering would let a slow store accumulate
    arbitrarily many multi-megabyte snapshots in memory.

    The internal queue itself is unbounded (the semaphore is the bound), so
    :meth:`close` can always enqueue its shutdown sentinel without deadlocking
    behind a full queue; if a save task wedges forever, ``close`` raises
    :class:`~repro.errors.CheckpointError` after ``close_timeout`` seconds
    instead of hanging the trainer.
    """

    def __init__(self, max_pending: int = 2, close_timeout: float = 60.0):
        if max_pending < 1:
            raise CheckpointError(f"max_pending must be >= 1, got {max_pending}")
        if close_timeout <= 0:
            raise CheckpointError(
                f"close_timeout must be > 0, got {close_timeout}"
            )
        self.stats = WriteStats()
        self.max_pending = int(max_pending)
        self._close_timeout = float(close_timeout)
        self._slots = threading.BoundedSemaphore(max_pending)
        self._queue: "queue.Queue[Optional[Callable[[], None]]]" = queue.Queue()
        self._error: Optional[BaseException] = None
        self._closed = False
        self._sentinel_sent = False
        self._idle = threading.Event()
        self._idle.set()
        self._thread = threading.Thread(
            target=self._worker, name="qckpt-writer", daemon=True
        )
        self._thread.start()

    def _worker(self) -> None:
        while True:
            task = self._queue.get()
            if task is None:
                self._queue.task_done()
                break
            self._idle.clear()
            started = time.perf_counter()
            try:
                task()
            except BaseException as exc:  # propagate to the training thread
                self._error = exc
            finally:
                self.stats.tasks += 1
                self.stats.seconds += time.perf_counter() - started
                self._slots.release()
                self._queue.task_done()
                if self._queue.unfinished_tasks == 0:
                    self._idle.set()

    def _raise_pending_error(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise CheckpointError(
                f"asynchronous checkpoint write failed: {error}"
            ) from error

    def submit(self, task: Callable[[], None]) -> None:
        """Enqueue ``task``; blocks only while ``max_pending`` tasks are outstanding.

        A pending write error is surfaced even on a closed writer — rejecting
        the submit must not shadow a failure the caller has not seen yet.
        """
        self._raise_pending_error()
        if self._closed:
            raise CheckpointError("writer is closed")
        started = time.perf_counter()
        self._idle.clear()
        self._slots.acquire()
        self._queue.put(task)
        self.stats.blocked_seconds += time.perf_counter() - started

    def drain(self) -> None:
        """Block until all enqueued tasks finished; re-raise their errors."""
        self._queue.join()
        self._raise_pending_error()

    def close(self) -> None:
        """Drain, stop the worker thread, and surface any pending error.

        Raises :class:`~repro.errors.CheckpointError` if outstanding tasks do
        not finish within ``close_timeout`` (e.g. a save wedged on a hung
        backend) — the worker is a daemon thread, so the process can still
        exit.

        Shutdown semantics: a task that fails while ``close`` is waiting still
        surfaces its error (exactly once) from this call; calling ``close``
        again after it raised does not re-raise a seen error, but *does*
        re-join the worker and surface an error that arrived after a timed-out
        first attempt — a failure is never silently dropped just because the
        writer was already closing.
        """
        self._closed = True
        if not self._sentinel_sent:
            self._sentinel_sent = True
            self._queue.put(None)
        self._thread.join(timeout=self._close_timeout)
        if self._thread.is_alive():
            # Prefer surfacing a real write failure over the stuck report.
            self._raise_pending_error()
            raise CheckpointError(
                f"async writer failed to drain within {self._close_timeout}s; "
                "a checkpoint save task appears to be stuck"
            )
        self._raise_pending_error()

    @property
    def pending(self) -> int:
        """Number of submitted tasks not yet finished."""
        unfinished = self._queue.unfinished_tasks
        # The shutdown sentinel is not a task.
        return max(0, unfinished - (1 if self._closed else 0))

    def __enter__(self) -> "AsyncCheckpointWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
