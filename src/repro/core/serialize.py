"""QCKPT v1: the pickle-free checkpoint container format.

Layout::

    +--------------------+----------------------------------------------+
    | magic   (8 bytes)  | b"QCKPT1\\n\\x00"                            |
    | hlen    (4 bytes)  | little-endian uint32 header length           |
    | header  (hlen)     | UTF-8 JSON: version, codec, meta, tensor dir |
    | payload            | concatenated encoded tensor chunks           |
    | footer  (32 bytes) | SHA-256 over everything before the footer    |
    +--------------------+----------------------------------------------+

Tensor directory entries record ``name, dtype, shape, offset, stored_nbytes,
raw_nbytes, crc32, transform, transform_meta``.  Decoding never executes
code: the header is JSON, tensors are ``np.frombuffer`` reconstructions, and
unknown codec/transform names fail loudly.  This is the safety property a
checkpoint loader must have (contrast: ``pickle``-based formats execute
arbitrary bytecode on load).
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.codecs import get_codec, get_transform
from repro.core.integrity import (
    SHA256_NBYTES,
    crc32_of,
    sha256_of,
    verify_crc32,
    verify_sha256,
)
from repro.core.snapshot import TrainingSnapshot
from repro.errors import IntegrityError, SerializationError

MAGIC = b"QCKPT1\n\x00"
FORMAT_VERSION = 1

_ALLOWED_DTYPES = {
    "<f8", "<f4", "<f2",
    "<i8", "<i4", "<i2", "|i1",
    "<u8", "<u4", "<u2", "|u1",
    "<c16", "<c8",
    "|b1",
}


def _canonical_dtype(array: np.ndarray) -> Tuple[np.ndarray, str]:
    """Coerce to little-endian and return the dtype token to store."""
    dtype = array.dtype.newbyteorder("<") if array.dtype.byteorder == ">" else array.dtype
    if dtype != array.dtype:
        array = array.astype(dtype)
    token = np.dtype(dtype).str
    if token.startswith("="):
        token = "<" + token[1:]
    if token not in _ALLOWED_DTYPES:
        raise SerializationError(
            f"dtype {token!r} is not in the QCKPT dtype whitelist"
        )
    return np.ascontiguousarray(array), token


def tensor_to_bytes(array: np.ndarray) -> Tuple[bytes, str, Tuple[int, ...]]:
    """Canonical raw encoding of one tensor: ``(bytes, dtype_token, shape)``.

    The canonical form (little-endian, contiguous, whitelisted dtype) is what
    both the QCKPT container and the service chunk store hash and persist —
    equal arrays always produce equal bytes, which is what makes
    content-addressed dedup sound.
    """
    if not isinstance(array, np.ndarray):
        raise SerializationError(
            f"expected ndarray, got {type(array).__name__}"
        )
    canonical, token = _canonical_dtype(array)
    return canonical.tobytes(), token, tuple(canonical.shape)


def tensor_from_bytes(
    raw: bytes, dtype_token: str, shape: Tuple[int, ...]
) -> np.ndarray:
    """Inverse of :func:`tensor_to_bytes`.

    Validates against the dtype whitelist and requires every dim to be an
    explicit non-negative int whose product matches the byte count — a
    malicious ``-1`` dim from an untrusted directory must not let numpy
    "resolve" a truncated buffer into a silently wrong shape.
    """
    if dtype_token not in _ALLOWED_DTYPES:
        raise IntegrityError(f"illegal tensor dtype {dtype_token!r}")
    dims = []
    for dim in shape:
        if not isinstance(dim, (int, np.integer)) or dim < 0:
            raise IntegrityError(f"illegal tensor shape {tuple(shape)!r}")
        dims.append(int(dim))
    dtype = np.dtype(dtype_token)
    expected = int(np.prod(dims, dtype=np.int64)) * dtype.itemsize
    if expected != len(raw):
        raise IntegrityError(
            f"tensor bytes ({len(raw)}) do not match shape "
            f"{tuple(dims)!r} of dtype {dtype_token!r}"
        )
    array = np.frombuffer(raw, dtype=dtype).reshape(tuple(dims))
    return np.array(array, copy=True)


def pack_payload(
    meta: Dict,
    tensors: Dict[str, np.ndarray],
    codec: str = "zlib-6",
    transforms: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize a (JSON meta, tensor directory) pair to QCKPT bytes.

    ``transforms`` maps tensor names to transform names (e.g.
    ``{"statevector": "f16-pair"}``); unlisted tensors store losslessly.
    """
    codec_obj = get_codec(codec)
    transforms = transforms or {}
    for name in transforms:
        if name not in tensors:
            raise SerializationError(
                f"transform target {name!r} is not a tensor in this payload"
            )
    directory = []
    chunks = []
    offset = 0
    for name in sorted(tensors):
        array = tensors[name]
        if not isinstance(array, np.ndarray):
            raise SerializationError(
                f"tensor {name!r} is {type(array).__name__}, expected ndarray"
            )
        transform_name = transforms.get(name, "identity")
        transform = get_transform(transform_name)
        encoded_array, transform_meta = transform.encode(array)
        raw, dtype_token, shape = tensor_to_bytes(encoded_array)
        stored = codec_obj.encode(raw)
        directory.append(
            {
                "name": name,
                "dtype": dtype_token,
                "shape": list(shape),
                "offset": offset,
                "stored_nbytes": len(stored),
                "raw_nbytes": len(raw),
                "crc32": crc32_of(stored),
                "transform": transform_name,
                "transform_meta": transform_meta,
            }
        )
        chunks.append(stored)
        offset += len(stored)

    header = {
        "format_version": FORMAT_VERSION,
        "codec": codec_obj.name,
        "meta": meta,
        "tensors": directory,
    }
    try:
        header_bytes = json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"meta tree is not JSON-serializable: {exc}") from exc

    body = b"".join(
        [MAGIC, struct.pack("<I", len(header_bytes)), header_bytes, *chunks]
    )
    return body + sha256_of(body)


def unpack_payload(
    data: bytes, verify: bool = True
) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Inverse of :func:`pack_payload`; validates checksums when ``verify``."""
    minimum = len(MAGIC) + 4 + SHA256_NBYTES
    if len(data) < minimum:
        raise IntegrityError(
            f"data of {len(data)} bytes is shorter than a minimal QCKPT file"
        )
    if data[: len(MAGIC)] != MAGIC:
        raise IntegrityError("bad magic: not a QCKPT file")
    body, footer = data[:-SHA256_NBYTES], data[-SHA256_NBYTES:]
    if verify:
        verify_sha256(body, footer, label="QCKPT file")

    (header_len,) = struct.unpack_from("<I", data, len(MAGIC))
    header_start = len(MAGIC) + 4
    header_end = header_start + header_len
    if header_end > len(body):
        raise IntegrityError("header length exceeds file size")
    try:
        header = json.loads(data[header_start:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IntegrityError(f"header is not valid JSON: {exc}") from exc

    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported QCKPT format version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    codec_obj = get_codec(header["codec"])
    payload = body[header_end:]

    tensors: Dict[str, np.ndarray] = {}
    for entry in header["tensors"]:
        start, length = int(entry["offset"]), int(entry["stored_nbytes"])
        stored = payload[start : start + length]
        tensors[entry["name"]] = _decode_directory_entry(
            entry, stored, codec_obj, verify
        )
    return header["meta"], tensors


def decode_stored_chunk(
    stored: bytes,
    crc32: Optional[int],
    raw_nbytes: int,
    codec_obj,
    label: str,
    verify: bool = True,
) -> bytes:
    """One stored (encoded) chunk → verified raw bytes.

    The shared decode step of every read path: CRC32 over the stored bytes
    (when recorded and ``verify``), codec decode, decoded-length check.
    Both the in-place unpackers here and the restore pipeline's block
    executor use it, so integrity rules cannot drift between paths.
    """
    if verify and crc32 is not None:
        verify_crc32(stored, int(crc32), label=label)
    raw = codec_obj.decode(stored)
    if len(raw) != int(raw_nbytes):
        raise IntegrityError(
            f"{label} decoded to {len(raw)} bytes, "
            f"directory says {raw_nbytes}"
        )
    return raw


def _decode_directory_entry(
    entry: Dict, stored: bytes, codec_obj, verify: bool
) -> np.ndarray:
    """Decode one tensor chunk against its directory entry."""
    name = entry["name"]
    if len(stored) != int(entry["stored_nbytes"]):
        raise IntegrityError(f"tensor {name!r} chunk is truncated")
    raw = decode_stored_chunk(
        stored,
        int(entry["crc32"]),
        int(entry["raw_nbytes"]),
        codec_obj,
        label=f"tensor {name!r}",
        verify=verify,
    )
    dtype_token = entry["dtype"]
    if dtype_token not in _ALLOWED_DTYPES:
        raise IntegrityError(f"tensor {name!r} has illegal dtype {dtype_token!r}")
    array = np.frombuffer(raw, dtype=np.dtype(dtype_token)).reshape(
        tuple(entry["shape"])
    )
    transform = get_transform(entry.get("transform", "identity"))
    return transform.decode(
        np.array(array, copy=True), entry.get("transform_meta", {})
    )


def read_header_ranged(reader) -> Tuple[Dict, int]:
    """Parse a QCKPT header through a ``(start, length) -> bytes`` reader.

    Returns ``(header, payload_offset)``.  Used by partial restores, which
    must not transfer the whole object.
    """
    prefix = reader(0, len(MAGIC) + 4)
    if len(prefix) < len(MAGIC) + 4 or prefix[: len(MAGIC)] != MAGIC:
        raise IntegrityError("bad magic: not a QCKPT file")
    (header_len,) = struct.unpack_from("<I", prefix, len(MAGIC))
    header_start = len(MAGIC) + 4
    header_bytes = reader(header_start, header_len)
    if len(header_bytes) != header_len:
        raise IntegrityError("header length exceeds file size")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IntegrityError(f"header is not valid JSON: {exc}") from exc
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported QCKPT format version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    return header, header_start + header_len


def unpack_partial(
    reader,
    names: Optional[Tuple[str, ...]] = None,
    verify: bool = True,
    require_all: bool = True,
) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Selective unpack through a ``(start, length) -> bytes`` reader.

    Transfers the header plus only the chunks of the requested ``names``
    (``None`` selects every tensor).  Per-chunk CRC32s are verified; the
    whole-file SHA-256 is *not* (it would require reading everything) —
    partial restores trade whole-file integrity for bandwidth, which is safe
    because every byte consumed is still CRC-checked.

    With ``require_all=False``, names absent from this file's directory are
    silently skipped (delta chains store a tensor only in the records where
    it changed).
    """
    header, payload_offset = read_header_ranged(reader)
    codec_obj = get_codec(header["codec"])
    wanted = None if names is None else set(names)
    found = set()
    tensors: Dict[str, np.ndarray] = {}
    for entry in header["tensors"]:
        name = entry["name"]
        if wanted is not None and name not in wanted:
            continue
        found.add(name)
        start = payload_offset + int(entry["offset"])
        stored = reader(start, int(entry["stored_nbytes"]))
        tensors[name] = _decode_directory_entry(entry, stored, codec_obj, verify)
    if require_all and wanted is not None and found != wanted:
        missing = sorted(wanted - found)
        raise SerializationError(f"tensors not in this checkpoint: {missing}")
    return header["meta"], tensors


# ---------------------------------------------------------------------------
# Snapshot-level convenience API
# ---------------------------------------------------------------------------


def pack_snapshot(
    snapshot: TrainingSnapshot,
    codec: str = "zlib-6",
    transforms: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize a training snapshot to QCKPT bytes."""
    meta, tensors = snapshot.to_payload()
    return pack_payload(
        {"kind": "full", "snapshot": meta}, tensors, codec=codec, transforms=transforms
    )


def unpack_snapshot(data: bytes, verify: bool = True) -> TrainingSnapshot:
    """Deserialize QCKPT bytes produced by :func:`pack_snapshot`."""
    meta, tensors = unpack_payload(data, verify=verify)
    if meta.get("kind") != "full":
        raise SerializationError(
            f"expected a full snapshot, found kind {meta.get('kind')!r} "
            "(delta checkpoints must be resolved through a CheckpointStore)"
        )
    return TrainingSnapshot.from_payload(meta["snapshot"], tensors)


def inspect_header(data: bytes) -> Dict:
    """Return the parsed header without decoding tensors (CLI support)."""
    if data[: len(MAGIC)] != MAGIC:
        raise IntegrityError("bad magic: not a QCKPT file")
    (header_len,) = struct.unpack_from("<I", data, len(MAGIC))
    start = len(MAGIC) + 4
    try:
        return json.loads(data[start : start + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IntegrityError(f"header is not valid JSON: {exc}") from exc
