"""Checkpoint store: manifest, discovery, delta chains, retention.

Layout inside a storage backend::

    MANIFEST.json            # atomic-replace updated, lists all records
    ckpt-000001.qckpt        # full checkpoint (QCKPT container)
    ckpt-000002.qckpt        # delta checkpoint (QCKPT container, kind=delta)

Ordering guarantee: an object is fully written (atomically) *before* the
manifest mentions it, so a crash between the two leaves an orphan object —
never a dangling manifest entry.  Orphans are swept by :meth:`CheckpointStore.gc`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.delta import apply_delta, encode_delta
from repro.core.integrity import sha256_hex
from repro.core.restore import (
    QckptSource,
    RestoreExecutor,
    RestorePlan,
    restore_tensors,
)
from repro.core.serialize import pack_payload
from repro.core.snapshot import TrainingSnapshot
from repro.errors import (
    CheckpointNotFoundError,
    ConfigError,
    IntegrityError,
    ReproError,
    SerializationError,
    StorageError,
)
from repro.faults.crashpoints import crash_point, register_crash_point
from repro.storage.backend import StorageBackend

CP_OBJECT_BEFORE_WRITE = register_crash_point(
    "corestore.object.before-write",
    "die before a checkpoint object reaches the backend (manifest unchanged)",
)
CP_MANIFEST_BEFORE_WRITE = register_crash_point(
    "corestore.manifest.before-write",
    "die with the object durable but MANIFEST.json not yet rewritten "
    "(an orphan object, swept by gc)",
)
CP_MANIFEST_AFTER_WRITE = register_crash_point(
    "corestore.manifest.after-write",
    "die right after the atomic MANIFEST.json replace (commit point)",
)

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1
_MAX_CHAIN_DEPTH = 64

KIND_FULL = "full"
KIND_DELTA = "delta"


@dataclass(frozen=True)
class CheckpointRecord:
    """Manifest entry describing one stored checkpoint object."""

    id: str
    kind: str
    step: int
    object_name: str
    nbytes: int
    sha256: str
    codec: str
    created: float
    base_id: Optional[str] = None
    extra: Dict = field(default_factory=dict)

    def to_json(self) -> Dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "step": self.step,
            "object_name": self.object_name,
            "nbytes": self.nbytes,
            "sha256": self.sha256,
            "codec": self.codec,
            "created": self.created,
            "base_id": self.base_id,
            "extra": self.extra,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "CheckpointRecord":
        try:
            return cls(
                id=str(data["id"]),
                kind=str(data["kind"]),
                step=int(data["step"]),
                object_name=str(data["object_name"]),
                nbytes=int(data["nbytes"]),
                sha256=str(data["sha256"]),
                codec=str(data["codec"]),
                created=float(data["created"]),
                base_id=data.get("base_id"),
                extra=dict(data.get("extra", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IntegrityError(f"malformed manifest record: {exc}") from exc


@dataclass(frozen=True)
class RetentionPolicy:
    """Which checkpoints :meth:`CheckpointStore.gc` keeps.

    ``keep_last`` retains the N records with the highest steps; ``keep_every``
    additionally retains records whose step is a multiple of that stride
    (long-horizon history).  Bases of retained deltas are always retained,
    transitively — GC never breaks a restore chain.
    """

    keep_last: Optional[int] = None
    keep_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.keep_last is not None and self.keep_last < 1:
            raise ConfigError(f"keep_last must be >= 1, got {self.keep_last}")
        if self.keep_every is not None and self.keep_every < 1:
            raise ConfigError(f"keep_every must be >= 1, got {self.keep_every}")


class CheckpointStore:
    """Durable, manifest-tracked checkpoint collection on a backend.

    Every read — full load, partial load, recovery probe — runs through the
    unified restore pipeline (:mod:`repro.core.restore`): the store builds a
    :class:`~repro.core.restore.QckptSource` per stored object and lets the
    planner decide between one SHA-verified whole-object fetch (full
    restores, non-ranged backends) and CRC-verified ranged fetches (tensor
    subsets).  ``restore_workers`` bounds the executor's fetch parallelism.

    Delta-chain read-ahead: restoring a chain fetches link 1, decodes it
    while links 2..(1+``readahead_links``) are already being prefetched on
    the executor's threads, and so on — transfer latency of later links
    hides behind decode/XOR-apply of earlier ones.  ``readahead_links=0``
    restores chains strictly sequentially (fetch, decode, fetch, ...).
    """

    def __init__(
        self,
        backend: StorageBackend,
        restore_workers: int = 4,
        readahead_links: int = 2,
        retry=None,
    ):
        if readahead_links < 0:
            raise ConfigError(
                f"readahead_links must be >= 0, got {readahead_links}"
            )
        self.backend = backend
        self.readahead_links = int(readahead_links)
        self._lock = threading.RLock()
        self._records: Dict[str, CheckpointRecord] = {}
        self._order: List[str] = []
        self._next_seq = 1
        # retry: an optional repro.reliability.RetryPolicy — restores retry
        # transient fetch failures and refetch blocks that fail verification.
        self._executor = RestoreExecutor(
            max_workers=restore_workers, retry=retry
        )
        self._load_manifest()

    # -- manifest ---------------------------------------------------------------

    def _load_manifest(self) -> None:
        if not self.backend.exists(MANIFEST_NAME):
            return
        try:
            manifest = json.loads(self.backend.read(MANIFEST_NAME).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IntegrityError(f"manifest is not valid JSON: {exc}") from exc
        if manifest.get("version") != MANIFEST_VERSION:
            raise IntegrityError(
                f"unsupported manifest version {manifest.get('version')!r}"
            )
        self._next_seq = int(manifest.get("next_seq", 1))
        for entry in manifest.get("records", []):
            record = CheckpointRecord.from_json(entry)
            self._records[record.id] = record
            self._order.append(record.id)

    def _write_manifest(self) -> None:
        manifest = {
            "version": MANIFEST_VERSION,
            "next_seq": self._next_seq,
            "records": [self._records[i].to_json() for i in self._order],
        }
        data = json.dumps(manifest, sort_keys=True, indent=1).encode("utf-8")
        crash_point(CP_MANIFEST_BEFORE_WRITE)
        self.backend.write(MANIFEST_NAME, data)
        crash_point(CP_MANIFEST_AFTER_WRITE)

    # -- identifiers ---------------------------------------------------------------

    def _allocate_id(self) -> str:
        checkpoint_id = f"ckpt-{self._next_seq:06d}"
        self._next_seq += 1
        return checkpoint_id

    # -- saving -----------------------------------------------------------------

    def save_full(
        self,
        snapshot: TrainingSnapshot,
        codec: str = "zlib-6",
        transforms: Optional[Dict[str, str]] = None,
        extra: Optional[Dict] = None,
    ) -> CheckpointRecord:
        """Persist a full checkpoint; returns its manifest record."""
        meta, tensors = snapshot.to_payload()
        data = pack_payload(
            {"kind": KIND_FULL, "snapshot": meta},
            tensors,
            codec=codec,
            transforms=transforms,
        )
        with self._lock:
            checkpoint_id = self._allocate_id()
            record = CheckpointRecord(
                id=checkpoint_id,
                kind=KIND_FULL,
                step=snapshot.step,
                object_name=f"{checkpoint_id}.qckpt",
                nbytes=len(data),
                sha256=sha256_hex(data),
                codec=codec,
                created=time.time(),
                extra=dict(extra or {}),
            )
            crash_point(CP_OBJECT_BEFORE_WRITE)
            self.backend.write(record.object_name, data)
            self._records[record.id] = record
            self._order.append(record.id)
            self._write_manifest()
        return record

    def save_delta(
        self,
        snapshot: TrainingSnapshot,
        base_id: str,
        base_tensors: Optional[Dict[str, np.ndarray]] = None,
        codec: str = "zlib-6",
        extra: Optional[Dict] = None,
    ) -> CheckpointRecord:
        """Persist a delta against ``base_id``.

        ``base_tensors`` avoids a re-read when the caller (the manager) kept
        the base's decoded tensors in memory; otherwise the base chain is
        loaded from the store.
        """
        with self._lock:
            if base_id not in self._records:
                raise CheckpointNotFoundError(f"base checkpoint {base_id!r} not found")
        if base_tensors is None:
            _, base_tensors = self.load_tensors(base_id)
        meta, tensors = snapshot.to_payload()
        delta_tensors, delta_meta = encode_delta(base_tensors, tensors)
        data = pack_payload(
            {
                "kind": KIND_DELTA,
                "base_id": base_id,
                "snapshot": meta,
                "delta": delta_meta,
            },
            delta_tensors,
            codec=codec,
        )
        with self._lock:
            checkpoint_id = self._allocate_id()
            record = CheckpointRecord(
                id=checkpoint_id,
                kind=KIND_DELTA,
                step=snapshot.step,
                object_name=f"{checkpoint_id}.qckpt",
                nbytes=len(data),
                sha256=sha256_hex(data),
                codec=codec,
                created=time.time(),
                base_id=base_id,
                extra=dict(extra or {}),
            )
            crash_point(CP_OBJECT_BEFORE_WRITE)
            self.backend.write(record.object_name, data)
            self._records[record.id] = record
            self._order.append(record.id)
            self._write_manifest()
        return record

    # -- loading -----------------------------------------------------------------

    def get(self, checkpoint_id: str) -> CheckpointRecord:
        """Manifest record for ``checkpoint_id``."""
        with self._lock:
            try:
                return self._records[checkpoint_id]
            except KeyError:
                raise CheckpointNotFoundError(
                    f"checkpoint {checkpoint_id!r} not found"
                ) from None

    def records(self) -> List[CheckpointRecord]:
        """All records in creation order."""
        with self._lock:
            return [self._records[i] for i in self._order]

    def latest(self) -> Optional[CheckpointRecord]:
        """Record with the highest step (ties: latest created)."""
        with self._lock:
            if not self._order:
                return None
            return max(
                (self._records[i] for i in self._order),
                key=lambda r: (r.step, r.created, r.id),
            )

    def restore_source(self, checkpoint_id: str) -> QckptSource:
        """Pipeline source over one stored checkpoint object."""
        return self._source_for(self.get(checkpoint_id))

    def _resolve_chain(self, checkpoint_id: str) -> List[CheckpointRecord]:
        """Records from ``checkpoint_id`` back to its full base (validated)."""
        chain: List[CheckpointRecord] = []
        seen: Set[str] = set()
        cursor: Optional[str] = checkpoint_id
        while cursor is not None:
            if cursor in seen or len(chain) >= _MAX_CHAIN_DEPTH:
                raise IntegrityError(
                    f"delta chain of {checkpoint_id!r} is cyclic or exceeds "
                    f"{_MAX_CHAIN_DEPTH} links"
                )
            seen.add(cursor)
            record = self.get(cursor)
            chain.append(record)
            cursor = record.base_id if record.kind == KIND_DELTA else None
        if chain[-1].kind != KIND_FULL:
            raise IntegrityError(
                f"delta chain of {checkpoint_id!r} does not end in a full checkpoint"
            )
        return chain

    def _source_for(self, record: CheckpointRecord) -> QckptSource:
        return QckptSource(
            self.backend, record.object_name, expected_sha256=record.sha256
        )

    def restore_plan(
        self, checkpoint_id: str, names: Optional[Sequence[str]] = None
    ) -> List[RestorePlan]:
        """Fetch plans for a restore, oldest chain link first (header-sized
        I/O only, no payload transfer).  CLI/bench introspection: what would
        this restore fetch?  Each plan carries its chain identity
        (``checkpoint_id``/``base_id``), so the list doubles as the
        read-ahead schedule."""
        chain = self._resolve_chain(checkpoint_id)
        wanted = None if names is None else tuple(dict.fromkeys(names))
        plans = []
        for record in reversed(chain):
            plan = self._source_for(record).plan(
                wanted, require_all=False, prefetch=False
            )
            plan.checkpoint_id = record.id
            plan.base_id = record.base_id
            plans.append(plan)
        return plans

    @staticmethod
    def _subset_delta(full_delta: Dict, wanted: Tuple[str, ...]) -> Dict:
        """The slice of one delta record that touches ``wanted`` tensors."""
        return {
            "entries": {
                name: entry
                for name, entry in full_delta["entries"].items()
                if name in wanted
            },
            "removed": [
                name
                for name in full_delta.get("removed", [])
                if name in wanted
            ],
        }

    def _restore_chain(
        self,
        chain: List[CheckpointRecord],
        wanted: Optional[Tuple[str, ...]],
    ) -> Tuple[Dict, Dict[str, np.ndarray]]:
        """Pipelined chain restore: decode link i, prefetch links i+1...

        Single-link chains take the legacy path (whole-object verify before
        header parse).  Multi-link chains plan every link upfront
        (header-sized I/O), then walk oldest-first with up to
        ``readahead_links`` links of transfer in flight ahead of the decode
        cursor — later links' transfer latency hides behind earlier links'
        decode and XOR-apply.  On any failure the outstanding read-ahead is
        cancelled, so no background I/O outlives the restore.
        """
        if len(chain) == 1:
            return restore_tensors(
                self._source_for(chain[0]),
                wanted,
                require_all=False,
                executor=self._executor,
            )
        ordered = list(reversed(chain))  # full base first
        sources = [self._source_for(record) for record in ordered]
        plans = []
        for record, source in zip(ordered, sources):
            plan = source.plan(wanted, require_all=False, prefetch=False)
            plan.checkpoint_id = record.id
            plan.base_id = record.base_id
            plans.append(plan)
        handles: List = [None] * len(ordered)
        meta: Dict = {}
        tensors: Dict[str, np.ndarray] = {}
        try:
            for i in range(len(ordered)):
                if self.readahead_links > 0:
                    ahead = min(len(ordered), i + 1 + self.readahead_links)
                    for j in range(i + 1, ahead):
                        if handles[j] is None:
                            handles[j] = self._executor.prefetch(
                                sources[j], plans[j]
                            )
                link_meta, link_tensors = self._executor.run(
                    sources[i], plans[i], prefetched=handles[i]
                )
                # Release the consumed link: the source caches the whole
                # container buffer on non-ranged paths, so keeping every
                # link alive would make peak memory O(chain) instead of
                # O(readahead window).
                handles[i] = None
                sources[i] = None
                plans[i] = None
                if i == 0:
                    meta, tensors = link_meta, link_tensors
                else:
                    delta = link_meta["delta"]
                    if wanted is not None:
                        delta = self._subset_delta(delta, wanted)
                    tensors = apply_delta(tensors, link_tensors, delta)
                    meta = link_meta
        finally:
            for handle in handles:
                if handle is not None:
                    handle.cancel()
        return meta, tensors

    def load_tensors(
        self, checkpoint_id: str
    ) -> Tuple[Dict, Dict[str, np.ndarray]]:
        """Resolve ``checkpoint_id`` (through its delta chain) to
        ``(snapshot_meta, tensors)`` via the restore pipeline, with
        read-ahead across chain links."""
        chain = self._resolve_chain(checkpoint_id)
        meta, tensors = self._restore_chain(chain, None)
        return meta["snapshot"], tensors

    def load_partial(
        self, checkpoint_id: str, names: Sequence[str]
    ) -> Tuple[Dict, Dict[str, np.ndarray]]:
        """Restore only the named tensors, transferring only their chunks.

        The point of partial restore: reading the O(kB) parameters out of a
        checkpoint whose 2^n statevector cache is orders of magnitude larger.
        Delta chains are resolved per tensor (XOR/append entries pull the
        tensor's base; untouched records are skipped), with the same
        read-ahead pipelining as full chain restores.

        Integrity note: the planner's ranged fetches cannot check the
        whole-file SHA-256; every transferred chunk is still CRC32-verified.
        Returns ``(snapshot_meta, {name: array})``.
        """
        wanted = tuple(dict.fromkeys(names))
        if not wanted:
            raise ConfigError("load_partial needs at least one tensor name")
        chain = self._resolve_chain(checkpoint_id)
        meta, tensors = self._restore_chain(chain, wanted)
        missing = [name for name in wanted if name not in tensors]
        if missing:
            raise SerializationError(
                f"tensors not present in {checkpoint_id!r}: {missing}"
            )
        return meta["snapshot"], {name: tensors[name] for name in wanted}

    def load(self, checkpoint_id: str) -> TrainingSnapshot:
        """Load and reconstruct the snapshot stored as ``checkpoint_id``."""
        meta, tensors = self.load_tensors(checkpoint_id)
        return TrainingSnapshot.from_payload(meta, tensors)

    def chain_length(self, checkpoint_id: str) -> int:
        """Number of objects a restore of ``checkpoint_id`` must read."""
        length = 0
        cursor: Optional[str] = checkpoint_id
        while cursor is not None:
            record = self.get(cursor)
            length += 1
            cursor = record.base_id if record.kind == KIND_DELTA else None
            if length > _MAX_CHAIN_DEPTH:
                raise IntegrityError(f"delta chain of {checkpoint_id!r} is cyclic")
        return length

    # -- verification ---------------------------------------------------------------

    def verify(self, checkpoint_id: str) -> Tuple[bool, str]:
        """Validate one checkpoint end to end (chain resolution included)."""
        try:
            self.load(checkpoint_id)
            return True, "ok"
        except ReproError as exc:
            return False, str(exc)

    def verify_all(self) -> Dict[str, Tuple[bool, str]]:
        """Validate every record; returns ``{id: (ok, detail)}``."""
        return {record.id: self.verify(record.id) for record in self.records()}

    def object_validator(self):
        """``(name, data) -> bool`` callback for storage-layer scrubbing.

        Checkpoint objects validate against their manifest SHA-256; the
        manifest itself validates by parsing.  Replicated backends use this
        to break divergence ties that byte-voting cannot resolve (see
        :meth:`repro.storage.replicated.ReplicatedBackend.scrub`).
        """
        with self._lock:
            expected = {
                record.object_name: record.sha256
                for record in self._records.values()
            }

        def validate(name: str, data: bytes) -> bool:
            if name == MANIFEST_NAME:
                try:
                    manifest = json.loads(data.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    return False
                return manifest.get("version") == MANIFEST_VERSION
            digest = expected.get(name)
            return digest is not None and sha256_hex(data) == digest

        return validate

    # -- deletion & retention ---------------------------------------------------------

    def delete(self, checkpoint_id: str) -> None:
        """Remove one checkpoint (manifest first, object second)."""
        with self._lock:
            record = self.get(checkpoint_id)
            dependents = [
                r.id
                for r in self._records.values()
                if r.base_id == checkpoint_id
            ]
            if dependents:
                raise ConfigError(
                    f"cannot delete {checkpoint_id!r}: deltas {dependents} "
                    "depend on it"
                )
            del self._records[checkpoint_id]
            self._order.remove(checkpoint_id)
            self._write_manifest()
            self.backend.delete(record.object_name)

    def _retained_ids(self, retention: RetentionPolicy) -> Set[str]:
        records = sorted(
            self.records(), key=lambda r: (r.step, r.created, r.id), reverse=True
        )
        keep: Set[str] = set()
        if retention.keep_last is not None:
            keep.update(r.id for r in records[: retention.keep_last])
        if retention.keep_every is not None:
            keep.update(
                r.id for r in records if r.step % retention.keep_every == 0
            )
        if retention.keep_last is None and retention.keep_every is None:
            keep.update(r.id for r in records)
        # Never break a chain: pull in bases transitively.
        frontier = list(keep)
        while frontier:
            record = self._records[frontier.pop()]
            if record.base_id and record.base_id not in keep:
                keep.add(record.base_id)
                frontier.append(record.base_id)
        return keep

    def gc(self, retention: RetentionPolicy) -> List[str]:
        """Apply retention and sweep orphan objects; returns deleted ids."""
        with self._lock:
            keep = self._retained_ids(retention)
            doomed = [i for i in self._order if i not in keep]
            doomed_names = [self._records[i].object_name for i in doomed]
            for checkpoint_id in doomed:
                del self._records[checkpoint_id]
            self._order = [i for i in self._order if i in keep]
            self._write_manifest()
            for name in doomed_names:
                self.backend.delete(name)
            # Sweep objects the manifest no longer (or never) references.
            referenced = {self._records[i].object_name for i in self._order}
            for name in self.backend.list("ckpt-"):
                if name not in referenced:
                    self.backend.delete(name)
                    if name not in doomed_names:
                        doomed_names.append(name)
        return doomed

    def total_bytes(self) -> int:
        """Sum of stored object sizes according to the manifest."""
        return sum(record.nbytes for record in self.records())
