"""Entanglement diagnostics for dense statevectors.

The checkpoint layer uses these to *predict* whether MPS compression will pay
off before committing to a transform: the bond dimension an exact MPS needs
at each cut is the Schmidt rank there, and the fidelity cost of capping the
bond at ``chi`` is the discarded Schmidt weight.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.errors import CircuitError, ConfigError
from repro.quantum.statevector import n_qubits_of


def schmidt_values(state: np.ndarray, cut: int) -> np.ndarray:
    """Schmidt coefficients of ``state`` across qubits ``[0, cut)`` vs rest.

    Returned in descending order; their squares sum to the squared norm.
    """
    n = n_qubits_of(state)
    if not 1 <= cut <= n - 1:
        raise ConfigError(f"cut must be in [1, {n - 1}], got {cut}")
    matrix = np.asarray(state).reshape(2**cut, 2 ** (n - cut))
    return np.linalg.svd(matrix, compute_uv=False)


def entanglement_entropy(state: np.ndarray, cut: int, base: float = 2.0) -> float:
    """Von Neumann entropy of the bipartition at ``cut`` (default: bits)."""
    squared = schmidt_values(state, cut) ** 2
    total = squared.sum()
    if total <= 0:
        raise CircuitError("entropy of a zero state is undefined")
    probabilities = squared / total
    positive = probabilities[probabilities > 1e-300]
    return float(-(positive * np.log(positive)).sum() / math.log(base))


def entropy_profile(state: np.ndarray, base: float = 2.0) -> List[float]:
    """Entropy at every internal cut ``1 .. n-1`` (the 'entanglement arc')."""
    n = n_qubits_of(state)
    return [entanglement_entropy(state, cut, base) for cut in range(1, n)]


def schmidt_rank(state: np.ndarray, cut: int, tol: float = 1e-12) -> int:
    """Number of Schmidt values above ``tol`` at ``cut``."""
    values = schmidt_values(state, cut)
    return int(np.count_nonzero(values > tol))


def required_bond_dimension(
    state: np.ndarray, fidelity_target: float = 1.0 - 1e-12
) -> int:
    """Smallest per-cut bond cap keeping every cut's kept weight above target.

    This is a *per-cut* criterion (each cut independently retains at least
    ``fidelity_target`` of its Schmidt weight); the end-to-end fidelity of a
    full truncation sweep is lower-bounded by
    ``1 - sum_cuts (discarded weight)``.
    """
    if not 0 < fidelity_target <= 1.0:
        raise ConfigError(
            f"fidelity_target must be in (0, 1], got {fidelity_target}"
        )
    n = n_qubits_of(state)
    worst = 1
    for cut in range(1, n):
        squared = schmidt_values(state, cut) ** 2
        squared = squared / squared.sum()
        kept = np.cumsum(squared)
        rank = int(np.searchsorted(kept, fidelity_target, side="left")) + 1
        worst = max(worst, min(rank, squared.shape[0]))
    return worst


def truncation_fidelity_lower_bound(discarded_weights: Sequence[float]) -> float:
    """Fidelity lower bound ``1 - sum(w_i)`` from per-cut discarded weights.

    Standard MPS truncation bound: the squared 2-norm error of a sweep is at
    most the sum of discarded squared Schmidt values over all cuts.
    """
    total = float(sum(discarded_weights))
    if total < 0:
        raise ConfigError("discarded weights must be non-negative")
    return max(0.0, 1.0 - total)
