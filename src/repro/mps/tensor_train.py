"""Matrix-product-state (tensor-train) representation of statevectors.

An ``n``-qubit statevector of ``2**n`` amplitudes is factored into ``n``
rank-3 *cores* ``A[k]`` of shape ``(D_{k-1}, 2, D_k)`` with ``D_0 = D_n = 1``:

    psi[s_0 .. s_{n-1}] = A[0][:, s_0, :] @ A[1][:, s_1, :] @ ... @ A[n-1]

The maximal internal *bond dimension* ``chi = max_k D_k`` is set by the
entanglement across each bipartition: product states have ``chi = 1``, a GHZ
state has ``chi = 2``, and a generic (Haar-random) state needs ``chi =
2**(n//2)`` — at which point the MPS is as large as the dense vector.

For the checkpoint layer this is a *structure-aware lossy compressor*: states
produced by shallow variational circuits carry little entanglement, so
truncating the bond dimension stores them in ``O(n * chi^2)`` memory with a
fidelity loss that is exactly the discarded Schmidt weight.  See
:mod:`repro.mps.transform` for the QCKPT integration.

Decomposition is the standard TT-SVD sweep; recompression is a
left-canonicalization (QR) sweep followed by a right-to-left SVD truncation
sweep, which is optimal for a given target bond dimension.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CircuitError, ConfigError

COMPLEX_DTYPE = np.complex128


def _validate_statevector(state: np.ndarray) -> int:
    state = np.asarray(state)
    if state.ndim != 1:
        raise CircuitError(f"statevector must be 1-D, got shape {state.shape}")
    n = int(round(math.log2(state.shape[0]))) if state.shape[0] else 0
    if state.shape[0] < 2 or 2**n != state.shape[0]:
        raise CircuitError(
            f"statevector length {state.shape[0]} is not a power of two >= 2"
        )
    return n


# Singular values below s_max * _RANK_EPS are numerical noise of the SVD, not
# entanglement; dropping them keeps exact decompositions at minimal rank
# (product states stay bond-1, GHZ stays bond-2) at a fidelity cost ~1e-28.
_RANK_EPS = 1e-14


def _split_rank(
    singular_values: np.ndarray,
    max_bond: Optional[int],
    tol: Optional[float],
) -> int:
    """Number of singular values to keep at one cut.

    ``tol`` is an absolute bound on the *total discarded weight*
    ``sqrt(sum of discarded s^2)`` at this cut; ``max_bond`` caps the rank.
    At least one value is always kept.
    """
    keep = singular_values.shape[0]
    if keep and singular_values[0] > 0:
        keep = int(
            np.count_nonzero(singular_values > singular_values[0] * _RANK_EPS)
        )
    if tol is not None and tol > 0:
        squared = singular_values**2
        # Largest suffix whose squared sum stays within tol^2.
        tail = np.cumsum(squared[::-1])[::-1]
        within = np.nonzero(tail <= tol * tol)[0]
        if within.size:
            keep = min(keep, int(within[0]))
    if max_bond is not None:
        keep = min(keep, max_bond)
    return max(keep, 1)


class MatrixProductState:
    """An open-boundary MPS over qubits (physical dimension 2).

    Instances are immutable by convention: all operations return new objects.
    ``cores[k]`` has shape ``(D_{k-1}, 2, D_k)`` with ``D_0 = D_n = 1``.
    """

    def __init__(self, cores: Sequence[np.ndarray]):
        if not cores:
            raise ConfigError("an MPS needs at least one core")
        checked: List[np.ndarray] = []
        previous = 1
        for index, core in enumerate(cores):
            core = np.asarray(core, dtype=COMPLEX_DTYPE)
            if core.ndim != 3 or core.shape[1] != 2:
                raise ConfigError(
                    f"core {index} has shape {core.shape}, expected (Dl, 2, Dr)"
                )
            if core.shape[0] != previous:
                raise ConfigError(
                    f"core {index} left bond {core.shape[0]} does not match "
                    f"previous right bond {previous}"
                )
            previous = core.shape[2]
            checked.append(core)
        if previous != 1:
            raise ConfigError(f"last core must have right bond 1, got {previous}")
        self.cores: Tuple[np.ndarray, ...] = tuple(checked)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_statevector(
        cls,
        state: np.ndarray,
        max_bond: Optional[int] = None,
        tol: Optional[float] = None,
    ) -> "MatrixProductState":
        """TT-SVD decomposition of ``state``, truncating each cut.

        With ``max_bond=None, tol=None`` the decomposition is numerically
        exact (machine precision).  ``tol`` bounds the discarded Schmidt
        weight per cut; ``max_bond`` caps every bond dimension.
        """
        n = _validate_statevector(state)
        if max_bond is not None and max_bond < 1:
            raise ConfigError(f"max_bond must be >= 1, got {max_bond}")
        if tol is not None and tol < 0:
            raise ConfigError(f"tol must be >= 0, got {tol}")
        remainder = np.asarray(state, dtype=COMPLEX_DTYPE).reshape(1, -1)
        cores: List[np.ndarray] = []
        rank = 1
        for _ in range(n - 1):
            matrix = remainder.reshape(rank * 2, -1)
            u, s, vh = np.linalg.svd(matrix, full_matrices=False)
            keep = _split_rank(s, max_bond, tol)
            cores.append(u[:, :keep].reshape(rank, 2, keep))
            remainder = s[:keep, None] * vh[:keep]
            rank = keep
        cores.append(remainder.reshape(rank, 2, 1))
        return cls(cores)

    @classmethod
    def product_state(cls, amplitudes: Sequence[np.ndarray]) -> "MatrixProductState":
        """Bond-1 MPS of a tensor product of single-qubit states."""
        cores = []
        for qubit in amplitudes:
            qubit = np.asarray(qubit, dtype=COMPLEX_DTYPE)
            if qubit.shape != (2,):
                raise ConfigError(
                    f"product_state factors must have shape (2,), got {qubit.shape}"
                )
            cores.append(qubit.reshape(1, 2, 1))
        return cls(cores)

    @classmethod
    def zero_state(cls, n_qubits: int) -> "MatrixProductState":
        """``|0...0>`` as a bond-1 MPS."""
        if n_qubits < 1:
            raise ConfigError(f"n_qubits must be >= 1, got {n_qubits}")
        return cls.product_state([np.array([1.0, 0.0])] * n_qubits)

    # -- basic queries ----------------------------------------------------------

    @property
    def n_qubits(self) -> int:
        return len(self.cores)

    @property
    def bond_dims(self) -> Tuple[int, ...]:
        """Internal bond dimensions ``(D_1, ..., D_{n-1})``."""
        return tuple(core.shape[2] for core in self.cores[:-1])

    @property
    def max_bond(self) -> int:
        """Largest internal bond dimension (1 for a single-qubit MPS)."""
        dims = self.bond_dims
        return max(dims) if dims else 1

    def nbytes(self) -> int:
        """Total bytes held by the cores."""
        return int(sum(core.nbytes for core in self.cores))

    def __repr__(self) -> str:
        return (
            f"MatrixProductState(n_qubits={self.n_qubits}, "
            f"max_bond={self.max_bond}, nbytes={self.nbytes()})"
        )

    # -- contraction ---------------------------------------------------------------

    def to_statevector(self) -> np.ndarray:
        """Contract the cores into a dense ``2**n`` statevector."""
        dense = self.cores[0][0]  # (2, D_1)
        for core in self.cores[1:]:
            dense = np.tensordot(dense, core, axes=([-1], [0]))
        return np.ascontiguousarray(dense).reshape(-1)

    def overlap(self, other: "MatrixProductState") -> complex:
        """Inner product ``<self|other>`` via transfer-matrix contraction."""
        if other.n_qubits != self.n_qubits:
            raise ConfigError(
                f"overlap of {self.n_qubits}- and {other.n_qubits}-qubit MPS"
            )
        env = np.ones((1, 1), dtype=COMPLEX_DTYPE)
        for mine, theirs in zip(self.cores, other.cores):
            # env[a, b] -> sum_{a, s, b} conj(A[a, s, a']) env[a, b] B[b, s, b']
            grown = np.tensordot(env, theirs, axes=([1], [0]))  # (a, s, b')
            env = np.tensordot(mine.conj(), grown, axes=([0, 1], [0, 1]))
        return complex(env[0, 0])

    def norm(self) -> float:
        """2-norm of the encoded vector."""
        return float(math.sqrt(max(self.overlap(self).real, 0.0)))

    def normalize(self) -> "MatrixProductState":
        """Return a unit-norm copy (scales the last core)."""
        norm = self.norm()
        if norm == 0:
            raise CircuitError("cannot normalize a zero MPS")
        cores = list(self.cores)
        cores[-1] = cores[-1] / norm
        return MatrixProductState(cores)

    def fidelity(self, other: "MatrixProductState") -> float:
        """``|<self|other>|^2`` normalized by both norms."""
        denominator = self.norm() * other.norm()
        if denominator == 0:
            raise CircuitError("fidelity of a zero MPS is undefined")
        return float(abs(self.overlap(other)) ** 2 / denominator**2)

    # -- recompression ----------------------------------------------------------

    def canonicalize(self) -> "MatrixProductState":
        """Left-canonical form via a QR sweep (norm moves to the last core)."""
        cores = [core.copy() for core in self.cores]
        for site in range(len(cores) - 1):
            left, phys, right = cores[site].shape
            q, r = np.linalg.qr(cores[site].reshape(left * phys, right))
            rank = q.shape[1]
            cores[site] = q.reshape(left, phys, rank)
            cores[site + 1] = np.tensordot(r, cores[site + 1], axes=([1], [0]))
        return MatrixProductState(cores)

    def truncate(
        self,
        max_bond: Optional[int] = None,
        tol: Optional[float] = None,
    ) -> "MatrixProductState":
        """Optimally recompress to ``max_bond`` / ``tol``.

        Left-canonicalizes, then sweeps right-to-left with per-cut SVD
        truncation.  For a left-canonical MPS this sweep discards exactly the
        smallest Schmidt weights at every cut.
        """
        if max_bond is not None and max_bond < 1:
            raise ConfigError(f"max_bond must be >= 1, got {max_bond}")
        if tol is not None and tol < 0:
            raise ConfigError(f"tol must be >= 0, got {tol}")
        cores = [core.copy() for core in self.canonicalize().cores]
        for site in range(len(cores) - 1, 0, -1):
            left, phys, right = cores[site].shape
            u, s, vh = np.linalg.svd(
                cores[site].reshape(left, phys * right), full_matrices=False
            )
            keep = _split_rank(s, max_bond, tol)
            cores[site] = vh[:keep].reshape(keep, phys, right)
            absorbed = u[:, :keep] * s[:keep]
            cores[site - 1] = np.tensordot(
                cores[site - 1], absorbed, axes=([2], [0])
            )
        return MatrixProductState(cores)

    # -- Schmidt data -----------------------------------------------------------

    def schmidt_values(self, cut: int) -> np.ndarray:
        """Schmidt coefficients across the bipartition after qubit ``cut-1``.

        ``cut`` ranges over ``1 .. n_qubits - 1``.  Computed by
        left-canonicalizing up to the cut and taking the SVD of the bond
        matrix, so cost is polynomial in the bond dimension.
        """
        if not 1 <= cut <= self.n_qubits - 1:
            raise ConfigError(
                f"cut must be in [1, {self.n_qubits - 1}], got {cut}"
            )
        canonical = self.canonicalize()
        # In left-canonical form the Schmidt values at cut k are the singular
        # values of the matricized remainder; sweep from the right to build
        # the right-canonical environment at the cut.
        cores = [core.copy() for core in canonical.cores]
        for site in range(len(cores) - 1, cut, -1):
            left, phys, right = cores[site].shape
            u, s, vh = np.linalg.svd(
                cores[site].reshape(left, phys * right), full_matrices=False
            )
            cores[site] = vh.reshape(s.shape[0], phys, right)
            cores[site - 1] = np.tensordot(
                cores[site - 1], u * s, axes=([2], [0])
            )
        left, phys, right = cores[cut].shape
        singular = np.linalg.svd(
            cores[cut].reshape(left, phys * right), compute_uv=False
        )
        return singular

    def entanglement_entropy(self, cut: int, base: float = 2.0) -> float:
        """Von Neumann entropy of the bipartition at ``cut`` (default: bits)."""
        squared = self.schmidt_values(cut) ** 2
        total = squared.sum()
        if total <= 0:
            raise CircuitError("entropy of a zero MPS is undefined")
        probabilities = squared / total
        positive = probabilities[probabilities > 1e-300]
        return float(-(positive * np.log(positive)).sum() / math.log(base))

    # -- serialization ------------------------------------------------------------

    def to_flat(self) -> Tuple[np.ndarray, List[List[int]]]:
        """Concatenate all cores into one 1-D complex array plus shapes."""
        flat = np.concatenate([core.reshape(-1) for core in self.cores])
        shapes = [list(core.shape) for core in self.cores]
        return flat, shapes

    @classmethod
    def from_flat(
        cls, flat: np.ndarray, shapes: Sequence[Sequence[int]]
    ) -> "MatrixProductState":
        """Inverse of :meth:`to_flat`."""
        flat = np.asarray(flat, dtype=COMPLEX_DTYPE)
        cores = []
        offset = 0
        for shape in shapes:
            shape = tuple(int(d) for d in shape)
            if len(shape) != 3:
                raise ConfigError(f"core shape {shape} is not rank 3")
            size = int(np.prod(shape))
            chunk = flat[offset : offset + size]
            if chunk.shape[0] != size:
                raise ConfigError(
                    "flat MPS buffer is shorter than its shape directory"
                )
            cores.append(chunk.reshape(shape))
            offset += size
        if offset != flat.shape[0]:
            raise ConfigError(
                f"flat MPS buffer has {flat.shape[0] - offset} trailing values"
            )
        return cls(cores)


def mps_nbytes(n_qubits: int, max_bond: int) -> int:
    """Worst-case MPS bytes for ``n_qubits`` at bond cap ``max_bond``.

    Bonds grow as ``2, 4, 8, ...`` from both ends before saturating at
    ``max_bond``; this mirrors what :meth:`MatrixProductState.from_statevector`
    produces for a generic state under a bond cap.
    """
    if n_qubits < 1:
        raise ConfigError(f"n_qubits must be >= 1, got {n_qubits}")
    if max_bond < 1:
        raise ConfigError(f"max_bond must be >= 1, got {max_bond}")
    total = 0
    left = 1
    for site in range(n_qubits):
        right = min(2 ** (site + 1), 2 ** (n_qubits - site - 1), max_bond)
        total += left * 2 * right
        left = right
    return total * np.dtype(COMPLEX_DTYPE).itemsize
