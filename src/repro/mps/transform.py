"""QCKPT tensor transform backed by MPS truncation.

``MPSTransform`` plugs the tensor-train compressor into the checkpoint
format: on encode the statevector is TT-SVD-factored with a bond cap and the
flattened cores are stored (plus a JSON shape directory); on decode the cores
are contracted back to a dense, renormalized statevector.

Size behaviour (the reason this transform exists):

* product / shallow-circuit states — ``O(n * chi^2)`` bytes, orders of
  magnitude below the dense ``O(2^n)``;
* Haar-random states — bonds saturate the cap, fidelity collapses; the
  transform is *not* a general-purpose compressor (Tab. 5 quantifies this).

Four bond caps are pre-registered (``mps-8/16/32/64``) plus ``mps-exact``
(no cap: numerically exact to ~1e-14, still lossy in the bitwise sense).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.codecs import TensorTransform, register_transform
from repro.errors import SerializationError
from repro.mps.tensor_train import MatrixProductState

_DEFAULT_CAPS = (8, 16, 32, 64)


class MPSTransform(TensorTransform):
    """Statevector → flattened truncated MPS cores (lossy).

    Parameters
    ----------
    max_bond:
        Bond-dimension cap applied at every cut; ``None`` disables the cap
        (numerically exact decomposition).
    tol:
        Optional per-cut discarded-weight tolerance passed to the TT-SVD.
    """

    lossy = True

    def __init__(self, max_bond: Optional[int] = None, tol: Optional[float] = None):
        self.max_bond = max_bond
        self.tol = tol
        if max_bond is None:
            self.name = "mps-exact"
        else:
            self.name = f"mps-{int(max_bond)}"

    def encode(self, array: np.ndarray) -> Tuple[np.ndarray, Dict]:
        if array.dtype != np.complex128 or array.ndim != 1:
            raise SerializationError(
                f"transform {self.name!r} requires a 1-D complex128 array, "
                f"got {array.dtype} with shape {array.shape}"
            )
        size = array.shape[0]
        if size < 2 or size & (size - 1):
            raise SerializationError(
                f"transform {self.name!r} requires a power-of-two length >= 2, "
                f"got {size}"
            )
        mps = MatrixProductState.from_statevector(
            array, max_bond=self.max_bond, tol=self.tol
        )
        flat, shapes = mps.to_flat()
        return flat, {"shapes": shapes, "n_amplitudes": size}

    def decode(self, array: np.ndarray, meta: Dict) -> np.ndarray:
        try:
            shapes = meta["shapes"]
            n_amplitudes = int(meta["n_amplitudes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed MPS metadata: {exc}") from exc
        mps = MatrixProductState.from_flat(
            np.asarray(array, dtype=np.complex128), shapes
        )
        state = mps.to_statevector()
        if state.shape[0] != n_amplitudes:
            raise SerializationError(
                f"MPS decodes to {state.shape[0]} amplitudes, "
                f"metadata says {n_amplitudes}"
            )
        norm = np.linalg.norm(state)
        if norm > 0:
            state = state / norm
        return state


for _cap in _DEFAULT_CAPS:
    register_transform(MPSTransform(max_bond=_cap), replace=True)
register_transform(MPSTransform(max_bond=None), replace=True)
