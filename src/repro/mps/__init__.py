"""Matrix-product-state compression for statevector checkpoints.

Public surface:

* :class:`~repro.mps.tensor_train.MatrixProductState` — TT-SVD factoring,
  contraction, optimal recompression, Schmidt diagnostics;
* :class:`~repro.mps.transform.MPSTransform` — the QCKPT tensor transform
  (instances ``mps-8/16/32/64`` and ``mps-exact`` are pre-registered);
* :mod:`~repro.mps.entanglement` — dense-state entanglement diagnostics used
  to predict compressibility before checkpointing.
"""

from repro.mps.entanglement import (
    entanglement_entropy,
    entropy_profile,
    required_bond_dimension,
    schmidt_rank,
    schmidt_values,
    truncation_fidelity_lower_bound,
)
from repro.mps.tensor_train import MatrixProductState, mps_nbytes
from repro.mps.transform import MPSTransform

__all__ = [
    "MatrixProductState",
    "MPSTransform",
    "mps_nbytes",
    "schmidt_values",
    "schmidt_rank",
    "entanglement_entropy",
    "entropy_profile",
    "required_bond_dimension",
    "truncation_fidelity_lower_bound",
]
