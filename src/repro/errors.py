"""Exception hierarchy for the repro (QCkpt) library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can install a single ``except ReproError``
boundary.  Checkpoint-related failures form their own sub-tree under
:class:`CheckpointError` because storage code frequently needs to distinguish
"the data is damaged" (:class:`IntegrityError`) from "the data is absent"
(:class:`CheckpointNotFoundError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class CircuitError(ReproError):
    """A circuit was constructed or used incorrectly."""


class ObservableError(ReproError):
    """An observable was constructed or used incorrectly."""


class GradientError(ReproError):
    """A gradient could not be computed for the requested circuit."""


class StorageError(ReproError):
    """A storage backend operation failed.

    Base ``StorageError`` means *persistent*: the operation will keep failing
    if repeated unchanged (object absent, invalid name, namespace exhausted).
    Failures worth retrying raise :class:`TransientStorageError` instead.
    """


class TransientStorageError(StorageError):
    """A storage operation failed in a way a retry may fix.

    The transient/persistent split is the contract the reliability layer is
    built on: :class:`~repro.reliability.RetryPolicy` retries these (injected
    faults, throttling windows, lossy transports) and treats every other
    :class:`StorageError` — missing objects, invalid names — as a final
    answer.
    """


class RetryExhaustedError(StorageError):
    """A retried operation still failed after its policy's final attempt.

    Chains from the last underlying error (``__cause__``), so callers keep
    the root failure while a single ``except StorageError`` still works.
    """


class DeadlineExceeded(ReproError):
    """A :class:`~repro.reliability.Deadline` budget ran out mid-operation."""


class CircuitOpenError(ReproError):
    """A :class:`~repro.reliability.CircuitBreaker` is refusing calls.

    (The breaker kind of circuit — :class:`CircuitError` is the quantum one.)
    Raised without touching the backend while the breaker is open; transient
    by nature, since the breaker re-probes after its reset timeout.
    """


class TransportError(ReproError):
    """A control-plane transport failed (framing, connection, or auth)."""


class CheckpointError(ReproError):
    """Base class for checkpoint-related failures."""


class SerializationError(CheckpointError):
    """A snapshot could not be encoded to or decoded from bytes."""


class IntegrityError(CheckpointError):
    """Stored checkpoint data failed a checksum or structural validation."""


class CheckpointNotFoundError(CheckpointError):
    """No checkpoint matching the request exists in the store."""


class IncompatibleCheckpointError(CheckpointError):
    """A checkpoint exists but cannot be applied to the current trainer.

    Raised, for example, when a snapshot was produced by a different ansatz
    (circuit fingerprint mismatch) or a different optimizer type.
    """
