"""Pauli-string observables and Hamiltonians.

A :class:`PauliString` is a real coefficient times a tensor product of single
qubit Pauli operators on named wires (identity elsewhere).  A
:class:`Hamiltonian` is a list of Pauli strings.  Expectation values are
computed exactly against statevectors; shot-based estimation lives in
:mod:`repro.quantum.sampling`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ObservableError
from repro.quantum import gates as _gates
from repro.quantum import kernels as _kernels
from repro.quantum.statevector import apply_gate, n_qubits_of

_PAULI_MATRICES = {
    "X": _gates.PAULI_X,
    "Y": _gates.PAULI_Y,
    "Z": _gates.PAULI_Z,
}

@lru_cache(maxsize=256)
def _diagonal_signs(paulis: Tuple[Tuple[int, str], ...], n: int) -> np.ndarray:
    """±1 eigenvalue of an all-Z Pauli word per computational basis state.

    Stored as int8 (8x smaller than float64) and dropped by
    :func:`repro.quantum.kernels.clear_caches`.
    """
    indices = np.arange(1 << n)
    signs = np.ones(1 << n, dtype=np.int8)
    for wire, _letter in paulis:
        signs = signs * (1 - 2 * ((indices >> (n - 1 - wire)) & 1)).astype(np.int8)
    signs.setflags(write=False)
    return signs


_kernels.register_cache_clearer(_diagonal_signs.cache_clear)


# Single-qubit Pauli multiplication table: (a, b) -> (phase, product letter).
_PAULI_PRODUCT: Dict[Tuple[str, str], Tuple[complex, str]] = {
    ("X", "X"): (1, "I"),
    ("Y", "Y"): (1, "I"),
    ("Z", "Z"): (1, "I"),
    ("X", "Y"): (1j, "Z"),
    ("Y", "X"): (-1j, "Z"),
    ("Y", "Z"): (1j, "X"),
    ("Z", "Y"): (-1j, "X"),
    ("Z", "X"): (1j, "Y"),
    ("X", "Z"): (-1j, "Y"),
}


@dataclass(frozen=True)
class PauliString:
    """``coeff * P_{w1} ⊗ P_{w2} ⊗ ...`` with identity on unlisted wires."""

    coeff: float = 1.0
    paulis: Tuple[Tuple[int, str], ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        normalized = []
        for wire, letter in self.paulis:
            wire = int(wire)
            letter = letter.upper()
            if letter == "I":
                continue
            if letter not in _PAULI_MATRICES:
                raise ObservableError(f"invalid Pauli letter {letter!r}")
            if wire < 0:
                raise ObservableError(f"invalid wire {wire}")
            if wire in seen:
                raise ObservableError(f"duplicate wire {wire} in Pauli string")
            seen.add(wire)
            normalized.append((wire, letter))
        normalized.sort()
        object.__setattr__(self, "paulis", tuple(normalized))
        object.__setattr__(self, "coeff", float(self.coeff))

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_label(cls, label: str, coeff: float = 1.0) -> "PauliString":
        """Parse labels like ``"X0 Y2 Z5"`` (identity: empty string or "I")."""
        paulis = []
        for token in label.split():
            if token.upper() == "I":
                continue
            letter, wire_text = token[0], token[1:]
            try:
                paulis.append((int(wire_text), letter))
            except ValueError:
                raise ObservableError(f"malformed Pauli token {token!r}") from None
        return cls(coeff, tuple(paulis))

    @classmethod
    def identity(cls, coeff: float = 1.0) -> "PauliString":
        """The identity observable with weight ``coeff``."""
        return cls(coeff, ())

    # -- algebra ----------------------------------------------------------------

    def __mul__(self, scalar: float) -> "PauliString":
        return PauliString(self.coeff * float(scalar), self.paulis)

    __rmul__ = __mul__

    def __neg__(self) -> "PauliString":
        return self * -1.0

    def __add__(self, other: "PauliString") -> "Hamiltonian":
        if not isinstance(other, PauliString):
            return NotImplemented
        return Hamiltonian([self, other]).simplify()

    def compose(self, other: "PauliString") -> "PauliString":
        """Operator product ``self @ other`` with Pauli phase tracking.

        The result must have a real overall phase (products like ``X@Y = iZ``
        with an imaginary phase cannot be represented as a real-coefficient
        observable and raise :class:`ObservableError`).
        """
        phase: complex = 1.0
        letters: Dict[int, str] = dict(self.paulis)
        for wire, letter in other.paulis:
            if wire not in letters:
                letters[wire] = letter
                continue
            extra_phase, product = _PAULI_PRODUCT.get(
                (letters[wire], letter), (1.0, "I")
            )
            phase *= extra_phase
            if product == "I":
                del letters[wire]
            else:
                letters[wire] = product
        total = phase * self.coeff * other.coeff
        if abs(total.imag) > 1e-12:
            raise ObservableError(
                "Pauli product has imaginary coefficient; not an observable"
            )
        return PauliString(total.real, tuple(letters.items()))

    # -- evaluation ---------------------------------------------------------------

    @property
    def wires(self) -> Tuple[int, ...]:
        """Wires on which this string acts non-trivially."""
        return tuple(w for w, _ in self.paulis)

    @property
    def is_identity(self) -> bool:
        return not self.paulis

    def max_wire(self) -> int:
        """Largest wire index used (-1 for the identity)."""
        return max((w for w, _ in self.paulis), default=-1)

    def apply(self, state: np.ndarray) -> np.ndarray:
        """Return ``coeff * P |state>``."""
        n = n_qubits_of(state)
        if self.max_wire() >= n:
            raise ObservableError(
                f"observable uses wire {self.max_wire()}, state has {n} qubits"
            )
        out = state
        for wire, letter in self.paulis:
            out = apply_gate(out, _PAULI_MATRICES[letter], (wire,), n)
        if out is state:
            out = state.copy()
        return self.coeff * out

    def expectation(self, state: np.ndarray) -> float:
        """Exact ``<state| coeff * P |state>`` (real by construction)."""
        if self.is_identity:
            return self.coeff * float(np.vdot(state, state).real)
        return float(np.vdot(state, self.apply(state)).real)

    def _batch_kind(self) -> str:
        """Fast-path classification for batched expectations."""
        letters = [letter for _, letter in self.paulis]
        if not letters:
            return "identity"
        if all(letter == "Z" for letter in letters):
            return "diagonal"
        if len(letters) == 1 and letters[0] == "X":
            return "single-x"
        return "general"

    def expectation_batch(
        self,
        states: np.ndarray,
        bra: Optional[np.ndarray] = None,
        columns: bool = False,
        probs: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Expectation against every state of a batch.

        ``states`` is row-major ``(B, 2**n)`` by default, or amplitude-major
        ``(2**n, B)`` when ``columns`` is true (the layout the batched
        execution engine produces).  All-Z words reduce against the Born
        probabilities (optionally shared via ``probs``), single-X words reduce
        the amplitude-pair halves directly, and general words apply the Pauli
        once across the whole batch with the in-place kernels.  ``bra``
        optionally supplies ``states.conj()`` so Hamiltonians conjugate the
        batch once.
        """
        states = np.asarray(states)
        if states.ndim != 2:
            raise ObservableError(
                f"expected a 2-D state batch, got shape {states.shape}"
            )
        spec = "ib,ib->b" if columns else "bi,bi->b"
        if self.is_identity:
            if bra is None:
                bra = states.conj()
            return self.coeff * np.einsum(spec, bra, states).real
        dim = states.shape[0] if columns else states.shape[1]
        n = int(round(np.log2(dim))) if dim else 0
        if 2**n != dim:
            raise ObservableError(f"batch dimension {dim} is not a power of two")
        if self.max_wire() >= n:
            raise ObservableError(
                f"observable uses wire {self.max_wire()}, state has {n} qubits"
            )
        kind = self._batch_kind()
        if kind == "diagonal":
            if probs is None:
                probs = states.real**2 + states.imag**2
            signs = _diagonal_signs(self.paulis, n)
            if columns:
                return self.coeff * np.einsum("i,ib->b", signs, probs)
            return self.coeff * np.einsum("bi,i->b", probs, signs)
        if kind == "single-x":
            # <X_w> = 2 Re sum conj(upper) * lower over the wire's pair halves.
            wire = self.paulis[0][0]
            rest = 1 << (n - wire - 1)
            if columns:
                psi = states.reshape(1 << wire, 2, rest, states.shape[1])
                upper, lower = psi[:, 0], psi[:, 1]
                overlap = np.einsum("xyb,xyb->b", upper.conj(), lower)
            else:
                psi = states.reshape(-1, 1 << wire, 2, rest)
                upper, lower = psi[:, :, 0, :], psi[:, :, 1, :]
                overlap = np.einsum("bxy,bxy->b", upper.conj(), lower)
            return self.coeff * 2.0 * overlap.real
        if bra is None:
            bra = states.conj()
        tail = states.shape[1] if columns else 1
        applied = states.copy()
        for wire, letter in self.paulis:
            _kernels.apply_matrix_inplace(
                applied, _PAULI_MATRICES[letter], (wire,), n, tail=tail
            )
        return self.coeff * np.einsum(spec, bra, applied).real

    def matrix(self, n_qubits: int) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix (small systems only)."""
        if self.max_wire() >= n_qubits:
            raise ObservableError(
                f"observable uses wire {self.max_wire()}, asked for {n_qubits} qubits"
            )
        letters = dict(self.paulis)
        out = np.array([[self.coeff]], dtype=np.complex128)
        for wire in range(n_qubits):
            factor = _PAULI_MATRICES.get(letters.get(wire, "I"), _gates.I2)
            out = np.kron(out, factor)
        return out

    def commutes_qubitwise(self, other: "PauliString") -> bool:
        """Qubit-wise commutation: on every shared wire the letters agree."""
        mine = dict(self.paulis)
        for wire, letter in other.paulis:
            if wire in mine and mine[wire] != letter:
                return False
        return True

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> dict:
        return {"coeff": self.coeff, "paulis": [[w, p] for w, p in self.paulis]}

    @classmethod
    def from_json(cls, data: dict) -> "PauliString":
        try:
            return cls(
                float(data["coeff"]),
                tuple((int(w), str(p)) for w, p in data["paulis"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservableError(f"malformed PauliString JSON: {exc}") from exc

    def label(self) -> str:
        """Human-readable label, e.g. ``"X0 Z3"`` (identity: ``"I"``)."""
        if not self.paulis:
            return "I"
        return " ".join(f"{p}{w}" for w, p in self.paulis)


class Projector:
    """Rank-one observable ``coeff * |target><target|``.

    Its expectation against ``|psi>`` is the fidelity ``coeff * |<t|psi>|^2``,
    which is the loss used when learning a target state or unitary.  Supports
    the same ``apply``/``expectation`` protocol as :class:`PauliString`, so
    adjoint differentiation works unchanged.
    """

    def __init__(self, target: np.ndarray, coeff: float = 1.0):
        target = np.asarray(target, dtype=np.complex128)
        norm = np.linalg.norm(target)
        if norm == 0:
            raise ObservableError("projector target must be non-zero")
        self.target = target / norm
        self.coeff = float(coeff)

    def apply(self, state: np.ndarray) -> np.ndarray:
        """Return ``coeff * |t><t|state>``."""
        if state.shape != self.target.shape:
            raise ObservableError(
                f"state shape {state.shape} != target shape {self.target.shape}"
            )
        return self.coeff * np.vdot(self.target, state) * self.target

    def expectation(self, state: np.ndarray) -> float:
        """``coeff * |<target|state>|^2``."""
        if state.shape != self.target.shape:
            raise ObservableError(
                f"state shape {state.shape} != target shape {self.target.shape}"
            )
        return self.coeff * float(abs(np.vdot(self.target, state)) ** 2)

    def expectation_batch(
        self, states: np.ndarray, columns: bool = False
    ) -> np.ndarray:
        """Fidelity with the target for every state of a batch.

        ``states`` is ``(B, 2**n)`` row-major, or ``(2**n, B)`` when
        ``columns`` is true.
        """
        states = np.asarray(states)
        dim = states.shape[0] if columns else (states.shape[1] if states.ndim == 2 else -1)
        if states.ndim != 2 or dim != self.target.shape[0]:
            raise ObservableError(
                f"state batch shape {states.shape} incompatible with target "
                f"shape {self.target.shape}"
            )
        overlaps = self.target.conj() @ states if columns else states @ self.target.conj()
        return self.coeff * np.abs(overlaps) ** 2


class Hamiltonian:
    """A real linear combination of Pauli strings."""

    def __init__(self, terms: Iterable[PauliString] = ()):
        self.terms: List[PauliString] = list(terms)
        for term in self.terms:
            if not isinstance(term, PauliString):
                raise ObservableError(f"not a PauliString: {term!r}")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_terms(cls, terms: Mapping[str, float]) -> "Hamiltonian":
        """Build from a ``{label: coefficient}`` mapping."""
        return cls(
            PauliString.from_label(label, coeff) for label, coeff in terms.items()
        )

    @classmethod
    def transverse_field_ising(
        cls, n_qubits: int, coupling: float = 1.0, field: float = 1.0
    ) -> "Hamiltonian":
        """Open-chain TFIM: ``-J sum Z_i Z_{i+1} - h sum X_i``."""
        terms = [
            PauliString(-coupling, ((i, "Z"), (i + 1, "Z")))
            for i in range(n_qubits - 1)
        ]
        terms += [PauliString(-field, ((i, "X"),)) for i in range(n_qubits)]
        return cls(terms)

    @classmethod
    def heisenberg_chain(
        cls, n_qubits: int, coupling: float = 1.0
    ) -> "Hamiltonian":
        """Open-chain Heisenberg model: ``J sum (XX + YY + ZZ)``."""
        terms = []
        for i in range(n_qubits - 1):
            for letter in "XYZ":
                terms.append(
                    PauliString(coupling, ((i, letter), (i + 1, letter)))
                )
        return cls(terms)

    @classmethod
    def h2_minimal(cls) -> "Hamiltonian":
        """Two-qubit reduced H2 Hamiltonian at R = 0.735 Å (STO-3G).

        Standard textbook coefficients; exact ground energy is approximately
        -1.85727 Ha, which VQE examples use as the convergence target.
        """
        return cls.from_terms(
            {
                "I": -1.052373245772859,
                "Z0": 0.39793742484318045,
                "Z1": -0.39793742484318045,
                "Z0 Z1": -0.01128010425623538,
                "X0 X1": 0.18093119978423156,
            }
        )

    # -- algebra ----------------------------------------------------------------

    def __add__(self, other: "Hamiltonian | PauliString") -> "Hamiltonian":
        if isinstance(other, PauliString):
            other = Hamiltonian([other])
        if not isinstance(other, Hamiltonian):
            return NotImplemented
        return Hamiltonian(self.terms + other.terms)

    def __mul__(self, scalar: float) -> "Hamiltonian":
        return Hamiltonian(term * float(scalar) for term in self.terms)

    __rmul__ = __mul__

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self):
        return iter(self.terms)

    def simplify(self, atol: float = 0.0) -> "Hamiltonian":
        """Merge duplicate Pauli patterns and drop |coeff| <= atol terms."""
        merged: Dict[Tuple[Tuple[int, str], ...], float] = {}
        for term in self.terms:
            merged[term.paulis] = merged.get(term.paulis, 0.0) + term.coeff
        terms = [
            PauliString(coeff, paulis)
            for paulis, coeff in merged.items()
            if abs(coeff) > atol
        ]
        return Hamiltonian(terms)

    # -- evaluation ---------------------------------------------------------------

    def max_wire(self) -> int:
        return max((term.max_wire() for term in self.terms), default=-1)

    def expectation(self, state: np.ndarray) -> float:
        """Exact expectation value against a statevector."""
        return float(sum(term.expectation(state) for term in self.terms))

    def expectation_batch(
        self, states: np.ndarray, columns: bool = False
    ) -> np.ndarray:
        """Expectation against every state of a batch (see PauliString).

        Shares the Born probabilities across all-Z terms and the conjugated
        batch across general terms, so each is computed at most once.
        """
        states = np.asarray(states)
        kinds = [term._batch_kind() for term in self.terms]
        probs = (
            states.real**2 + states.imag**2 if "diagonal" in kinds else None
        )
        bra = (
            states.conj()
            if any(k in ("general", "identity") for k in kinds)
            else None
        )
        total = np.zeros(states.shape[1] if columns else states.shape[0])
        for term in self.terms:
            total += term.expectation_batch(
                states, bra, columns=columns, probs=probs
            )
        return total

    def matrix(self, n_qubits: int) -> np.ndarray:
        """Dense matrix of the full Hamiltonian (small systems only)."""
        dim = 2**n_qubits
        out = np.zeros((dim, dim), dtype=np.complex128)
        for term in self.terms:
            out += term.matrix(n_qubits)
        return out

    def ground_energy(self, n_qubits: int) -> float:
        """Exact minimum eigenvalue by dense diagonalization."""
        eigvals = np.linalg.eigvalsh(self.matrix(n_qubits))
        return float(eigvals[0])

    def qubitwise_commuting_groups(self) -> List[List[PauliString]]:
        """Greedy grouping of terms into qubit-wise commuting sets.

        Terms in one group can be estimated from the same shot budget because
        they are diagonal in a common single-qubit measurement basis.
        """
        groups: List[List[PauliString]] = []
        for term in self.terms:
            for group in groups:
                if all(term.commutes_qubitwise(member) for member in group):
                    group.append(term)
                    break
            else:
                groups.append([term])
        return groups

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> dict:
        return {"terms": [term.to_json() for term in self.terms]}

    @classmethod
    def from_json(cls, data: dict) -> "Hamiltonian":
        try:
            return cls(PauliString.from_json(entry) for entry in data["terms"])
        except (KeyError, TypeError) as exc:
            raise ObservableError(f"malformed Hamiltonian JSON: {exc}") from exc

    def __repr__(self) -> str:
        preview = " + ".join(
            f"{t.coeff:+.4g}*{t.label()}" for t in self.terms[:4]
        )
        suffix = " + ..." if len(self.terms) > 4 else ""
        return f"Hamiltonian({preview}{suffix})"
