"""Gate definitions: matrices, analytic derivatives, and shift rules.

Conventions
-----------
* Matrices act on the tensor ordering of the wires they are applied to; the
  *first* wire in an operation's wire list is the most significant bit of the
  matrix index.  ``CNOT`` therefore has its control on the first wire.
* Parametric rotations follow the physics convention
  ``R_P(theta) = exp(-i * theta * P / 2)``.
* Every parametric gate registers an analytic derivative so that adjoint
  differentiation is exact, plus a parameter-shift rule classification
  (``"two-term"`` or ``"four-term"``) used by shot-based gradients.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.errors import CircuitError

COMPLEX_DTYPE = np.complex128

_SQRT2 = math.sqrt(2.0)

# ---------------------------------------------------------------------------
# Fixed (non-parametric) gate matrices
# ---------------------------------------------------------------------------

I2 = np.eye(2, dtype=COMPLEX_DTYPE)
PAULI_X = np.array([[0, 1], [1, 0]], dtype=COMPLEX_DTYPE)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=COMPLEX_DTYPE)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=COMPLEX_DTYPE)
HADAMARD = np.array([[1, 1], [1, -1]], dtype=COMPLEX_DTYPE) / _SQRT2
S_GATE = np.array([[1, 0], [0, 1j]], dtype=COMPLEX_DTYPE)
SDG_GATE = S_GATE.conj().T
T_GATE = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=COMPLEX_DTYPE)
TDG_GATE = T_GATE.conj().T
SX_GATE = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=COMPLEX_DTYPE)

CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=COMPLEX_DTYPE
)
CZ = np.diag([1, 1, 1, -1]).astype(COMPLEX_DTYPE)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=COMPLEX_DTYPE
)
ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=COMPLEX_DTYPE
)
TOFFOLI = np.eye(8, dtype=COMPLEX_DTYPE)
TOFFOLI[[6, 7], :] = TOFFOLI[[7, 6], :]
FREDKIN = np.eye(8, dtype=COMPLEX_DTYPE)
FREDKIN[[5, 6], :] = FREDKIN[[6, 5], :]


def controlled(matrix: np.ndarray) -> np.ndarray:
    """Return the controlled version of ``matrix`` (control = first wire)."""
    dim = matrix.shape[0]
    out = np.eye(2 * dim, dtype=COMPLEX_DTYPE)
    out[dim:, dim:] = matrix
    return out


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Check whether ``matrix`` is unitary within ``atol``."""
    dim = matrix.shape[0]
    return bool(np.allclose(matrix.conj().T @ matrix, np.eye(dim), atol=atol))


# ---------------------------------------------------------------------------
# Parametric gate matrices and analytic derivatives
# ---------------------------------------------------------------------------


def rx(theta: float) -> np.ndarray:
    """Rotation about X: ``exp(-i theta X / 2)``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=COMPLEX_DTYPE)


def ry(theta: float) -> np.ndarray:
    """Rotation about Y: ``exp(-i theta Y / 2)``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=COMPLEX_DTYPE)


def rz(theta: float) -> np.ndarray:
    """Rotation about Z: ``exp(-i theta Z / 2)``."""
    phase = np.exp(-0.5j * theta)
    return np.array([[phase, 0], [0, phase.conjugate()]], dtype=COMPLEX_DTYPE)


def phase_shift(phi: float) -> np.ndarray:
    """Phase gate ``diag(1, e^{i phi})``."""
    return np.array([[1, 0], [0, np.exp(1j * phi)]], dtype=COMPLEX_DTYPE)


def rot(phi: float, theta: float, omega: float) -> np.ndarray:
    """General single-qubit rotation ``RZ(omega) RY(theta) RZ(phi)``."""
    return rz(omega) @ ry(theta) @ rz(phi)


def crx(theta: float) -> np.ndarray:
    """Controlled RX (control on first wire)."""
    return controlled(rx(theta))


def cry(theta: float) -> np.ndarray:
    """Controlled RY (control on first wire)."""
    return controlled(ry(theta))


def crz(theta: float) -> np.ndarray:
    """Controlled RZ (control on first wire)."""
    return controlled(rz(theta))


def cphase(phi: float) -> np.ndarray:
    """Controlled phase gate ``diag(1, 1, 1, e^{i phi})``."""
    return controlled(phase_shift(phi))


def _two_qubit_pauli_rotation(pauli: np.ndarray, theta: float) -> np.ndarray:
    kron = np.kron(pauli, pauli)
    return (
        math.cos(theta / 2) * np.eye(4, dtype=COMPLEX_DTYPE)
        - 1j * math.sin(theta / 2) * kron
    )


def ising_xx(theta: float) -> np.ndarray:
    """Two-qubit ``exp(-i theta X⊗X / 2)``."""
    return _two_qubit_pauli_rotation(PAULI_X, theta)


def ising_yy(theta: float) -> np.ndarray:
    """Two-qubit ``exp(-i theta Y⊗Y / 2)``."""
    return _two_qubit_pauli_rotation(PAULI_Y, theta)


def ising_zz(theta: float) -> np.ndarray:
    """Two-qubit ``exp(-i theta Z⊗Z / 2)``."""
    return _two_qubit_pauli_rotation(PAULI_Z, theta)


# --- analytic derivatives --------------------------------------------------


def _pauli_rotation_derivative(pauli: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """d/dtheta exp(-i theta P / 2) = (-i P / 2) @ U."""
    return -0.5j * pauli @ matrix


def _d_rx(params: Sequence[float], k: int) -> np.ndarray:
    return _pauli_rotation_derivative(PAULI_X, rx(params[0]))


def _d_ry(params: Sequence[float], k: int) -> np.ndarray:
    return _pauli_rotation_derivative(PAULI_Y, ry(params[0]))


def _d_rz(params: Sequence[float], k: int) -> np.ndarray:
    return _pauli_rotation_derivative(PAULI_Z, rz(params[0]))


def _d_phase(params: Sequence[float], k: int) -> np.ndarray:
    return np.array([[0, 0], [0, 1j * np.exp(1j * params[0])]], dtype=COMPLEX_DTYPE)


def _d_rot(params: Sequence[float], k: int) -> np.ndarray:
    phi, theta, omega = params
    if k == 0:
        return rz(omega) @ ry(theta) @ _pauli_rotation_derivative(PAULI_Z, rz(phi))
    if k == 1:
        return rz(omega) @ _pauli_rotation_derivative(PAULI_Y, ry(theta)) @ rz(phi)
    return _pauli_rotation_derivative(PAULI_Z, rz(omega)) @ ry(theta) @ rz(phi)


def _controlled_derivative(inner: np.ndarray) -> np.ndarray:
    dim = inner.shape[0]
    out = np.zeros((2 * dim, 2 * dim), dtype=COMPLEX_DTYPE)
    out[dim:, dim:] = inner
    return out


def _d_crx(params: Sequence[float], k: int) -> np.ndarray:
    return _controlled_derivative(_pauli_rotation_derivative(PAULI_X, rx(params[0])))


def _d_cry(params: Sequence[float], k: int) -> np.ndarray:
    return _controlled_derivative(_pauli_rotation_derivative(PAULI_Y, ry(params[0])))


def _d_crz(params: Sequence[float], k: int) -> np.ndarray:
    return _controlled_derivative(_pauli_rotation_derivative(PAULI_Z, rz(params[0])))


def _d_cphase(params: Sequence[float], k: int) -> np.ndarray:
    return _controlled_derivative(_d_phase(params, 0))


def _d_ising(pauli: np.ndarray, theta: float) -> np.ndarray:
    kron = np.kron(pauli, pauli)
    return -0.5j * kron @ _two_qubit_pauli_rotation(pauli, theta)


def _d_xx(params: Sequence[float], k: int) -> np.ndarray:
    return _d_ising(PAULI_X, params[0])


def _d_yy(params: Sequence[float], k: int) -> np.ndarray:
    return _d_ising(PAULI_Y, params[0])


def _d_zz(params: Sequence[float], k: int) -> np.ndarray:
    return _d_ising(PAULI_Z, params[0])


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

TWO_TERM = "two-term"
FOUR_TERM = "four-term"


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes
    ----------
    name:
        Canonical lower-case gate name used by the circuit IR.
    n_wires:
        Number of wires the gate acts on.
    n_params:
        Number of real parameters (0 for fixed gates).
    matrix_fn:
        Callable mapping a parameter sequence to the gate matrix.  Fixed
        gates ignore the argument.
    derivative_fn:
        Callable ``(params, k) -> dU/dparams[k]`` or ``None`` for fixed gates.
    shift_rule:
        ``"two-term"``, ``"four-term"``, or ``None``; classification used by
        the parameter-shift differentiator.
    """

    name: str
    n_wires: int
    n_params: int
    matrix_fn: Callable[[Sequence[float]], np.ndarray]
    derivative_fn: Callable[[Sequence[float], int], np.ndarray] | None = None
    shift_rule: str | None = None


def _fixed(name: str, n_wires: int, matrix: np.ndarray) -> GateSpec:
    frozen = matrix.copy()
    frozen.setflags(write=False)
    return GateSpec(name, n_wires, 0, lambda params, _m=frozen: _m)


def _parametric(
    name: str,
    n_wires: int,
    n_params: int,
    fn: Callable[..., np.ndarray],
    dfn: Callable[[Sequence[float], int], np.ndarray],
    shift_rule: str,
) -> GateSpec:
    return GateSpec(
        name,
        n_wires,
        n_params,
        lambda params, _f=fn: _f(*params),
        dfn,
        shift_rule,
    )


REGISTRY: Dict[str, GateSpec] = {
    spec.name: spec
    for spec in [
        _fixed("i", 1, I2),
        _fixed("x", 1, PAULI_X),
        _fixed("y", 1, PAULI_Y),
        _fixed("z", 1, PAULI_Z),
        _fixed("h", 1, HADAMARD),
        _fixed("s", 1, S_GATE),
        _fixed("sdg", 1, SDG_GATE),
        _fixed("t", 1, T_GATE),
        _fixed("tdg", 1, TDG_GATE),
        _fixed("sx", 1, SX_GATE),
        _fixed("cnot", 2, CNOT),
        _fixed("cz", 2, CZ),
        _fixed("swap", 2, SWAP),
        _fixed("iswap", 2, ISWAP),
        _fixed("toffoli", 3, TOFFOLI),
        _fixed("fredkin", 3, FREDKIN),
        _parametric("rx", 1, 1, rx, _d_rx, TWO_TERM),
        _parametric("ry", 1, 1, ry, _d_ry, TWO_TERM),
        _parametric("rz", 1, 1, rz, _d_rz, TWO_TERM),
        _parametric("phase", 1, 1, phase_shift, _d_phase, TWO_TERM),
        _parametric("rot", 1, 3, rot, _d_rot, TWO_TERM),
        _parametric("crx", 2, 1, crx, _d_crx, FOUR_TERM),
        _parametric("cry", 2, 1, cry, _d_cry, FOUR_TERM),
        _parametric("crz", 2, 1, crz, _d_crz, FOUR_TERM),
        _parametric("cphase", 2, 1, cphase, _d_cphase, TWO_TERM),
        _parametric("xx", 2, 1, ising_xx, _d_xx, TWO_TERM),
        _parametric("yy", 2, 1, ising_yy, _d_yy, TWO_TERM),
        _parametric("zz", 2, 1, ising_zz, _d_zz, TWO_TERM),
    ]
}


def spec_for(name: str) -> GateSpec:
    """Look up the :class:`GateSpec` for ``name`` (case-insensitive)."""
    try:
        return REGISTRY[name.lower()]
    except KeyError:
        raise CircuitError(f"unknown gate {name!r}") from None


def matrix_for(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Build the unitary matrix for gate ``name`` with ``params``."""
    spec = spec_for(name)
    if len(params) != spec.n_params:
        raise CircuitError(
            f"gate {name!r} takes {spec.n_params} parameter(s), got {len(params)}"
        )
    return spec.matrix_fn(tuple(params))


def derivative_for(name: str, params: Sequence[float], k: int) -> np.ndarray:
    """Analytic derivative of gate ``name`` with respect to its k-th parameter."""
    spec = spec_for(name)
    if spec.derivative_fn is None:
        raise CircuitError(f"gate {name!r} has no parameters to differentiate")
    if not 0 <= k < spec.n_params:
        raise CircuitError(
            f"gate {name!r} parameter index {k} out of range [0, {spec.n_params})"
        )
    return spec.derivative_fn(tuple(params), k)


# Parameter-shift coefficients for the four-term rule (controlled rotations).
FOUR_TERM_COEFFS: Tuple[float, float] = (
    (_SQRT2 + 1) / (4 * _SQRT2),
    (_SQRT2 - 1) / (4 * _SQRT2),
)
FOUR_TERM_SHIFTS: Tuple[float, float] = (math.pi / 2, 3 * math.pi / 2)
