"""Multi-process gradient sharding: fan a shifted batch across workers.

A parameter-shift gradient is ``2P`` (or ``4P``) independent shifted
executions of one circuit — embarrassingly parallel, yet the batched sweep
of :func:`repro.quantum.kernels.run_shifted_batch` burns a single core.
:class:`ShardExecutor` keeps a pool of persistent worker processes, each
with its own primed matrix cache and the same engine tier as the parent,
and splits the batch into contiguous shards.

Why not ``ProcessPoolExecutor``: the pool here needs *targeted* per-worker
RPC — cache introspection (``cache_info(all_workers=True)``), cache
clearing, cache priming, and deterministic crash injection for the recovery
tests — so each worker owns a dedicated duplex pipe and a tiny op loop
instead of a shared task queue.

Determinism contract: shards are contiguous, at least 2 wide (width-1
column batches take a different einsum path inside ``expectation_batch``),
and every kernel on the shifted-batch path is invariant to batch width, so
``out[lo:hi] = worker(batch[lo:hi])`` merged in order is **bitwise
identical** to the single-process energies — the parity property tests
assert exactly that, per tier.

Crash handling: a worker that dies mid-shard (EOF/broken pipe) is
respawned and its shard re-executed from scratch — energies are only ever
merged per completed shard, so a crash can never leak a partial gradient.
A shard that fails twice falls back to in-process execution; a worker that
reports an error (e.g. its engine tier failed to load) falls back the same
way.  All of it is counted in the ``shard.*`` metrics series.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

START_METHOD_ENV = "QCKPT_SHARD_START_METHOD"

#: Seconds to wait for one shard result before declaring the worker hung.
_RESULT_TIMEOUT = 600.0

#: Shards narrower than this would change expectation reduction paths (and
#: waste IPC): the partitioner never emits a shard below it.
_MIN_SHARD = 2


def shard_bounds(total: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous balanced ``[lo, hi)`` shard bounds over ``total`` items.

    Uses at most ``workers`` shards, never makes a shard narrower than
    ``_MIN_SHARD`` (so a 192-shift batch over 4 workers is four 48-wide
    shards, while a 6-shift batch over 4 workers is three 2-wide ones).
    """
    if total <= 0:
        return []
    shards = max(1, min(workers, total // _MIN_SHARD))
    base, rem = divmod(total, shards)
    bounds = []
    lo = 0
    for k in range(shards):
        hi = lo + base + (1 if k < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _worker_main(conn, tier: Optional[str]) -> None:
    """Worker op loop: select the parent's tier, then serve pipe requests."""
    tier_error = None
    try:
        from repro.quantum import engines as _engines

        _engines.select_engine(tier)
    except BaseException as exc:  # report on first use, never die silently
        tier_error = f"{type(exc).__name__}: {exc}"
    from repro.autodiff._execute import shifted_batch_energies
    from repro.quantum import kernels as _kernels

    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            return
        try:
            if op == "energies":
                if payload.get("crash"):
                    os._exit(3)  # simulated kill -9 mid-shard
                if tier_error is not None:
                    conn.send(("error", f"engine selection failed: {tier_error}"))
                    continue
                result = shifted_batch_energies(
                    payload["circuit"],
                    payload["values"],
                    payload["batch"],
                    payload["observable"],
                    payload["initial_state"],
                )
                conn.send(("ok", result))
            elif op == "prime":
                circuit, values = payload
                _kernels.prime_circuit_cache(circuit, values)
                conn.send(("ok", None))
            elif op == "cache_info":
                info = _kernels.cache_info()
                info["pid"] = os.getpid()
                info["tier"] = None if tier_error else tier
                conn.send(("ok", info))
            elif op == "clear_caches":
                _kernels.clear_caches()
                conn.send(("ok", None))
            elif op == "ping":
                conn.send(("ok", os.getpid()))
            elif op == "exit":
                conn.send(("ok", None))
                return
            else:
                conn.send(("error", f"unknown op {op!r}"))
        except BaseException as exc:
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except OSError:
                return


class _Worker:
    def __init__(self, ctx, tier: Optional[str]):
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child, tier), daemon=True
        )
        self.process.start()
        child.close()

    def request(self, op: str, payload, timeout: float = _RESULT_TIMEOUT):
        """One RPC round-trip; raises EOFError when the worker is gone."""
        self.conn.send((op, payload))
        if not self.conn.poll(timeout):
            raise EOFError(f"worker {self.process.pid} timed out on {op!r}")
        status, result = self.conn.recv()
        if status != "ok":
            raise WorkerError(result)
        return result

    def stop(self) -> None:
        try:
            self.conn.send(("exit", None))
            self.conn.poll(1.0) and self.conn.recv()
        except (OSError, EOFError, BrokenPipeError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        self.conn.close()

    def kill(self) -> None:
        try:
            self.process.terminate()
            self.process.join(timeout=2.0)
        finally:
            try:
                self.conn.close()
            except OSError:
                pass


class WorkerError(Exception):
    """A worker replied with an error (as opposed to dying)."""


def _pick_context(start_method: Optional[str]):
    method = start_method or os.environ.get(START_METHOD_ENV, "").strip() or None
    if method is None:
        # fork shares the parent's warm imports and compiled library, making
        # worker start ~instant; fall back to the platform default elsewhere.
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else methods[0]
    try:
        return multiprocessing.get_context(method)
    except ValueError as exc:
        raise ConfigError(f"unknown start method {method!r}") from exc


class ShardExecutor:
    """A persistent pool of gradient-shard worker processes."""

    def __init__(
        self,
        workers: int,
        tier: Optional[str] = None,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        from repro.quantum import engines as _engines

        self.workers = int(workers)
        self.tier = tier if tier is not None else _engines.active_engine()
        self._metrics = _engines.METRICS
        self._ctx = _pick_context(start_method)
        self._lock = threading.Lock()
        self._crash_next = 0
        self._closed = False
        self._pool: List[_Worker] = [
            _Worker(self._ctx, self.tier) for _ in range(self.workers)
        ]
        self._metrics.gauge("shard.workers").set(self.workers)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in self._pool:
                worker.stop()
            self._pool = []
            self._metrics.gauge("shard.workers").set(0)

    @property
    def closed(self) -> bool:
        return self._closed

    def _respawn(self, index: int) -> _Worker:
        self._pool[index].kill()
        self._pool[index] = _Worker(self._ctx, self.tier)
        return self._pool[index]

    # -- test hooks --------------------------------------------------------

    def inject_worker_crash(self, count: int = 1) -> None:
        """Arm the next ``count`` dispatched shards to kill their worker."""
        with self._lock:
            self._crash_next += int(count)

    def _take_crash_flag(self) -> bool:
        with self._lock:
            if self._crash_next > 0:
                self._crash_next -= 1
                return True
            return False

    # -- the shard fan-out -------------------------------------------------

    def energies(
        self,
        circuit,
        values,
        batch: Sequence[dict],
        observable,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Shard ``batch`` across the pool; energies merged in batch order."""
        if self._closed:
            raise ConfigError("ShardExecutor is closed")
        bounds = shard_bounds(len(batch), self.workers)
        out = np.empty(len(batch), dtype=np.float64)
        if not bounds:
            return out
        payloads = []
        for index, (lo, hi) in enumerate(bounds):
            payload = {
                "circuit": circuit,
                "values": values,
                "batch": list(batch[lo:hi]),
                "observable": observable,
                "initial_state": initial_state,
                "crash": self._take_crash_flag(),
            }
            payloads.append((index, lo, hi, payload))
            self._metrics.counter("shard.tasks").inc()
            self._metrics.counter("shard.shifts").inc(hi - lo)
        # Dispatch everything first so workers run concurrently, then
        # collect in shard order (merge order never depends on completion
        # order, which keeps the result deterministic).
        dispatched = []
        for index, lo, hi, payload in payloads:
            dispatched.append(
                (index, lo, hi, payload, self._try_send(index, payload))
            )
        self._metrics.counter("shard.gradients").inc()
        for index, lo, hi, payload, sent in dispatched:
            out[lo:hi] = self._collect(index, payload, sent)
        return out

    def _try_send(self, index: int, payload) -> bool:
        try:
            self._pool[index].conn.send(("energies", payload))
            return True
        except (OSError, BrokenPipeError, ValueError):
            return False

    def _collect(self, index: int, payload, sent: bool) -> np.ndarray:
        worker = self._pool[index]
        if sent:
            try:
                if not worker.conn.poll(_RESULT_TIMEOUT):
                    raise EOFError("timed out")
                status, result = worker.conn.recv()
                if status == "ok":
                    return result
                self._metrics.counter("shard.errors").inc()
                return self._in_process(payload)
            except (EOFError, OSError, BrokenPipeError):
                pass  # worker died mid-shard: respawn and retry below
        self._metrics.counter("shard.worker_crashes").inc()
        worker = self._respawn(index)
        payload = dict(payload, crash=False)
        try:
            self._metrics.counter("shard.retries").inc()
            return worker.request("energies", payload)
        except (EOFError, OSError, BrokenPipeError, WorkerError):
            self._metrics.counter("shard.fallbacks").inc()
            return self._in_process(payload)

    @staticmethod
    def _in_process(payload) -> np.ndarray:
        from repro.autodiff._execute import shifted_batch_energies

        return shifted_batch_energies(
            payload["circuit"],
            payload["values"],
            payload["batch"],
            payload["observable"],
            payload["initial_state"],
        )

    # -- per-worker cache RPC ----------------------------------------------

    def _broadcast(self, op: str, payload=None) -> List[object]:
        results = []
        for index in range(len(self._pool)):
            try:
                results.append(self._pool[index].request(op, payload, timeout=30.0))
            except (EOFError, OSError, BrokenPipeError):
                self._metrics.counter("shard.worker_crashes").inc()
                self._respawn(index)
                results.append(self._pool[index].request(op, payload, timeout=30.0))
        return results

    def cache_info(self) -> List[dict]:
        """Matrix/derivative cache statistics from every worker."""
        return self._broadcast("cache_info")

    def clear_caches(self) -> None:
        self._broadcast("clear_caches")

    def prime(self, circuit, values) -> None:
        """Warm every worker's matrix cache with the circuit's gates."""
        self._broadcast("prime", (circuit, np.asarray(values, dtype=np.float64)))

    def ping(self) -> List[int]:
        return self._broadcast("ping")


# ---------------------------------------------------------------------------
# Default executor (what the differentiators use)
# ---------------------------------------------------------------------------

_default_lock = threading.Lock()
_default: Optional[ShardExecutor] = None


def get_executor(workers: int) -> ShardExecutor:
    """The shared executor, (re)built when the worker count changes."""
    global _default
    with _default_lock:
        if _default is None or _default.closed or _default.workers != workers:
            if _default is not None and not _default.closed:
                _default.close()
            _default = ShardExecutor(workers)
        return _default


def current_executor() -> Optional[ShardExecutor]:
    return _default


def shutdown_default() -> None:
    global _default
    with _default_lock:
        if _default is not None:
            _default.close()
            _default = None


atexit.register(shutdown_default)


def sharded_energies(
    circuit,
    values,
    batch: Sequence[dict],
    observable,
    initial_state: Optional[np.ndarray] = None,
    workers: int = 2,
) -> np.ndarray:
    """Convenience entry: shard ``batch`` over the default executor."""
    return get_executor(workers).energies(
        circuit, values, batch, observable, initial_state
    )


def prime_worker_caches(circuit, values, workers: int) -> None:
    """Warm the shard workers' matrix caches (trainer startup hook)."""
    get_executor(workers).prime(circuit, values)


def worker_cache_info() -> List[dict]:
    """Per-worker cache statistics (``[]`` when no pool is live)."""
    with _default_lock:
        executor = _default
    if executor is None or executor.closed:
        return []
    return executor.cache_info()


def clear_worker_caches() -> None:
    with _default_lock:
        executor = _default
    if executor is not None and not executor.closed:
        executor.clear_caches()
