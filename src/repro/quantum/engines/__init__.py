"""Execution-engine tiers and multi-process gradient sharding.

The fast statevector engine of :mod:`repro.quantum.kernels` has, until now,
been one implementation: vectorized numpy kernels.  This package turns the
engine into a *ladder of tiers* plus a fan-out axis:

* **numpy** — the pure-numpy kernels, always available, and the oracle every
  other tier is property-tested against.
* **compiled** — C builds of the hot 1q/2q gate kernels (plus delta-XOR and
  the fast content-hash primitive), compiled on first use with the host C
  compiler and loaded through ``ctypes`` (:mod:`repro.quantum.engines.compiled`).
  No third-party dependency: if the host has no working C compiler the tier
  reports unavailable and the ladder falls back to numpy.
* **sharding** — a multi-process shard executor for the embarrassingly
  parallel shifted-parameter batches of gradient evaluation
  (:mod:`repro.quantum.engines.sharding`), orthogonal to the tier choice:
  every worker runs whichever tier the parent selected.

Selection ladder (``QCKPT_ENGINE``): ``auto`` (default) picks ``compiled``
when the compiled library is importable and ``numpy`` otherwise; ``numpy``
and ``compiled`` force a tier (forcing ``compiled`` on a host without a C
compiler is a :class:`~repro.errors.ConfigError`, not a silent fallback).
The selection happens once per process, lazily, on the first kernel
execution — importing this package does not build anything.

Determinism contract: within one tier, gradient energies are **bitwise
invariant to batch width**, so splitting a shifted batch across shard
workers reproduces the single-process gradient bit-for-bit.  Across tiers,
results agree to floating-point round-off (the compiled kernels mirror the
numpy elementwise operations exactly and are bitwise-identical on the batch
paths; only flat-state BLAS paths may differ in the last ulp).

Observability: engine selection and shard fan-out are counted in a
process-global :class:`~repro.obs.metrics.MetricsRegistry` (``engine.*`` /
``shard.*`` series) that the fleet daemon folds into its ``metrics`` op, so
``qckpt metrics`` / ``qckpt top`` show which tier is live and how many
worker processes actually executed shifts.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry

TIER_NUMPY = "numpy"
TIER_COMPILED = "compiled"
AUTO = "auto"
_TIERS = (TIER_NUMPY, TIER_COMPILED)

#: Environment knobs (documented in docs/OPERATIONS.md).
ENGINE_ENV = "QCKPT_ENGINE"
WORKERS_ENV = "QCKPT_SHARD_WORKERS"

#: Process-global registry for ``engine.*`` / ``shard.*`` series.  The fleet
#: daemon merges this into its own snapshot, so operators see engine state
#: through the same ``qckpt metrics`` pipe as storage counters.
METRICS = MetricsRegistry()

_lock = threading.RLock()
_active: Optional[str] = None
_scope = threading.local()


def available_tiers() -> Dict[str, bool]:
    """Tier name -> availability (probing builds the compiled library)."""
    from repro.quantum.engines import compiled

    return {TIER_NUMPY: True, TIER_COMPILED: compiled.available()}


def _resolve_request(name: Optional[str]) -> str:
    requested = name if name is not None else os.environ.get(ENGINE_ENV, "")
    requested = (requested or AUTO).strip().lower()
    if requested not in (*_TIERS, AUTO):
        raise ConfigError(
            f"{ENGINE_ENV} must be one of numpy|compiled|auto, "
            f"got {requested!r}"
        )
    return requested


def select_engine(name: Optional[str] = None) -> str:
    """Select and activate a tier; returns the active tier name.

    ``name=None`` reads ``QCKPT_ENGINE`` (default ``auto``).  ``auto``
    resolves to ``compiled`` when the compiled library builds/loads on this
    host and ``numpy`` otherwise.  Explicitly requesting ``compiled`` on a
    host where it is unavailable raises :class:`ConfigError` naming the
    reason, so a fleet operator who *asked* for the fast tier is never
    silently downgraded.
    """
    from repro.quantum.engines import compiled

    requested = _resolve_request(name)
    with _lock:
        if requested == TIER_COMPILED and not compiled.available():
            raise ConfigError(
                f"QCKPT_ENGINE=compiled but the compiled kernel tier is "
                f"unavailable: {compiled.availability_reason()}"
            )
        if requested == AUTO:
            tier = TIER_COMPILED if compiled.available() else TIER_NUMPY
        else:
            tier = requested
        _activate(tier)
        return tier


def _activate(tier: str) -> None:
    from repro.quantum import kernels
    from repro.quantum.engines import compiled

    global _active
    kernels._set_compiled_kernels(
        compiled.kernel_library() if tier == TIER_COMPILED else None
    )
    _active = tier
    METRICS.counter("engine.selected", tier=tier).inc()
    METRICS.gauge("engine.compiled_available").set(
        1 if compiled.available() else 0
    )


def active_engine() -> str:
    """The live tier, selecting lazily (env ladder) on first use."""
    with _lock:
        if _active is None:
            return select_engine()
        return _active


def engine_info() -> Dict[str, object]:
    """Introspection bundle for benches, ``qckpt metrics`` and tests."""
    from repro.quantum.engines import compiled

    return {
        "active": active_engine(),
        "requested": _resolve_request(None),
        "compiled_available": compiled.available(),
        "compiled_reason": compiled.availability_reason(),
        "cpu_count": os.cpu_count(),
        "shard_workers": resolve_shard_workers(None),
    }


def storage_library():
    """Compiled library for storage fast paths, honoring the engine ladder.

    Returns the :class:`~repro.quantum.engines.compiled.CompiledKernels`
    facade when the ladder permits the compiled tier (``QCKPT_ENGINE`` is
    ``auto`` or ``compiled`` *and* the library builds on this host), else
    ``None``.  Never raises: storage callers (delta-XOR, fast content
    digests) always have an exact numpy/python fallback, so a pinned
    ``QCKPT_ENGINE=numpy`` or a malformed env value simply means the
    fallback runs.
    """
    from repro.quantum.engines import compiled

    try:
        if _resolve_request(None) == TIER_NUMPY:
            return None
    except ConfigError:
        return None
    return compiled.kernel_library()


def reset_engine() -> None:
    """Forget the selection so the next use re-reads the environment (tests)."""
    from repro.quantum import kernels

    global _active
    with _lock:
        _active = None
        kernels._reset_engine_binding()


# ---------------------------------------------------------------------------
# Ambient execution scope (shard fan-out)
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def execution_scope(shard_workers: Optional[int] = None):
    """Thread-local scope carrying the gradient shard fan-out.

    The trainer (``TrainerConfig.shard_workers``) and the fleet scheduler
    (``FleetJobSpec.shard_workers``) wrap each training step in this scope;
    the shift-rule differentiators read it when their explicit
    ``shard_workers`` argument is ``None``.  Mirrors the thread-local
    ambient propagation of ``repro.reliability.deadline_scope``.

    ``shard_workers=None`` *inherits*: the scope is a no-op, so an enclosing
    scope (e.g. the fleet scheduler's per-job fan-out around a trainer whose
    own config leaves the knob unset) stays visible.  Pass 0 to explicitly
    force in-process execution inside an enclosing scope.
    """
    if shard_workers is None:
        yield
        return
    if shard_workers < 0:
        raise ConfigError(
            f"shard_workers must be >= 0, got {shard_workers}"
        )
    previous = getattr(_scope, "shard_workers", None)
    _scope.shard_workers = shard_workers
    try:
        yield
    finally:
        _scope.shard_workers = previous


def resolve_shard_workers(explicit: Optional[int]) -> int:
    """Effective worker count: explicit arg > ambient scope > env > 0 (off)."""
    if explicit is not None:
        return max(0, int(explicit))
    ambient = getattr(_scope, "shard_workers", None)
    if ambient is not None:
        return max(0, int(ambient))
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError as exc:
            raise ConfigError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from exc
    return 0


def metrics_snapshot() -> dict:
    """Snapshot of the engine/shard registry (for the daemon's metrics op)."""
    return METRICS.snapshot()
