"""Compiled kernel tier: C builds of the hot paths, loaded via ``ctypes``.

The container bakes in no numba/cffi, so this tier leans on what every build
host already has: a C compiler.  On first probe the embedded source below is
compiled to a shared object (cached on disk keyed by source hash, so later
processes just ``dlopen``) and wrapped in :class:`CompiledKernels`.  If no
working compiler exists, the tier reports unavailable with a reason and the
engine ladder stays on numpy — availability is a property of the host, never
an import error.

Bitwise parity contract: each C kernel mirrors the *exact* elementwise
operation order of its numpy counterpart in :mod:`repro.quantum.kernels` —
the same branch conditions (diagonal / anti-diagonal / permutation /
general), the same ``!= 1`` multiply skips, the same ``!= 0`` accumulate
skips, the same naive complex-multiply formula numpy's ufuncs use, and the
same ``new_b = b*m11 + a*m10`` term order.  Compiled with
``-ffp-contract=off`` so no fused multiply-adds change rounding.  A
load-time self-test asserts bitwise equality against the numpy oracle on
randomized states; any deviation (exotic compiler, aggressive default
flags) marks the tier unavailable rather than silently changing results.

Also exported: ``xor_into`` (delta-XOR for :mod:`repro.core.delta`) and
``fnv1a64`` (the fast pre-filter digest for :mod:`repro.core.hashing`).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Optional, Sequence

import numpy as np

_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>

/* complex128 amplitudes as interleaved doubles.  Scalar complex products
 * use the naive (ar*br - ai*bi, ar*bi + ai*br) formula -- the same one
 * numpy's complex128 ufuncs use -- and the translation unit is built with
 * -ffp-contract=off, so every kernel below is bitwise-identical to the
 * numpy elementwise path it mirrors. */

#define CMUL(rr, ri, ar, ai, br, bi) \
    do { rr = (ar)*(br) - (ai)*(bi); ri = (ar)*(bi) + (ai)*(br); } while (0)

static int is_zero(const double *m, int k) {
    return m[2*k] == 0.0 && m[2*k+1] == 0.0;
}

static int is_one(const double *m, int k) {
    return m[2*k] == 1.0 && m[2*k+1] == 0.0;
}

/* 1q gate on [m_count][2][block] complex; m = 4 complex entries row-major. */
void qk_apply_1q(double *psi, long m_count, long block, const double *m) {
    const double m00r = m[0], m00i = m[1], m01r = m[2], m01i = m[3];
    const double m10r = m[4], m10i = m[5], m11r = m[6], m11i = m[7];
    const long stride = 4 * block; /* 2*block complex */
    if (is_zero(m, 1) && is_zero(m, 2)) { /* diagonal */
        const int scale_a = !is_one(m, 0), scale_b = !is_one(m, 3);
        if (!scale_a && !scale_b) return;
        for (long g = 0; g < m_count; g++) {
            double *a = psi + (size_t)g * stride;
            double *b = a + 2 * block;
            for (long j = 0; j < 2 * block; j += 2) {
                if (scale_a) {
                    double ar = a[j], ai = a[j+1];
                    CMUL(a[j], a[j+1], ar, ai, m00r, m00i);
                }
                if (scale_b) {
                    double br = b[j], bi = b[j+1];
                    CMUL(b[j], b[j+1], br, bi, m11r, m11i);
                }
            }
        }
        return;
    }
    if (is_zero(m, 0) && is_zero(m, 3)) { /* anti-diagonal */
        for (long g = 0; g < m_count; g++) {
            double *a = psi + (size_t)g * stride;
            double *b = a + 2 * block;
            for (long j = 0; j < 2 * block; j += 2) {
                double ar = a[j], ai = a[j+1];
                double br = b[j], bi = b[j+1];
                CMUL(a[j], a[j+1], br, bi, m01r, m01i);
                CMUL(b[j], b[j+1], ar, ai, m10r, m10i);
            }
        }
        return;
    }
    for (long g = 0; g < m_count; g++) { /* general dense */
        double *a = psi + (size_t)g * stride;
        double *b = a + 2 * block;
        for (long j = 0; j < 2 * block; j += 2) {
            double ar = a[j], ai = a[j+1];
            double br = b[j], bi = b[j+1];
            double t0r, t0i, t1r, t1i, t2r, t2i, t3r, t3i;
            CMUL(t0r, t0i, ar, ai, m00r, m00i);
            CMUL(t1r, t1i, br, bi, m01r, m01i);
            CMUL(t2r, t2i, br, bi, m11r, m11i);
            CMUL(t3r, t3i, ar, ai, m10r, m10i);
            a[j] = t0r + t1r; a[j+1] = t0i + t1i;
            b[j] = t2r + t3r; b[j+1] = t2i + t3i;
        }
    }
}

/* 2q gate on [m_count][2][mid][2][block] complex; m = 16 complex entries
 * row-major.  vmap maps matrix basis index -> quarter-view index and is
 * {0,1,2,3} for ascending wires, {0,2,1,3} when the gate's wires are
 * reversed (matrix index is bit(w0)*2 + bit(w1)).  Returns 1 when handled;
 * general dense 4x4 matrices return 0 so the caller runs the numpy path --
 * numpy's mixed SIMD/scalar ufunc loops round the dense accumulation
 * differently in the last ulp, and cross-tier parity wins over the rare
 * dense-4x4 speedup. */
int qk_apply_2q(double *psi, long m_count, long mid, long block,
                const double *m, const long *vmap) {
    long offs[4]; /* double offset of each matrix-indexed view in a group */
    for (int k = 0; k < 4; k++) {
        long v = vmap[k];
        offs[k] = ((v >> 1) * mid * 2 + (v & 1)) * 2 * block;
    }
    const long group = 2 * mid * 2 * block * 2; /* doubles per m-group */
    int offdiag = 0;
    for (int k = 0; k < 4; k++)
        for (int l = 0; l < 4; l++)
            if (k != l && !is_zero(m, 4*k + l)) offdiag = 1;
    if (!offdiag) { /* diagonal (cz, zz, crz) */
        for (int k = 0; k < 4; k++) {
            if (is_one(m, 4*k + k)) continue;
            const double pr = m[2*(4*k+k)], pi = m[2*(4*k+k)+1];
            for (long g = 0; g < m_count; g++) {
                double *base = psi + (size_t)g * group + offs[k];
                for (long t = 0; t < mid; t++) {
                    double *v = base + t * 4 * block;
                    for (long j = 0; j < 2 * block; j += 2) {
                        double vr = v[j], vi = v[j+1];
                        CMUL(v[j], v[j+1], vr, vi, pr, pi);
                    }
                }
            }
        }
        return 1;
    }
    int rows[4] = {0, 0, 0, 0}, cols[4] = {0, 0, 0, 0};
    int perm[4];
    for (int k = 0; k < 4; k++)
        for (int l = 0; l < 4; l++)
            if (!is_zero(m, 4*k + l)) { rows[k]++; cols[l]++; perm[k] = l; }
    int is_perm = 1;
    for (int k = 0; k < 4; k++)
        if (rows[k] != 1 || cols[k] != 1) is_perm = 0;
    if (is_perm) { /* phase permutation (cnot, swap, iswap, ...) */
        int copy[4];
        double pr[4], pi[4];
        for (int k = 0; k < 4; k++) {
            copy[k] = is_one(m, 4*k + perm[k]);
            pr[k] = m[2*(4*k + perm[k])];
            pi[k] = m[2*(4*k + perm[k]) + 1];
        }
        for (long g = 0; g < m_count; g++) {
            double *base = psi + (size_t)g * group;
            for (long t = 0; t < mid; t++) {
                for (long j = 0; j < 2 * block; j += 2) {
                    double oldr[4], oldi[4];
                    for (int k = 0; k < 4; k++) {
                        const double *v = base + offs[k] + t * 4 * block;
                        oldr[k] = v[j]; oldi[k] = v[j+1];
                    }
                    for (int k = 0; k < 4; k++) {
                        double *v = base + offs[k] + t * 4 * block;
                        if (k == perm[k] && copy[k]) continue;
                        if (copy[k]) { v[j] = oldr[perm[k]]; v[j+1] = oldi[perm[k]]; }
                        else CMUL(v[j], v[j+1], oldr[perm[k]], oldi[perm[k]], pr[k], pi[k]);
                    }
                }
            }
        }
        return 1;
    }
    return 0; /* general dense 4x4: numpy path */
}

/* dst ^= src over n bytes (delta encoding hot loop). */
void qk_xor_bytes(unsigned char *dst, const unsigned char *src, long n) {
    long i = 0;
    for (; i + 8 <= n; i += 8) {
        uint64_t a, b;
        __builtin_memcpy(&a, dst + i, 8);
        __builtin_memcpy(&b, src + i, 8);
        a ^= b;
        __builtin_memcpy(dst + i, &a, 8);
    }
    for (; i < n; i++) dst[i] ^= src[i];
}

/* out = a ^ b over n bytes -- one pass, no copy of either operand. */
void qk_xor3(unsigned char *out, const unsigned char *a,
             const unsigned char *b, long n) {
    long i = 0;
    for (; i + 8 <= n; i += 8) {
        uint64_t x, y;
        __builtin_memcpy(&x, a + i, 8);
        __builtin_memcpy(&y, b + i, 8);
        x ^= y;
        __builtin_memcpy(out + i, &x, 8);
    }
    for (; i < n; i++) out[i] = a[i] ^ b[i];
}

/* FNV-1a 64-bit: the cheap content pre-filter digest for dedup. */
uint64_t qk_fnv1a64(const unsigned char *p, long n) {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (long i = 0; i < n; i++) {
        h ^= p[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}
"""

#: Flags chosen for bitwise parity: no FP contraction (no FMA reassociation),
#: no errno bookkeeping; -march=native is attempted and dropped on failure.
_BASE_FLAGS = ["-O3", "-ffp-contract=off", "-fno-math-errno", "-shared", "-fPIC"]

CC_ENV = "QCKPT_CC"
CACHE_ENV = "QCKPT_ENGINE_CACHE"

_lock = threading.RLock()
_probed = False
_library: Optional["CompiledKernels"] = None
_reason = "not probed yet"


def _find_compiler() -> Optional[str]:
    override = os.environ.get(CC_ENV, "").strip()
    candidates = [override] if override else ["cc", "gcc", "clang"]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> str:
    configured = os.environ.get(CACHE_ENV, "").strip()
    if configured:
        return configured
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"qckpt-engines-{uid}")


def _build(compiler: str) -> str:
    """Compile the embedded source into the on-disk cache; returns .so path."""
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"qckpt_kernels_{digest}.so")
    if os.path.exists(so_path):
        return so_path
    os.makedirs(cache, exist_ok=True)
    src_path = os.path.join(cache, f"qckpt_kernels_{digest}.c")
    with open(src_path, "w") as fh:
        fh.write(_SOURCE)
    tmp_path = so_path + f".tmp.{os.getpid()}"
    for flags in ([*_BASE_FLAGS, "-march=native"], _BASE_FLAGS):
        proc = subprocess.run(
            [compiler, *flags, src_path, "-o", tmp_path],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode == 0:
            os.replace(tmp_path, so_path)  # atomic vs concurrent builders
            return so_path
    raise RuntimeError(
        f"{compiler} failed: {proc.stderr.strip().splitlines()[-1] if proc.stderr else 'unknown error'}"
    )


class CompiledKernels:
    """ctypes facade over the compiled library.

    ``apply_1q``/``apply_2q`` return ``True`` when the compiled kernel
    handled the update and ``False`` when the array is not eligible
    (wrong dtype / non-contiguous), in which case the caller falls through
    to the numpy path.
    """

    def __init__(self, cdll: ctypes.CDLL, so_path: str):
        self.so_path = so_path
        self._k1q = cdll.qk_apply_1q
        self._k1q.restype = None
        self._k1q.argtypes = [
            ctypes.POINTER(ctypes.c_double),
            ctypes.c_long,
            ctypes.c_long,
            ctypes.POINTER(ctypes.c_double),
        ]
        self._k2q = cdll.qk_apply_2q
        self._k2q.restype = ctypes.c_int
        self._k2q.argtypes = [
            ctypes.POINTER(ctypes.c_double),
            ctypes.c_long,
            ctypes.c_long,
            ctypes.c_long,
            ctypes.POINTER(ctypes.c_double),
            ctypes.POINTER(ctypes.c_long),
        ]
        self._xor = cdll.qk_xor_bytes
        self._xor.restype = None
        self._xor.argtypes = [
            ctypes.POINTER(ctypes.c_ubyte),
            ctypes.POINTER(ctypes.c_ubyte),
            ctypes.c_long,
        ]
        self._xor3 = cdll.qk_xor3
        self._xor3.restype = None
        self._xor3.argtypes = [
            ctypes.POINTER(ctypes.c_ubyte),
            ctypes.POINTER(ctypes.c_ubyte),
            ctypes.POINTER(ctypes.c_ubyte),
            ctypes.c_long,
        ]
        self._fnv = cdll.qk_fnv1a64
        self._fnv.restype = ctypes.c_uint64
        self._fnv.argtypes = [ctypes.POINTER(ctypes.c_ubyte), ctypes.c_long]
        self._vmaps = {
            False: (ctypes.c_long * 4)(0, 1, 2, 3),
            True: (ctypes.c_long * 4)(0, 2, 1, 3),
        }

    @staticmethod
    def _eligible(states: np.ndarray, matrix: np.ndarray) -> bool:
        return (
            states.dtype == np.complex128
            and states.flags["C_CONTIGUOUS"]
            and matrix.dtype == np.complex128
        )

    @staticmethod
    def _matrix_ptr(matrix: np.ndarray):
        if not matrix.flags["C_CONTIGUOUS"]:
            matrix = np.ascontiguousarray(matrix)
        return matrix, matrix.ctypes.data_as(ctypes.POINTER(ctypes.c_double))

    def apply_1q(
        self, states: np.ndarray, matrix: np.ndarray, wire: int, n: int, tail: int
    ) -> bool:
        if not self._eligible(states, matrix):
            return False
        block = (1 << (n - wire - 1)) * tail
        groups = states.size // (2 * block)
        matrix, mptr = self._matrix_ptr(matrix)
        self._k1q(
            states.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            groups,
            block,
            mptr,
        )
        return True

    def apply_2q(
        self,
        states: np.ndarray,
        matrix: np.ndarray,
        wires: Sequence[int],
        n: int,
        tail: int,
    ) -> bool:
        if not self._eligible(states, matrix):
            return False
        w0, w1 = wires
        i, j = (w0, w1) if w0 < w1 else (w1, w0)
        block = (1 << (n - j - 1)) * tail
        mid = 1 << (j - i - 1)
        groups = states.size // (4 * mid * block)
        matrix, mptr = self._matrix_ptr(matrix)
        handled = self._k2q(
            states.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            groups,
            mid,
            block,
            mptr,
            self._vmaps[w0 > w1],
        )
        return bool(handled)

    def xor_into(self, dst: np.ndarray, src: np.ndarray) -> bool:
        """``dst ^= src`` over uint8 arrays; False when not eligible."""
        if (
            dst.dtype != np.uint8
            or src.dtype != np.uint8
            or not dst.flags["C_CONTIGUOUS"]
            or not src.flags["C_CONTIGUOUS"]
            or dst.size != src.size
        ):
            return False
        self._xor(
            dst.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte)),
            src.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte)),
            dst.size,
        )
        return True

    def xor_to(self, out: np.ndarray, a: np.ndarray, b: np.ndarray) -> bool:
        """``out = a ^ b`` over uint8 arrays in one pass; False when not eligible."""
        arrays = (out, a, b)
        if any(
            arr.dtype != np.uint8 or not arr.flags["C_CONTIGUOUS"]
            for arr in arrays
        ) or not (out.size == a.size == b.size):
            return False
        ptr = ctypes.POINTER(ctypes.c_ubyte)
        self._xor3(
            out.ctypes.data_as(ptr),
            a.ctypes.data_as(ptr),
            b.ctypes.data_as(ptr),
            out.size,
        )
        return True

    def fnv1a64(self, data) -> int:
        """FNV-1a 64 over a bytes-like object (accepts memoryview)."""
        view = memoryview(data)
        if not view.c_contiguous:
            view = memoryview(bytes(view))
        n = view.nbytes
        if n == 0:
            return 0xCBF29CE484222325
        # np.frombuffer is zero-copy even over read-only buffers, unlike
        # ctypes' from_buffer (writable-only) / from_buffer_copy (copies).
        arr = np.frombuffer(view, dtype=np.uint8).reshape(-1)
        return int(self._fnv(arr.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte)), n))


def _self_test(lib: CompiledKernels) -> Optional[str]:
    """Bitwise parity check against the numpy oracle; returns failure reason."""
    rng = np.random.default_rng(20250807)
    n, tail = 5, 6
    dim = 1 << n

    def fresh():
        raw = rng.standard_normal((dim, tail)) + 1j * rng.standard_normal((dim, tail))
        return np.ascontiguousarray(raw.astype(np.complex128))

    theta = 0.7853981
    cos, sin = np.cos(theta / 2), np.sin(theta / 2)
    ry = np.array([[cos, -sin], [sin, cos]], dtype=np.complex128)
    rz = np.diag([np.exp(-0.5j * theta), np.exp(0.5j * theta)]).astype(np.complex128)
    x = np.array([[0, 1], [1, 0]], dtype=np.complex128)
    cnot = np.eye(4, dtype=np.complex128)[[0, 1, 3, 2]]
    crz = np.diag([1, 1, np.exp(-0.5j * theta), np.exp(0.5j * theta)]).astype(
        np.complex128
    )
    dense4 = np.asarray(
        np.kron(ry, rz) @ cnot, dtype=np.complex128
    )  # no zero entries, exercises the general 4x4 path

    def oracle_1q(states, matrix, wire):
        block = 1 << (n - wire - 1)
        psi = states.reshape(-1, 1 << wire, 2, block * tail)
        a, b = psi[:, :, 0, :], psi[:, :, 1, :]
        m00, m01 = matrix[0, 0], matrix[0, 1]
        m10, m11 = matrix[1, 0], matrix[1, 1]
        if m01 == 0 and m10 == 0:
            if m00 != 1:
                a *= m00
            if m11 != 1:
                b *= m11
            return
        if m00 == 0 and m11 == 0:
            s0 = a.copy()
            np.multiply(b, m01, out=a)
            np.multiply(s0, m10, out=b)
            return
        s0 = np.multiply(a, m00)
        s1 = np.multiply(b, m01)
        s0 += s1
        np.multiply(a, m10, out=s1)
        b *= m11
        b += s1
        a[...] = s0

    for wire, matrix in ((0, ry), (2, rz), (4, x), (1, ry)):
        got, want = fresh(), None
        want = got.copy()
        if not lib.apply_1q(got, matrix, wire, n, tail):
            return "apply_1q rejected an eligible array"
        oracle_1q(want, matrix, wire)
        if not np.array_equal(
            got.view(np.float64), want.view(np.float64)
        ):
            return f"apply_1q bitwise mismatch on wire {wire}"

    from repro.quantum import kernels as _k

    for wires, matrix in (((1, 3), cnot), ((3, 1), cnot), ((0, 4), crz)):
        got = fresh()
        want = got.copy()
        if not lib.apply_2q(got, matrix, wires, n, tail):
            return "apply_2q rejected an eligible array"
        _k._apply_2q(want, matrix, wires, n, tail=tail)
        if not np.array_equal(got.view(np.float64), want.view(np.float64)):
            return f"apply_2q bitwise mismatch on wires {wires}"
    probe = fresh()
    if lib.apply_2q(probe, dense4, (2, 0), n, tail):
        return "apply_2q claimed the general dense path (must defer to numpy)"

    blob = rng.integers(0, 256, size=1031, dtype=np.uint8)
    other = rng.integers(0, 256, size=1031, dtype=np.uint8)
    got = blob.copy()
    if not lib.xor_into(got, other):
        return "xor_into rejected an eligible array"
    if not np.array_equal(got, blob ^ other):
        return "xor_into mismatch"
    out3 = np.zeros_like(blob)
    if not lib.xor_to(out3, blob, other):
        return "xor_to rejected eligible arrays"
    if not np.array_equal(out3, blob ^ other):
        return "xor_to mismatch"

    payload = bytes(blob[:257])
    h = 0xCBF29CE484222325
    for byte in payload:
        h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    if lib.fnv1a64(payload) != h:
        return "fnv1a64 mismatch"
    return None


def _probe() -> None:
    global _probed, _library, _reason
    compiler = _find_compiler()
    if compiler is None:
        _reason = "no C compiler found (set QCKPT_CC to override probing)"
        return
    try:
        so_path = _build(compiler)
        lib = CompiledKernels(ctypes.CDLL(so_path), so_path)
    except (OSError, RuntimeError, subprocess.SubprocessError, AttributeError) as exc:
        _reason = f"build/load failed: {exc}"
        return
    failure = _self_test(lib)
    if failure is not None:
        _reason = f"self-test failed ({failure}); staying on numpy"
        return
    _library = lib
    _reason = "ok"


def kernel_library() -> Optional[CompiledKernels]:
    """The loaded compiled library, probing (build + self-test) once."""
    global _probed
    with _lock:
        if not _probed:
            _probed = True
            _probe()
        return _library


def available() -> bool:
    return kernel_library() is not None


def availability_reason() -> str:
    """Why the tier is (un)available — surfaced by ``engine_info`` and errors."""
    kernel_library()
    return _reason


def reset_probe() -> None:
    """Forget the probe result so tests can re-probe under a different env."""
    global _probed, _library, _reason
    with _lock:
        _probed = False
        _library = None
        _reason = "not probed yet"
