"""Shot-based (finite-sample) measurement and expectation estimation.

Estimating ``<H>`` on hardware requires rotating each Pauli term into the
computational basis and sampling.  This module reproduces that pipeline on the
statevector simulator:

1. group Hamiltonian terms into qubit-wise commuting sets,
2. per group, apply the single-qubit basis rotations (H for X, H·S† for Y),
3. sample ``shots`` bitstrings from the Born distribution,
4. estimate each term as ``coeff * mean(parity)`` over its wires.

All randomness flows through an explicit ``numpy.random.Generator`` so that
shot noise is *reproducible* — the property the checkpoint layer relies on for
bitwise-exact resume of shot-based training.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ObservableError
from repro.quantum import gates as _gates
from repro.quantum import kernels as _kernels
from repro.quantum.observables import Hamiltonian, PauliString
from repro.quantum.statevector import apply_gate, n_qubits_of

# Rotation taking the Pauli eigenbasis to the computational basis.
_BASIS_ROTATIONS = {
    "X": _gates.HADAMARD,
    "Y": _gates.HADAMARD @ _gates.SDG_GATE,
    "Z": None,
}


def sample_bitstrings(
    state: np.ndarray, shots: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``shots`` basis-state indices from the Born distribution."""
    if shots < 1:
        raise ObservableError(f"shots must be >= 1, got {shots}")
    probs = np.abs(state) ** 2
    probs = probs / probs.sum()
    return rng.choice(len(probs), size=shots, p=probs)


def sample_counts(
    state: np.ndarray, shots: int, rng: np.random.Generator
) -> Dict[str, int]:
    """Histogram of sampled bitstrings keyed by e.g. ``"0101"``."""
    n = n_qubits_of(state)
    indices = sample_bitstrings(state, shots, rng)
    counts: Dict[str, int] = {}
    for index in indices:
        key = format(int(index), f"0{n}b")
        counts[key] = counts.get(key, 0) + 1
    return counts


def _measurement_basis(group: Sequence[PauliString]) -> Dict[int, str]:
    """Per-wire Pauli letter of a qubit-wise commuting group."""
    basis: Dict[int, str] = {}
    for term in group:
        for wire, letter in term.paulis:
            existing = basis.setdefault(wire, letter)
            if existing != letter:
                raise ObservableError(
                    f"terms do not commute qubit-wise on wire {wire}: "
                    f"{existing} vs {letter}"
                )
    return basis


def _rotate_to_computational(
    state: np.ndarray, basis: Dict[int, str], n_qubits: int
) -> np.ndarray:
    rotated = state
    for wire, letter in basis.items():
        rotation = _BASIS_ROTATIONS[letter]
        if rotation is not None:
            rotated = apply_gate(rotated, rotation, (wire,), n_qubits)
    return rotated


def _parity_values(
    indices: np.ndarray, wires: Sequence[int], n_qubits: int
) -> np.ndarray:
    """Map basis indices to the ±1 parity product over ``wires``."""
    values = np.ones(len(indices), dtype=np.float64)
    for wire in wires:
        bit = (indices >> (n_qubits - 1 - wire)) & 1
        values *= 1.0 - 2.0 * bit
    return values


def estimate_expectation(
    state: np.ndarray,
    observable: "Hamiltonian | PauliString",
    shots: int,
    rng: np.random.Generator,
) -> float:
    """Shot-based estimate of ``<state|observable|state>``.

    Every qubit-wise commuting group receives ``shots`` samples (the standard
    uniform-allocation baseline).  Identity terms are added exactly.
    """
    if isinstance(observable, PauliString):
        observable = Hamiltonian([observable])
    n = n_qubits_of(state)
    total = 0.0
    groups = observable.qubitwise_commuting_groups()
    for group in groups:
        exact = [term for term in group if term.is_identity]
        sampled = [term for term in group if not term.is_identity]
        total += sum(term.coeff for term in exact)
        if not sampled:
            continue
        basis = _measurement_basis(sampled)
        rotated = _rotate_to_computational(state, basis, n)
        indices = sample_bitstrings(rotated, shots, rng)
        for term in sampled:
            parities = _parity_values(indices, term.wires, n)
            total += term.coeff * float(parities.mean())
    return total


def estimate_expectation_batch(
    states: np.ndarray,
    observable: "Hamiltonian | PauliString",
    shots: int,
    rng: np.random.Generator,
    columns: bool = False,
) -> np.ndarray:
    """Shot-based estimates for a batch of states in one vectorized pass.

    The batched analog of :func:`estimate_expectation`, built for the shift
    rule: all ``B`` shifted statevectors of a gradient share their basis
    rotations and Born-probability computation, so per measurement group the
    rotation runs as *one* batched kernel sweep over the amplitude-major
    ``(2**n, B)`` array and the probabilities as one vectorized
    ``|amplitudes|^2`` — only the ``rng`` draws stay per-state (sampling is
    inherently sequential on a shared generator).

    ``states`` is ``(B, 2**n)`` row-major, or amplitude-major ``(2**n, B)``
    with ``columns=True`` (what :func:`repro.quantum.kernels.run_shifted_batch`
    emits natively).  Draws happen in state-major order — state 0's groups,
    then state 1's — matching a sequential per-state estimate loop, so the
    consumed random stream does not depend on the batch split.  Returns a
    ``(B,)`` float64 array.
    """
    if shots < 1:
        raise ObservableError(f"shots must be >= 1, got {shots}")
    if isinstance(observable, PauliString):
        observable = Hamiltonian([observable])
    states = np.asarray(states)
    if states.ndim != 2:
        raise ObservableError(
            f"states must be a 2-d batch, got shape {states.shape}"
        )
    cols = states if columns else states.T
    dim, batch = cols.shape
    n = int(round(np.log2(dim)))
    if 2**n != dim:
        raise ObservableError(
            f"state dimension {dim} is not a power of two"
        )
    exact = 0.0
    measured: List[Tuple[np.ndarray, List[PauliString]]] = []
    for group in observable.qubitwise_commuting_groups():
        exact += sum(term.coeff for term in group if term.is_identity)
        sampled = [term for term in group if not term.is_identity]
        if not sampled:
            continue
        basis = _measurement_basis(sampled)
        # order="C": the in-place kernels need a contiguous amplitude-major
        # buffer (a transposed row-major batch arrives Fortran-ordered).
        rotated = np.array(cols, dtype=np.complex128, order="C", copy=True)
        for wire, letter in basis.items():
            rotation = _BASIS_ROTATIONS[letter]
            if rotation is not None:
                _kernels.apply_matrix_inplace(
                    rotated, rotation, (wire,), n, tail=batch
                )
        probs = np.abs(rotated) ** 2
        probs /= probs.sum(axis=0)
        measured.append((probs, sampled))
    totals = np.full(batch, exact, dtype=np.float64)
    for b in range(batch):
        for probs, sampled in measured:
            indices = rng.choice(dim, size=shots, p=probs[:, b])
            for term in sampled:
                parities = _parity_values(indices, term.wires, n)
                totals[b] += term.coeff * float(parities.mean())
    return totals


def estimate_variance_bound(
    observable: "Hamiltonian | PauliString", shots: int
) -> float:
    """Worst-case variance of the estimator: ``sum coeff^2 / shots``.

    Each Pauli term's single-shot outcome is ±1, so its estimator variance is
    at most ``coeff^2 / shots``; groups are sampled independently.
    """
    if isinstance(observable, PauliString):
        observable = Hamiltonian([observable])
    return float(
        sum(term.coeff**2 for term in observable.terms if not term.is_identity)
        / shots
    )
