"""Parameterized circuit intermediate representation.

A :class:`Circuit` is an ordered list of :class:`Operation` objects over a
fixed number of qubits.  Gate parameters are either concrete floats
(constants, e.g. encoded data) or :class:`Param` references into a flat
trainable parameter vector that is supplied at execution time.  This split is
what makes circuits *checkpointable*: the trainable vector lives in the
training snapshot while the circuit structure is captured once as a JSON
document plus a SHA-256 fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import CircuitError
from repro.quantum import gates as _gates


@dataclass(frozen=True)
class Param:
    """Reference to entry ``index`` of the trainable parameter vector."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise CircuitError(f"parameter index must be >= 0, got {self.index}")


ParamValue = Union[float, Param]


@dataclass(frozen=True)
class Operation:
    """A single gate application: name, target wires, and parameter slots."""

    gate: str
    wires: Tuple[int, ...]
    params: Tuple[ParamValue, ...] = ()

    def __post_init__(self) -> None:
        spec = _gates.spec_for(self.gate)
        object.__setattr__(self, "gate", spec.name)
        object.__setattr__(self, "wires", tuple(int(w) for w in self.wires))
        object.__setattr__(self, "params", tuple(self.params))
        if len(self.wires) != spec.n_wires:
            raise CircuitError(
                f"gate {spec.name!r} acts on {spec.n_wires} wire(s), "
                f"got {len(self.wires)}"
            )
        if len(set(self.wires)) != len(self.wires):
            raise CircuitError(f"duplicate wires in {self.wires}")
        if len(self.params) != spec.n_params:
            raise CircuitError(
                f"gate {spec.name!r} takes {spec.n_params} parameter(s), "
                f"got {len(self.params)}"
            )
        for p in self.params:
            if not isinstance(p, (Param, float, int)):
                raise CircuitError(f"invalid parameter value {p!r}")

    @property
    def is_trainable(self) -> bool:
        """True when at least one parameter slot references the trainable vector."""
        return any(isinstance(p, Param) for p in self.params)

    def resolve(self, values: Sequence[float]) -> Tuple[float, ...]:
        """Return concrete parameter values given the trainable vector."""
        out = []
        for p in self.params:
            if isinstance(p, Param):
                out.append(float(values[p.index]))
            else:
                out.append(float(p))
        return tuple(out)

    def matrix(self, values: Sequence[float] = ()) -> np.ndarray:
        """Return the gate matrix with parameters resolved against ``values``."""
        return _gates.matrix_for(self.gate, self.resolve(values))


class Circuit:
    """An ordered sequence of gate operations on ``n_qubits`` wires."""

    def __init__(self, n_qubits: int):
        if n_qubits < 1:
            raise CircuitError(f"n_qubits must be >= 1, got {n_qubits}")
        self.n_qubits = int(n_qubits)
        self.ops: List[Operation] = []
        self._n_params = 0

    # -- construction -------------------------------------------------------

    def new_param(self) -> Param:
        """Allocate the next trainable parameter slot."""
        param = Param(self._n_params)
        self._n_params += 1
        return param

    def new_params(self, count: int) -> List[Param]:
        """Allocate ``count`` consecutive trainable parameter slots."""
        return [self.new_param() for _ in range(count)]

    def append(
        self,
        gate: str,
        wires: Sequence[int] | int,
        params: Sequence[ParamValue] = (),
    ) -> "Circuit":
        """Append a gate; returns ``self`` for chaining."""
        if isinstance(wires, int):
            wires = (wires,)
        op = Operation(gate, tuple(wires), tuple(params))
        for w in op.wires:
            if not 0 <= w < self.n_qubits:
                raise CircuitError(
                    f"wire {w} out of range for {self.n_qubits}-qubit circuit"
                )
        for p in op.params:
            if isinstance(p, Param):
                self._n_params = max(self._n_params, p.index + 1)
        self.ops.append(op)
        return self

    # Convenience builders; each returns self for chaining. ------------------

    def h(self, wire: int) -> "Circuit":
        """Append a Hadamard gate on ``wire``."""
        return self.append("h", wire)

    def x(self, wire: int) -> "Circuit":
        """Append a Pauli-X (NOT) gate on ``wire``."""
        return self.append("x", wire)

    def y(self, wire: int) -> "Circuit":
        """Append a Pauli-Y gate on ``wire``."""
        return self.append("y", wire)

    def z(self, wire: int) -> "Circuit":
        """Append a Pauli-Z gate on ``wire``."""
        return self.append("z", wire)

    def s(self, wire: int) -> "Circuit":
        """Append an S (phase) gate on ``wire``."""
        return self.append("s", wire)

    def t(self, wire: int) -> "Circuit":
        """Append a T (pi/8) gate on ``wire``."""
        return self.append("t", wire)

    def cnot(self, control: int, target: int) -> "Circuit":
        """Append a CNOT with ``control`` and ``target``."""
        return self.append("cnot", (control, target))

    def cz(self, control: int, target: int) -> "Circuit":
        """Append a controlled-Z between ``control`` and ``target``."""
        return self.append("cz", (control, target))

    def swap(self, a: int, b: int) -> "Circuit":
        """Append a SWAP of wires ``a`` and ``b``."""
        return self.append("swap", (a, b))

    def toffoli(self, c1: int, c2: int, target: int) -> "Circuit":
        """Append a Toffoli (CCX) with controls ``c1``, ``c2``."""
        return self.append("toffoli", (c1, c2, target))

    def rx(self, wire: int, theta: ParamValue) -> "Circuit":
        """Append an X rotation ``exp(-i theta X / 2)`` on ``wire``."""
        return self.append("rx", wire, (theta,))

    def ry(self, wire: int, theta: ParamValue) -> "Circuit":
        """Append a Y rotation ``exp(-i theta Y / 2)`` on ``wire``."""
        return self.append("ry", wire, (theta,))

    def rz(self, wire: int, theta: ParamValue) -> "Circuit":
        """Append a Z rotation ``exp(-i theta Z / 2)`` on ``wire``."""
        return self.append("rz", wire, (theta,))

    def phase(self, wire: int, phi: ParamValue) -> "Circuit":
        """Append a phase gate ``diag(1, e^{i phi})`` on ``wire``."""
        return self.append("phase", wire, (phi,))

    def rot(
        self, wire: int, phi: ParamValue, theta: ParamValue, omega: ParamValue
    ) -> "Circuit":
        """Append a general rotation ``RZ(omega) RY(theta) RZ(phi)``."""
        return self.append("rot", wire, (phi, theta, omega))

    def crx(self, control: int, target: int, theta: ParamValue) -> "Circuit":
        """Append a controlled RX (control on ``control``)."""
        return self.append("crx", (control, target), (theta,))

    def cry(self, control: int, target: int, theta: ParamValue) -> "Circuit":
        """Append a controlled RY (control on ``control``)."""
        return self.append("cry", (control, target), (theta,))

    def crz(self, control: int, target: int, theta: ParamValue) -> "Circuit":
        """Append a controlled RZ (control on ``control``)."""
        return self.append("crz", (control, target), (theta,))

    def cphase(self, control: int, target: int, phi: ParamValue) -> "Circuit":
        """Append a controlled phase gate."""
        return self.append("cphase", (control, target), (phi,))

    def xx(self, a: int, b: int, theta: ParamValue) -> "Circuit":
        """Append the Ising coupling ``exp(-i theta XX / 2)``."""
        return self.append("xx", (a, b), (theta,))

    def yy(self, a: int, b: int, theta: ParamValue) -> "Circuit":
        """Append the Ising coupling ``exp(-i theta YY / 2)``."""
        return self.append("yy", (a, b), (theta,))

    def zz(self, a: int, b: int, theta: ParamValue) -> "Circuit":
        """Append the Ising coupling ``exp(-i theta ZZ / 2)``."""
        return self.append("zz", (a, b), (theta,))

    # -- composition ---------------------------------------------------------

    def extend(self, other: "Circuit") -> "Circuit":
        """Append all operations of ``other`` (same width) to this circuit.

        Trainable parameter indices of ``other`` are preserved, not re-based:
        both circuits are assumed to share one parameter vector.
        """
        if other.n_qubits != self.n_qubits:
            raise CircuitError(
                f"cannot extend {self.n_qubits}-qubit circuit with "
                f"{other.n_qubits}-qubit circuit"
            )
        for op in other.ops:
            self.append(op.gate, op.wires, op.params)
        return self

    def copy(self) -> "Circuit":
        """Return a structural copy sharing no mutable state."""
        dup = Circuit(self.n_qubits)
        dup.ops = list(self.ops)
        dup._n_params = self._n_params
        return dup

    _SELF_INVERSE = {
        "i", "x", "y", "z", "h", "cnot", "cz", "swap", "toffoli", "fredkin",
    }
    _INVERSE_NAME = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}

    def adjoint(self) -> "Circuit":
        """Return the inverse circuit (reversed order, inverted gates).

        Parametric exponential-form gates invert by negating parameters; this
        only works for concrete (constant) parameters, so circuits with
        :class:`Param` slots cannot be inverted structurally.
        """
        inv = Circuit(self.n_qubits)
        for op in reversed(self.ops):
            if op.gate in self._SELF_INVERSE:
                inv.append(op.gate, op.wires)
            elif op.gate in self._INVERSE_NAME:
                inv.append(self._INVERSE_NAME[op.gate], op.wires)
            elif _gates.spec_for(op.gate).n_params > 0:
                negated = []
                for p in op.params:
                    if isinstance(p, Param):
                        raise CircuitError(
                            "cannot invert a circuit with unbound Param slots"
                        )
                    negated.append(-float(p))
                inv.append(op.gate, op.wires, tuple(negated))
            else:
                raise CircuitError(f"gate {op.gate!r} has no registered inverse")
        return inv

    def bind(self, values: Sequence[float]) -> "Circuit":
        """Return a copy with every Param slot replaced by its concrete value."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n_params,):
            raise CircuitError(
                f"expected {self.n_params} parameter values, got {values.shape}"
            )
        bound = Circuit(self.n_qubits)
        for op in self.ops:
            bound.append(op.gate, op.wires, op.resolve(values))
        return bound

    # -- inspection ----------------------------------------------------------

    @property
    def n_params(self) -> int:
        """Size of the trainable parameter vector this circuit expects."""
        return self._n_params

    @property
    def trainable_ops(self) -> List[Tuple[int, Operation]]:
        """(position, op) pairs for operations with trainable parameters."""
        return [(i, op) for i, op in enumerate(self.ops) if op.is_trainable]

    def depth(self) -> int:
        """Circuit depth: longest chain of gates over any wire."""
        frontier = [0] * self.n_qubits
        for op in self.ops:
            layer = max(frontier[w] for w in op.wires) + 1
            for w in op.wires:
                frontier[w] = layer
        return max(frontier, default=0)

    def gate_counts(self) -> dict:
        """Histogram of gate names."""
        counts: dict = {}
        for op in self.ops:
            counts[op.gate] = counts.get(op.gate, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self.n_qubits == other.n_qubits
            and self._n_params == other._n_params
            and self.ops == other.ops
        )

    def __repr__(self) -> str:
        return (
            f"Circuit(n_qubits={self.n_qubits}, n_ops={len(self.ops)}, "
            f"n_params={self.n_params}, depth={self.depth()})"
        )

    # -- serialization --------------------------------------------------------

    def to_json(self) -> dict:
        """Serialize structure to a JSON-compatible dict."""
        ops = []
        for op in self.ops:
            params = []
            for p in op.params:
                if isinstance(p, Param):
                    params.append({"param": p.index})
                else:
                    params.append(float(p))
            ops.append({"gate": op.gate, "wires": list(op.wires), "params": params})
        return {
            "n_qubits": self.n_qubits,
            "n_params": self._n_params,
            "ops": ops,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Circuit":
        """Reconstruct a circuit from :meth:`to_json` output."""
        try:
            circuit = cls(int(data["n_qubits"]))
            for entry in data["ops"]:
                params: List[ParamValue] = []
                for p in entry.get("params", []):
                    if isinstance(p, dict):
                        params.append(Param(int(p["param"])))
                    else:
                        params.append(float(p))
                circuit.append(entry["gate"], tuple(entry["wires"]), tuple(params))
            circuit._n_params = max(circuit._n_params, int(data.get("n_params", 0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise CircuitError(f"malformed circuit JSON: {exc}") from exc
        return circuit

    def fingerprint(self) -> str:
        """SHA-256 hex digest of the canonical JSON structure.

        Used by checkpoint compatibility checks: a snapshot is only resumable
        into a trainer whose circuit has the identical fingerprint.
        """
        canonical = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def concat(circuits: Iterable[Circuit]) -> Circuit:
    """Concatenate same-width circuits into a new circuit (shared params)."""
    iterator = iter(circuits)
    try:
        first = next(iterator)
    except StopIteration:
        raise CircuitError("concat() requires at least one circuit") from None
    out = first.copy()
    for circuit in iterator:
        out.extend(circuit)
    return out
