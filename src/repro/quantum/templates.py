"""Variational ansatz templates.

Each builder returns a fresh :class:`~repro.quantum.circuit.Circuit` whose
trainable parameters are allocated contiguously from index 0.  The parameter
count is available as ``circuit.n_params`` and is what the checkpointing layer
snapshots.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import CircuitError
from repro.quantum.circuit import Circuit

_ROTATION_GATES = {"rx", "ry", "rz"}


def hardware_efficient(
    n_qubits: int,
    n_layers: int,
    rotations: Sequence[str] = ("ry", "rz"),
    entangler: str = "cnot",
    ring: bool = True,
) -> Circuit:
    """Hardware-efficient ansatz: per-qubit rotations + entangling ladder.

    Parameters per layer: ``n_qubits * len(rotations)``.
    """
    for gate in rotations:
        if gate not in _ROTATION_GATES:
            raise CircuitError(f"rotation gate must be one of {_ROTATION_GATES}")
    if entangler not in {"cnot", "cz"}:
        raise CircuitError(f"entangler must be 'cnot' or 'cz', got {entangler!r}")
    circuit = Circuit(n_qubits)
    for _layer in range(n_layers):
        for wire in range(n_qubits):
            for gate in rotations:
                circuit.append(gate, wire, (circuit.new_param(),))
        if n_qubits > 1:
            last = n_qubits if ring and n_qubits > 2 else n_qubits - 1
            for wire in range(last):
                circuit.append(entangler, (wire, (wire + 1) % n_qubits))
    return circuit


def strongly_entangling(
    n_qubits: int, n_layers: int, ranges: Sequence[int] | None = None
) -> Circuit:
    """Strongly entangling layers (Schuld et al.): Rot + ranged CNOT ring.

    Parameters per layer: ``3 * n_qubits``.
    """
    if ranges is None:
        ranges = [
            (layer % max(1, n_qubits - 1)) + 1 for layer in range(n_layers)
        ]
    if len(ranges) != n_layers:
        raise CircuitError(
            f"expected {n_layers} entangling ranges, got {len(ranges)}"
        )
    circuit = Circuit(n_qubits)
    for layer in range(n_layers):
        for wire in range(n_qubits):
            circuit.rot(
                wire,
                circuit.new_param(),
                circuit.new_param(),
                circuit.new_param(),
            )
        if n_qubits > 1:
            r = ranges[layer] % n_qubits
            if r == 0:
                r = 1
            for wire in range(n_qubits):
                circuit.cnot(wire, (wire + r) % n_qubits)
    return circuit


def qaoa_maxcut(
    n_qubits: int, edges: Iterable[Tuple[int, int]], n_layers: int
) -> Circuit:
    """QAOA ansatz for MaxCut: H layer, then alternating ZZ-cost / RX-mixer.

    Parameters: ``2 * n_layers`` — one gamma and one beta per layer, shared
    across all edges/qubits of that layer (the standard QAOA structure, which
    also exercises *shared* parameter slots in the autodiff stack).
    """
    edges = [tuple(edge) for edge in edges]
    circuit = Circuit(n_qubits)
    for wire in range(n_qubits):
        circuit.h(wire)
    for _layer in range(n_layers):
        gamma = circuit.new_param()
        for a, b in edges:
            circuit.zz(a, b, gamma)
        beta = circuit.new_param()
        for wire in range(n_qubits):
            circuit.rx(wire, beta)
    return circuit


def real_amplitudes(n_qubits: int, n_layers: int) -> Circuit:
    """RY-only ansatz (real amplitudes), common for chemistry workloads."""
    return hardware_efficient(
        n_qubits, n_layers, rotations=("ry",), entangler="cnot", ring=False
    )


def initial_parameters(
    circuit: Circuit, rng: np.random.Generator, scale: float = 0.1
) -> np.ndarray:
    """Small random initial parameter vector for ``circuit``."""
    return scale * rng.standard_normal(circuit.n_params)
