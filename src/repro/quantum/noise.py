"""Stochastic noise channels via Kraus unraveling on statevectors.

A Kraus channel ``rho -> sum_i K_i rho K_i†`` is simulated on pure states by
drawing outcome ``i`` with probability ``||K_i |psi>||^2`` and renormalizing
(quantum-trajectory / Monte-Carlo wavefunction method).  This keeps memory at
O(2^n) instead of the O(4^n) a density matrix would need, matching how noisy
simulation is done at checkpointable scale.

All randomness flows through an explicit generator so noisy runs resume
deterministically from a checkpointed RNG state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import CircuitError
from repro.quantum import gates as _gates
from repro.quantum.circuit import Circuit
from repro.quantum.statevector import (
    COMPLEX_DTYPE,
    apply_gate,
    n_qubits_of,
    zero_state,
)


def bit_flip_kraus(p: float) -> List[np.ndarray]:
    """Bit-flip channel: X with probability ``p``."""
    _check_probability(p)
    return [np.sqrt(1 - p) * _gates.I2, np.sqrt(p) * _gates.PAULI_X]


def phase_flip_kraus(p: float) -> List[np.ndarray]:
    """Phase-flip channel: Z with probability ``p``."""
    _check_probability(p)
    return [np.sqrt(1 - p) * _gates.I2, np.sqrt(p) * _gates.PAULI_Z]


def depolarizing_kraus(p: float) -> List[np.ndarray]:
    """Single-qubit depolarizing channel with error probability ``p``."""
    _check_probability(p)
    return [
        np.sqrt(1 - p) * _gates.I2,
        np.sqrt(p / 3) * _gates.PAULI_X,
        np.sqrt(p / 3) * _gates.PAULI_Y,
        np.sqrt(p / 3) * _gates.PAULI_Z,
    ]


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """Amplitude damping (T1 decay) with decay probability ``gamma``."""
    _check_probability(gamma)
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=COMPLEX_DTYPE)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=COMPLEX_DTYPE)
    return [k0, k1]


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise CircuitError(f"probability must be in [0, 1], got {p}")


def apply_kraus_channel(
    state: np.ndarray,
    kraus: Sequence[np.ndarray],
    wire: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Apply a single-qubit Kraus channel to ``wire`` by trajectory sampling."""
    n = n_qubits_of(state)
    candidates = [apply_gate(state, k, (wire,), n) for k in kraus]
    norms = np.array([float(np.vdot(c, c).real) for c in candidates])
    total = norms.sum()
    if total <= 0:
        raise CircuitError("Kraus channel annihilated the state")
    probs = norms / total
    outcome = int(rng.choice(len(kraus), p=probs))
    chosen = candidates[outcome]
    return chosen / np.sqrt(norms[outcome])


@dataclass(frozen=True)
class NoiseModel:
    """Per-gate noise applied to every wire a gate touches.

    Probabilities compose multiplicatively per gate application; set a field
    to 0.0 to disable that channel.
    """

    depolarizing: float = 0.0
    bit_flip: float = 0.0
    phase_flip: float = 0.0
    amplitude_damping: float = 0.0

    def __post_init__(self) -> None:
        for value in (
            self.depolarizing,
            self.bit_flip,
            self.phase_flip,
            self.amplitude_damping,
        ):
            _check_probability(value)

    @property
    def is_trivial(self) -> bool:
        return (
            self.depolarizing == 0.0
            and self.bit_flip == 0.0
            and self.phase_flip == 0.0
            and self.amplitude_damping == 0.0
        )

    def channels(self) -> List[List[np.ndarray]]:
        """Kraus operator lists for all enabled channels."""
        out = []
        if self.depolarizing > 0:
            out.append(depolarizing_kraus(self.depolarizing))
        if self.bit_flip > 0:
            out.append(bit_flip_kraus(self.bit_flip))
        if self.phase_flip > 0:
            out.append(phase_flip_kraus(self.phase_flip))
        if self.amplitude_damping > 0:
            out.append(amplitude_damping_kraus(self.amplitude_damping))
        return out


def run_noisy(
    circuit: Circuit,
    params: Optional[Sequence[float]],
    noise: NoiseModel,
    rng: np.random.Generator,
    initial_state: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Execute one noisy trajectory of ``circuit``."""
    values = np.zeros(circuit.n_params) if params is None else np.asarray(params)
    state = (
        zero_state(circuit.n_qubits)
        if initial_state is None
        else np.array(initial_state, dtype=COMPLEX_DTYPE, copy=True)
    )
    channels = noise.channels()
    for op in circuit.ops:
        state = apply_gate(state, op.matrix(values), op.wires, circuit.n_qubits)
        for wire in op.wires:
            for kraus in channels:
                state = apply_kraus_channel(state, kraus, wire, rng)
    return state


def noisy_expectation(
    circuit: Circuit,
    params: Optional[Sequence[float]],
    observable,
    noise: NoiseModel,
    rng: np.random.Generator,
    trajectories: int = 32,
) -> float:
    """Average observable over ``trajectories`` independent noisy runs."""
    if trajectories < 1:
        raise CircuitError(f"trajectories must be >= 1, got {trajectories}")
    total = 0.0
    for _ in range(trajectories):
        state = run_noisy(circuit, params, noise, rng)
        total += float(observable.expectation(state))
    return total / trajectories
