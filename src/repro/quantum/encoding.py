"""Classical-data feature maps (encoders).

Encoders turn a classical feature vector into either a circuit prefix with
*constant* gate parameters (angle/IQP/basis encoding) or directly into an
initial statevector (amplitude encoding).  Encoded circuits carry no trainable
parameters, so a model's full circuit is ``encoder(x) + ansatz(params)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CircuitError
from repro.quantum.circuit import Circuit
from repro.quantum.statevector import COMPLEX_DTYPE


def angle_encoding(
    x: Sequence[float], n_qubits: int, rotation: str = "ry"
) -> Circuit:
    """One rotation per qubit with angle ``x[i]`` (features cycle over wires)."""
    if rotation not in {"rx", "ry", "rz"}:
        raise CircuitError(f"rotation must be rx/ry/rz, got {rotation!r}")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise CircuitError(f"feature vector must be 1-D and non-empty, got {x.shape}")
    circuit = Circuit(n_qubits)
    if rotation == "rz":
        # RZ on |0> is a global phase; prepend H so the encoding is non-trivial.
        for wire in range(n_qubits):
            circuit.h(wire)
    for i in range(max(n_qubits, x.size)):
        wire = i % n_qubits
        circuit.append(rotation, wire, (float(x[i % x.size]),))
    return circuit


def iqp_encoding(x: Sequence[float], n_qubits: int, depth: int = 1) -> Circuit:
    """IQP-style encoding: H layer, RZ(x_i), then ZZ(x_i * x_j) couplings."""
    x = np.asarray(x, dtype=np.float64)
    if x.size < n_qubits:
        x = np.resize(x, n_qubits)
    circuit = Circuit(n_qubits)
    for _ in range(depth):
        for wire in range(n_qubits):
            circuit.h(wire)
        for wire in range(n_qubits):
            circuit.rz(wire, float(x[wire]))
        for a in range(n_qubits - 1):
            b = a + 1
            circuit.zz(a, b, float(x[a] * x[b]))
    return circuit


def basis_encoding(bits: Sequence[int], n_qubits: int) -> Circuit:
    """X gates on wires whose bit is 1."""
    circuit = Circuit(n_qubits)
    for wire, bit in enumerate(bits):
        if wire >= n_qubits:
            raise CircuitError(
                f"bitstring of length {len(bits)} exceeds {n_qubits} qubits"
            )
        if bit not in (0, 1):
            raise CircuitError(f"bits must be 0/1, got {bit!r}")
        if bit:
            circuit.x(wire)
    return circuit


def amplitude_state(x: Sequence[float], n_qubits: int) -> np.ndarray:
    """Normalize ``x`` (zero-padded) into a ``2**n_qubits`` statevector."""
    x = np.asarray(x, dtype=np.float64)
    dim = 2**n_qubits
    if x.size > dim:
        raise CircuitError(
            f"feature vector of size {x.size} exceeds 2^{n_qubits} amplitudes"
        )
    padded = np.zeros(dim, dtype=COMPLEX_DTYPE)
    padded[: x.size] = x
    norm = np.linalg.norm(padded)
    if norm == 0:
        raise CircuitError("cannot amplitude-encode the zero vector")
    return padded / norm
