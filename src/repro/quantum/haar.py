"""Haar-random states, unitaries, and random circuits.

Used by the benchmark workload generator: the paper's statevector checkpoints
are "generic" quantum states, for which Haar-random vectors are the standard
stand-in.  The unitary sampler follows Mezzadri's QR-based construction, which
is exactly Haar-distributed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import CircuitError
from repro.quantum.circuit import Circuit
from repro.quantum.observables import PauliString
from repro.quantum.statevector import COMPLEX_DTYPE


def haar_unitary(dim: int, rng: np.random.Generator) -> np.ndarray:
    """Sample a Haar-random ``dim x dim`` unitary (Mezzadri 2007)."""
    if dim < 1:
        raise CircuitError(f"dim must be >= 1, got {dim}")
    ginibre = rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))
    q, r = np.linalg.qr(ginibre)
    phases = np.diagonal(r).copy()
    phases = phases / np.abs(phases)
    return (q * phases).astype(COMPLEX_DTYPE)


def haar_state(n_qubits: int, rng: np.random.Generator) -> np.ndarray:
    """Sample a Haar-random ``n_qubits`` pure state."""
    dim = 2**n_qubits
    vec = rng.standard_normal(dim) + 1j * rng.standard_normal(dim)
    return (vec / np.linalg.norm(vec)).astype(COMPLEX_DTYPE)


def random_pauli_string(
    n_qubits: int,
    rng: np.random.Generator,
    max_weight: Optional[int] = None,
    coeff_scale: float = 1.0,
) -> PauliString:
    """Sample a random non-identity Pauli string of bounded weight."""
    if max_weight is None:
        max_weight = n_qubits
    weight = int(rng.integers(1, max_weight + 1))
    wires = rng.choice(n_qubits, size=weight, replace=False)
    letters = rng.choice(["X", "Y", "Z"], size=weight)
    coeff = float(coeff_scale * rng.standard_normal())
    if coeff == 0.0:
        coeff = coeff_scale
    return PauliString(coeff, tuple((int(w), str(p)) for w, p in zip(wires, letters)))


_FIXED_POOL_1Q = ["h", "x", "y", "z", "s", "t"]
_FIXED_POOL_2Q = ["cnot", "cz", "swap"]
_PARAM_POOL_1Q = ["rx", "ry", "rz"]
_PARAM_POOL_2Q = ["crx", "crz", "zz"]


def random_circuit(
    n_qubits: int,
    n_gates: int,
    rng: np.random.Generator,
    p_two_qubit: float = 0.3,
    parametric: bool = False,
) -> Circuit:
    """Sample a random circuit; with ``parametric`` gates get constant angles."""
    circuit = Circuit(n_qubits)
    for _ in range(n_gates):
        two_qubit = n_qubits > 1 and rng.random() < p_two_qubit
        if two_qubit:
            pool = _PARAM_POOL_2Q if parametric else _FIXED_POOL_2Q
            gate = str(rng.choice(pool))
            wires = tuple(int(w) for w in rng.choice(n_qubits, 2, replace=False))
        else:
            pool = _PARAM_POOL_1Q if parametric else _FIXED_POOL_1Q
            gate = str(rng.choice(pool))
            wires = (int(rng.integers(n_qubits)),)
        if parametric:
            circuit.append(gate, wires, (float(rng.uniform(0, 2 * np.pi)),))
        else:
            circuit.append(gate, wires)
    return circuit
