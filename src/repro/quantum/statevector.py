"""Statevector simulation engine.

State layout: an ``n``-qubit pure state is a contiguous ``complex128`` array
of length ``2**n``.  Qubit 0 is the *most significant* bit of the basis index,
so ``|q0 q1 ... q_{n-1}>`` lives at index ``q0*2^{n-1} + ... + q_{n-1}``.

Circuit execution runs on the fast in-place kernels of
:mod:`repro.quantum.kernels` (bit-indexed amplitude-pair updates, single-qubit
gate fusion, cached matrices, batched execution).  :func:`apply_gate` keeps
the original tensor-contraction path (``np.tensordot`` against the state
reshaped to ``(2,) * n``, the strategy PennyLane's ``default.qubit`` uses) as
the *reference kernel*: it is exact to machine precision, and the property
tests validate the fast engine against it gate-by-gate.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CircuitError
from repro.quantum import kernels as _kernels
from repro.quantum.circuit import Circuit

COMPLEX_DTYPE = np.complex128


def zero_state(n_qubits: int) -> np.ndarray:
    """Return ``|0...0>`` on ``n_qubits`` wires."""
    if n_qubits < 1:
        raise CircuitError(f"n_qubits must be >= 1, got {n_qubits}")
    state = np.zeros(2**n_qubits, dtype=COMPLEX_DTYPE)
    state[0] = 1.0
    return state


def basis_state(n_qubits: int, index: int) -> np.ndarray:
    """Return the computational basis state ``|index>``."""
    dim = 2**n_qubits
    if not 0 <= index < dim:
        raise CircuitError(f"basis index {index} out of range for {n_qubits} qubits")
    state = np.zeros(dim, dtype=COMPLEX_DTYPE)
    state[index] = 1.0
    return state


def n_qubits_of(state: np.ndarray) -> int:
    """Infer the qubit count of a statevector, validating its length."""
    size = state.shape[0]
    n = int(round(math.log2(size)))
    if 2**n != size or state.ndim != 1:
        raise CircuitError(f"state of shape {state.shape} is not a statevector")
    return n


def normalize(state: np.ndarray) -> np.ndarray:
    """Return ``state`` scaled to unit norm."""
    norm = np.linalg.norm(state)
    if norm == 0:
        raise CircuitError("cannot normalize the zero vector")
    return state / norm


def fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """Pure-state fidelity ``|<a|b>|^2``."""
    return float(abs(np.vdot(state_a, state_b)) ** 2)


def apply_gate(
    state: np.ndarray,
    matrix: np.ndarray,
    wires: Sequence[int],
    n_qubits: Optional[int] = None,
) -> np.ndarray:
    """Apply ``matrix`` to ``wires`` of ``state``; returns a new flat array.

    This is the tensor-contraction *reference kernel*.  The hot paths go
    through :mod:`repro.quantum.kernels`; this implementation is kept as the
    machine-precision oracle the fast kernels are validated against, and as
    the general fallback for ``k >= 3`` wires.
    """
    if n_qubits is None:
        n_qubits = n_qubits_of(state)
    k = len(wires)
    if matrix.shape != (2**k, 2**k):
        raise CircuitError(
            f"matrix of shape {matrix.shape} does not act on {k} wire(s)"
        )
    psi = state.reshape((2,) * n_qubits)
    gate = matrix.reshape((2,) * (2 * k))
    moved = np.tensordot(gate, psi, axes=(list(range(k, 2 * k)), list(wires)))
    result = np.moveaxis(moved, range(k), wires)
    return np.ascontiguousarray(result).reshape(-1)


def apply_circuit(
    circuit: Circuit,
    params: Optional[Sequence[float]] = None,
    initial_state: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run ``circuit`` with ``params`` and return the final statevector."""
    values = _check_params(circuit, params)
    if initial_state is not None and initial_state.shape[0] != 2**circuit.n_qubits:
        raise CircuitError(
            f"initial state has dimension {initial_state.shape[0]}, "
            f"circuit expects {2**circuit.n_qubits}"
        )
    return _kernels.run(circuit, values, initial_state=initial_state)


def iter_states(
    circuit: Circuit,
    params: Optional[Sequence[float]] = None,
    initial_state: Optional[np.ndarray] = None,
) -> Iterator[np.ndarray]:
    """Yield the statevector after each operation (for adjoint/debugging)."""
    values = _check_params(circuit, params)
    state = (
        zero_state(circuit.n_qubits)
        if initial_state is None
        else np.array(initial_state, dtype=COMPLEX_DTYPE, copy=True)
    )
    yield state
    for op in circuit.ops:
        state = state.copy()
        _kernels.apply_matrix_inplace(
            state,
            _kernels.cached_matrix(op.gate, op.resolve(values)),
            op.wires,
            circuit.n_qubits,
        )
        yield state


def _check_params(
    circuit: Circuit, params: Optional[Sequence[float]]
) -> np.ndarray:
    if params is None:
        params = np.zeros(0)
    values = np.asarray(params, dtype=np.float64)
    if values.ndim != 1 or values.shape[0] < circuit.n_params:
        raise CircuitError(
            f"circuit expects >= {circuit.n_params} parameters, "
            f"got shape {values.shape}"
        )
    return values


def probabilities(
    state: np.ndarray, wires: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Born-rule probabilities, optionally marginalized onto ``wires``.

    The returned array is indexed by the bitstring of ``wires`` in the order
    given (first wire = most significant bit).
    """
    n = n_qubits_of(state)
    probs = np.abs(state) ** 2
    if wires is None:
        return probs
    wires = tuple(wires)
    if len(set(wires)) != len(wires):
        raise CircuitError(f"duplicate wires in {wires}")
    for w in wires:
        if not 0 <= w < n:
            raise CircuitError(f"wire {w} out of range for {n}-qubit state")
    tensor = probs.reshape((2,) * n)
    keep = set(wires)
    other_axes = tuple(axis for axis in range(n) if axis not in keep)
    marginal = tensor.sum(axis=other_axes) if other_axes else tensor
    # Marginal axes correspond to the kept wires in increasing order; permute
    # them so that axis i corresponds to wires[i].
    perm = np.argsort(np.argsort(wires))
    marginal = np.transpose(marginal, axes=tuple(perm))
    return np.ascontiguousarray(marginal).reshape(-1)


class StatevectorSimulator:
    """Exact statevector executor with expectation-value helpers.

    The simulator is stateless between calls; all state lives in the returned
    arrays.  This mirrors how the checkpointing layer treats simulators: the
    only device state worth persisting is the statevector itself, which the
    caller owns.
    """

    def run(
        self,
        circuit: Circuit,
        params: Optional[Sequence[float]] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Execute ``circuit`` and return the final statevector."""
        return apply_circuit(circuit, params, initial_state)

    def run_batch(
        self,
        circuit: Circuit,
        params_batch,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Execute ``circuit`` for ``B`` parameter vectors in one batched sweep.

        Returns a ``(B, 2**n)`` array of final statevectors.  Gates shared by
        every batch element (fixed gates, constant encodings) are applied with
        one vectorized kernel call across the whole batch.
        """
        return _kernels.run_batch(circuit, params_batch, initial_state)

    def expectation_batch(
        self,
        circuit: Circuit,
        params_batch,
        observable,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``<psi_b|O|psi_b>`` for each parameter vector of a batch."""
        batch_fn = getattr(observable, "expectation_batch", None)
        if batch_fn is not None:
            states = _kernels.run_batch(
                circuit, params_batch, initial_state, columns=True
            )
            return np.asarray(batch_fn(states, columns=True), dtype=np.float64)
        states = self.run_batch(circuit, params_batch, initial_state)
        return np.array([float(observable.expectation(s)) for s in states])

    def expectation(
        self,
        circuit: Circuit,
        params: Optional[Sequence[float]],
        observable,
        initial_state: Optional[np.ndarray] = None,
    ) -> float:
        """Exact ``<psi|O|psi>`` for a PauliString or Hamiltonian observable."""
        state = self.run(circuit, params, initial_state)
        return float(observable.expectation(state))

    def expectations(
        self,
        circuit: Circuit,
        params: Optional[Sequence[float]],
        observables: Iterable,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Expectation values for several observables from one execution."""
        state = self.run(circuit, params, initial_state)
        return np.array([float(obs.expectation(state)) for obs in observables])

    def probabilities(
        self,
        circuit: Circuit,
        params: Optional[Sequence[float]] = None,
        wires: Optional[Sequence[int]] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Measurement probabilities after executing ``circuit``."""
        state = self.run(circuit, params, initial_state)
        return probabilities(state, wires)


def statevector_nbytes(n_qubits: int, dtype=COMPLEX_DTYPE) -> int:
    """Size in bytes of an ``n_qubits`` statevector at ``dtype`` precision."""
    return int(2**n_qubits) * np.dtype(dtype).itemsize
