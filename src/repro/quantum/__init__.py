"""Quantum-simulation substrate.

This subpackage is a from-scratch replacement for the statevector simulators
(PennyLane ``default.qubit`` / Qiskit ``Aer statevector``) that the paper's
experiments run on.  It provides:

* :mod:`repro.quantum.gates` — gate matrices, derivatives, and shift rules,
* :mod:`repro.quantum.circuit` — a parameterized circuit IR with JSON
  round-tripping and a structural fingerprint used by checkpoint compatibility
  checks,
* :mod:`repro.quantum.statevector` — the simulation engine,
* :mod:`repro.quantum.observables` — Pauli strings and Hamiltonians,
* :mod:`repro.quantum.sampling` — shot-based expectation estimation,
* :mod:`repro.quantum.templates` — variational ansatz builders,
* :mod:`repro.quantum.encoding` — classical-data feature maps,
* :mod:`repro.quantum.haar` — Haar-random states and unitaries,
* :mod:`repro.quantum.noise` — stochastic noise channels (trajectories),
* :mod:`repro.quantum.density` — exact density-matrix evolution (the
  deterministic reference for noisy simulation, O(4^n) memory).
"""

from repro.quantum.circuit import Circuit, Operation, Param
from repro.quantum.density import DensityMatrixSimulator
from repro.quantum.observables import Hamiltonian, PauliString
from repro.quantum.statevector import StatevectorSimulator, apply_gate, zero_state

__all__ = [
    "Circuit",
    "Operation",
    "Param",
    "PauliString",
    "Hamiltonian",
    "StatevectorSimulator",
    "DensityMatrixSimulator",
    "apply_gate",
    "zero_state",
]
