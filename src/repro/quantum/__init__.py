"""Quantum-simulation substrate.

This subpackage is a from-scratch replacement for the statevector simulators
(PennyLane ``default.qubit`` / Qiskit ``Aer statevector``) that the paper's
experiments run on.  It provides:

* :mod:`repro.quantum.gates` — gate matrices, derivatives, and shift rules,
* :mod:`repro.quantum.circuit` — a parameterized circuit IR with JSON
  round-tripping and a structural fingerprint used by checkpoint compatibility
  checks,
* :mod:`repro.quantum.statevector` — the simulation engine,
* :mod:`repro.quantum.kernels` — the fast execution engine under it:
  bit-indexed in-place 1- and 2-qubit gate kernels with diagonal and
  phase-permutation fast paths, single-qubit gate fusion, an LRU cache of
  resolved gate/derivative matrices, and batched execution
  (:func:`~repro.quantum.kernels.run_batch` /
  :func:`~repro.quantum.kernels.run_shifted_batch`) that evaluates many
  parameter vectors or shift-rule overrides as one amplitude-major
  ``(2**n, B)`` sweep — the engine behind
  ``StatevectorSimulator.run_batch`` and the batched gradients in
  :mod:`repro.autodiff`,
* :mod:`repro.quantum.observables` — Pauli strings and Hamiltonians,
* :mod:`repro.quantum.sampling` — shot-based expectation estimation,
* :mod:`repro.quantum.templates` — variational ansatz builders,
* :mod:`repro.quantum.encoding` — classical-data feature maps,
* :mod:`repro.quantum.haar` — Haar-random states and unitaries,
* :mod:`repro.quantum.noise` — stochastic noise channels (trajectories),
* :mod:`repro.quantum.density` — exact density-matrix evolution (the
  deterministic reference for noisy simulation, O(4^n) memory).
"""

from repro.quantum.circuit import Circuit, Operation, Param
from repro.quantum.density import DensityMatrixSimulator
from repro.quantum.observables import Hamiltonian, PauliString
from repro.quantum.statevector import StatevectorSimulator, apply_gate, zero_state

__all__ = [
    "Circuit",
    "Operation",
    "Param",
    "PauliString",
    "Hamiltonian",
    "StatevectorSimulator",
    "DensityMatrixSimulator",
    "apply_gate",
    "zero_state",
]
