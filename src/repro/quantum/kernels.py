"""Fast statevector execution engine: in-place kernels, caching, batching.

This module is the performance substrate under :mod:`repro.quantum.statevector`
and the shift-rule differentiators.  It replaces the reference
``tensordot`` + ``moveaxis`` + contiguous-copy gate application with three
layers:

1. **Specialized kernels** — 1-, 2-, and 3-qubit gates are applied by slicing
   the state into strided views at the target bit positions and updating
   amplitude tuples in place, with fast paths for diagonal matrices (``rz``,
   ``cz``, ``phase``) and phase-permutation matrices (``x``, ``cnot``,
   ``swap``, ``iswap``, ``toffoli``, ``fredkin``).  Gates on four or more
   wires fall back to the exact ``tensordot`` reference contraction.
   Adjacent single-qubit gates on the same wire are fused into one 2x2
   matmul before application.
2. **Matrix caching** — resolved gate matrices are cached per
   ``(gate, resolved-params)`` so the ``2P`` shifted executions of a gradient,
   each of which changes exactly one gate, stop rebuilding ``P`` unchanged
   matrices per run.  Analytic derivative matrices are cached the same way for
   the adjoint differentiator.
3. **Batched execution** — :func:`run_batch` and :func:`run_shifted_batch`
   stack ``B`` statevectors into one array and apply each gate across the
   whole batch in one vectorized operation.  Internally the batch axis is the
   *trailing* axis (``(2**n, B)``, amplitude-major) so that every kernel view
   touches contiguous blocks of at least ``B`` elements regardless of which
   wire the gate hits; row-major ``(B, 2**n)`` results are produced at the
   boundary on request.

State layout matches :mod:`repro.quantum.statevector`: qubit 0 is the most
significant bit of the basis index, so wire ``w`` of an ``n``-qubit state is
bit ``n - 1 - w``.  All kernels mutate their array argument in place.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CircuitError
from repro.quantum import gates as _gates
from repro.quantum.circuit import Circuit

COMPLEX_DTYPE = np.complex128

# overrides: {op_position: [(param_slot, value), ...]} — same shape the
# shift-rule differentiators use.
Overrides = Dict[int, List[Tuple[int, float]]]


# ---------------------------------------------------------------------------
# Engine-tier binding
# ---------------------------------------------------------------------------

# The compiled kernel tier (repro.quantum.engines.compiled) installs its
# ctypes facade here; hot kernels try it first and fall through to numpy when
# it is absent or an array is not eligible.  Selection is lazy: the first
# execution entry point resolves the QCKPT_ENGINE ladder via
# repro.quantum.engines, so importing this module never triggers a C build.
_COMPILED = None
_engine_resolved = False


def _set_compiled_kernels(lib) -> None:
    """Install (or clear) the compiled kernel facade; marks the tier chosen."""
    global _COMPILED, _engine_resolved
    _COMPILED = lib
    _engine_resolved = True


def _reset_engine_binding() -> None:
    """Forget the tier so the next execution re-resolves the ladder (tests)."""
    global _COMPILED, _engine_resolved
    _COMPILED = None
    _engine_resolved = False


def _ensure_engine() -> None:
    if not _engine_resolved:
        from repro.quantum import engines

        engines.active_engine()


# ---------------------------------------------------------------------------
# Matrix caching
# ---------------------------------------------------------------------------


@lru_cache(maxsize=16384)
def cached_matrix(gate: str, params: Tuple[float, ...]) -> np.ndarray:
    """Resolved gate matrix, cached per ``(gate, params)`` and frozen."""
    matrix = _gates.matrix_for(gate, params)
    matrix.setflags(write=False)
    return matrix


@lru_cache(maxsize=16384)
def cached_derivative(gate: str, params: Tuple[float, ...], k: int) -> np.ndarray:
    """Analytic gate derivative, cached per ``(gate, params, k)`` and frozen."""
    matrix = _gates.derivative_for(gate, params, k)
    matrix.setflags(write=False)
    return matrix


def cache_info(all_workers: bool = False) -> dict:
    """Hit/miss statistics of the matrix and derivative caches.

    ``all_workers=True`` additionally collects the same statistics from every
    live gradient-shard worker process (keyed ``"workers"``: a list of
    per-worker dicts), so tests can assert that cache priming actually
    happened inside shards and memory tooling sees the whole footprint.
    """
    info = {
        "matrix": cached_matrix.cache_info()._asdict(),
        "derivative": cached_derivative.cache_info()._asdict(),
    }
    if all_workers:
        from repro.quantum.engines import sharding

        info["workers"] = sharding.worker_cache_info()
    return info


# Other modules (e.g. the diagonal-sign cache in repro.quantum.observables)
# register their cache_clear callables here so clear_caches drops them too.
_EXTRA_CACHE_CLEARERS: List = []


def register_cache_clearer(clearer) -> None:
    """Register a zero-argument callable to run on :func:`clear_caches`."""
    _EXTRA_CACHE_CLEARERS.append(clearer)


def clear_caches(all_workers: bool = False) -> None:
    """Drop all engine caches (used by tests and memory-pressure tooling).

    ``all_workers=True`` also clears the caches of every live gradient-shard
    worker process, so a memory-pressure drop reaches the whole fan-out.
    """
    cached_matrix.cache_clear()
    cached_derivative.cache_clear()
    for clearer in _EXTRA_CACHE_CLEARERS:
        clearer()
    if all_workers:
        from repro.quantum.engines import sharding

        sharding.clear_worker_caches()


def prime_circuit_cache(circuit: Circuit, values: Sequence[float]) -> None:
    """Warm the matrix cache with every gate of ``circuit`` at ``values``.

    Called by the trainer at construction so the first step does not pay the
    cold-cache matrix builds for fixed and constant-parameter gates.
    """
    values = np.asarray(values, dtype=np.float64)
    for op in circuit.ops:
        cached_matrix(op.gate, op.resolve(values))


# ---------------------------------------------------------------------------
# Scratch management
# ---------------------------------------------------------------------------

# The 2-qubit general kernel needs four quarter-state buffers for the old
# amplitudes plus one accumulator quarter: 5/4 of the state size.


def make_scratch(state_size: int) -> np.ndarray:
    """Scratch buffer sized for every kernel on a ``state_size`` array."""
    return np.empty(state_size + (state_size >> 2) + 4, dtype=COMPLEX_DTYPE)


def _scratch_for(states: np.ndarray, scratch: Optional[np.ndarray]) -> np.ndarray:
    if scratch is None or scratch.size < states.size + (states.size >> 2):
        return make_scratch(states.size)
    return scratch


# ---------------------------------------------------------------------------
# 1-qubit kernels
# ---------------------------------------------------------------------------


def _apply_1q(
    states: np.ndarray,
    matrix: np.ndarray,
    wire: int,
    n: int,
    scratch: Optional[np.ndarray] = None,
    tail: int = 1,
) -> None:
    """Apply a 2x2 matrix to ``wire`` in place.

    ``tail`` is the number of trailing batch columns: 1 for a flat ``(2**n,)``
    state or a row-major batch (whose leading axis folds into the view), ``B``
    for an amplitude-major ``(2**n, B)`` batch.
    """
    if _COMPILED is not None and _COMPILED.apply_1q(states, matrix, wire, n, tail):
        return
    psi = states.reshape(-1, 1 << wire, 2, (1 << (n - wire - 1)) * tail)
    a = psi[:, :, 0, :]
    b = psi[:, :, 1, :]
    m00, m01 = matrix[0, 0], matrix[0, 1]
    m10, m11 = matrix[1, 0], matrix[1, 1]
    if m01 == 0 and m10 == 0:  # diagonal (rz, z, s, t, phase, ...)
        if m00 != 1:
            a *= m00
        if m11 != 1:
            b *= m11
        return
    scratch = _scratch_for(states, scratch)
    half = states.size >> 1
    s0 = scratch[:half].reshape(a.shape)
    if m00 == 0 and m11 == 0:  # anti-diagonal (x, y)
        s0[...] = a
        np.multiply(b, m01, out=a)
        np.multiply(s0, m10, out=b)
        return
    if tail == 1 and psi.shape[-1] >= 64:
        # General case, large contiguous inner blocks: one broadcast 2x2
        # matmul into scratch, then copy back.  zgemm on contiguous blocks
        # beats the equivalent chain of strided ufunc passes.  Restricted to
        # tail == 1 (flat states, row-major batches): zgemm results are not
        # invariant to the number of columns, and amplitude-major batches
        # must produce bitwise-identical columns regardless of batch width
        # so that gradient shards merge to exactly the single-process result.
        stacked = psi.reshape(-1, 2, psi.shape[-1])
        out = scratch[: states.size].reshape(stacked.shape)
        np.matmul(matrix, stacked, out=out)
        stacked[...] = out
        return
    # General case, small inner blocks (high wires of a flat state): strided
    # ufunc updates of the amplitude-pair halves through scratch.
    s1 = scratch[half : 2 * half].reshape(a.shape)
    np.multiply(a, m00, out=s0)
    np.multiply(b, m01, out=s1)
    s0 += s1  # s0 = new a, computed from the old halves
    np.multiply(a, m10, out=s1)
    b *= m11
    b += s1
    a[...] = s0


def _apply_1q_column_matrices(
    states: np.ndarray, matrices: np.ndarray, wire: int, n: int
) -> None:
    """Per-column 2x2 matrices on a ``(2**n, B)`` batch: ``matrices`` is (B, 2, 2)."""
    batch = matrices.shape[0]
    psi = states.reshape(1 << wire, 2, 1 << (n - wire - 1), batch)
    psi[...] = np.einsum("bij,xjyb->xiyb", matrices, psi)


# ---------------------------------------------------------------------------
# 2-qubit kernels
# ---------------------------------------------------------------------------


def _two_qubit_views(
    states: np.ndarray, wires: Sequence[int], n: int, tail: int = 1
):
    """Quarter-state views indexed by the gate's basis index on ``wires``."""
    w0, w1 = wires
    i, j = (w0, w1) if w0 < w1 else (w1, w0)
    psi = states.reshape(
        -1, 1 << i, 2, 1 << (j - i - 1), 2, (1 << (n - j - 1)) * tail
    )
    views = [
        psi[:, :, 0, :, 0, :],
        psi[:, :, 0, :, 1, :],
        psi[:, :, 1, :, 0, :],
        psi[:, :, 1, :, 1, :],
    ]
    if w0 > w1:
        # Matrix index is bit(w0)*2 + bit(w1); with reversed wires the middle
        # two quarter-views swap roles.
        views = [views[0], views[2], views[1], views[3]]
    return views


def _apply_phase_permutation(
    views: List[np.ndarray],
    perm: np.ndarray,
    phases: np.ndarray,
    scratch: np.ndarray,
) -> None:
    """Apply ``new[k] = phases[k] * old[perm[k]]`` cycle-by-cycle in place."""
    done = [False] * len(views)
    tmp = scratch[: views[0].size].reshape(views[0].shape)
    for start in range(len(views)):
        if done[start]:
            continue
        cycle = [start]
        nxt = int(perm[start])
        while nxt != start:
            cycle.append(nxt)
            nxt = int(perm[nxt])
        for k in cycle:
            done[k] = True
        if len(cycle) == 1:
            if phases[start] != 1:
                views[start] *= phases[start]
            continue
        tmp[...] = views[cycle[0]]
        for idx, target in enumerate(cycle):
            source = views[cycle[idx + 1]] if idx + 1 < len(cycle) else tmp
            if phases[target] != 1:
                np.multiply(source, phases[target], out=views[target])
            else:
                views[target][...] = source


def _apply_2q(
    states: np.ndarray,
    matrix: np.ndarray,
    wires: Sequence[int],
    n: int,
    scratch: Optional[np.ndarray] = None,
    tail: int = 1,
) -> None:
    """Apply a 4x4 matrix to ``wires`` in place (see :func:`_apply_1q`)."""
    if _COMPILED is not None and _COMPILED.apply_2q(states, matrix, wires, n, tail):
        return
    views = _two_qubit_views(states, wires, n, tail)
    nonzero = matrix != 0
    quarter = states.size >> 2
    if not np.any(nonzero & ~np.eye(4, dtype=bool)):  # diagonal (cz, zz, crz)
        for k in range(4):
            mk = matrix[k, k]
            if mk != 1:
                views[k] *= mk
        return
    scratch = _scratch_for(states, scratch)
    rows = nonzero.sum(axis=1)
    cols = nonzero.sum(axis=0)
    if np.all(rows == 1) and np.all(cols == 1):  # cnot, swap, iswap, ...
        perm = nonzero.argmax(axis=1)
        phases = matrix[np.arange(4), perm]
        _apply_phase_permutation(views, perm, phases, scratch)
        return
    olds = []
    for k in range(4):
        buf = scratch[k * quarter : (k + 1) * quarter].reshape(views[0].shape)
        buf[...] = views[k]
        olds.append(buf)
    acc = scratch[4 * quarter : 5 * quarter].reshape(views[0].shape)
    for k in range(4):
        np.multiply(olds[0], matrix[k, 0], out=views[k])
        for l in range(1, 4):
            if matrix[k, l] != 0:
                np.multiply(olds[l], matrix[k, l], out=acc)
                views[k] += acc


def _apply_2q_column_matrices(
    states: np.ndarray, matrices: np.ndarray, wires: Sequence[int], n: int
) -> None:
    """Per-column 4x4 matrices on a ``(2**n, B)`` batch: ``matrices`` is (B, 4, 4)."""
    batch = matrices.shape[0]
    w0, w1 = wires
    i, j = (w0, w1) if w0 < w1 else (w1, w0)
    psi = states.reshape(
        1 << i, 2, 1 << (j - i - 1), 2, 1 << (n - j - 1), batch
    )
    tensors = matrices.reshape(batch, 2, 2, 2, 2)
    if w0 < w1:
        psi[...] = np.einsum("bijkl,xkylzb->xiyjzb", tensors, psi)
    else:
        psi[...] = np.einsum("bjilk,xkylzb->xiyjzb", tensors, psi)


# ---------------------------------------------------------------------------
# 3-qubit kernels
# ---------------------------------------------------------------------------


def _three_qubit_views(
    states: np.ndarray, wires: Sequence[int], n: int, tail: int = 1
) -> List[np.ndarray]:
    """Eighth-state views indexed by the gate's basis index on ``wires``.

    The matrix basis index is ``bit(wires[0])*4 + bit(wires[1])*2 +
    bit(wires[2])``, so arbitrary wire orderings reduce to picking each
    wire's bit out of the index.
    """
    s0, s1, s2 = sorted(wires)
    psi = states.reshape(
        -1,
        1 << s0,
        2,
        1 << (s1 - s0 - 1),
        2,
        1 << (s2 - s1 - 1),
        2,
        (1 << (n - s2 - 1)) * tail,
    )
    views = []
    for index in range(8):
        bit = {w: (index >> (2 - j)) & 1 for j, w in enumerate(wires)}
        views.append(psi[:, :, bit[s0], :, bit[s1], :, bit[s2], :])
    return views


def _apply_3q(
    states: np.ndarray,
    matrix: np.ndarray,
    wires: Sequence[int],
    n: int,
    scratch: Optional[np.ndarray] = None,
    tail: int = 1,
) -> None:
    """Apply an 8x8 matrix to ``wires`` in place (see :func:`_apply_1q`).

    Fast paths mirror the 2-qubit kernel: diagonal matrices (``ccz``-style
    phases) scale the eight views, phase-permutation matrices (``toffoli``,
    ``fredkin``) relabel them cycle-by-cycle, and the general dense case runs
    the 8x8 row expansion through eighth-state scratch buffers.
    """
    views = _three_qubit_views(states, wires, n, tail)
    nonzero = matrix != 0
    if not np.any(nonzero & ~np.eye(8, dtype=bool)):  # diagonal
        for k in range(8):
            mk = matrix[k, k]
            if mk != 1:
                views[k] *= mk
        return
    scratch = _scratch_for(states, scratch)
    rows = nonzero.sum(axis=1)
    cols = nonzero.sum(axis=0)
    if np.all(rows == 1) and np.all(cols == 1):  # toffoli, fredkin, ...
        perm = nonzero.argmax(axis=1)
        phases = matrix[np.arange(8), perm]
        _apply_phase_permutation(views, perm, phases, scratch)
        return
    # General dense 8x8: eight old-eighth buffers plus one accumulator is
    # 9/8 of the state — within the 5/4 scratch every kernel shares.
    eighth = states.size >> 3
    olds = []
    for k in range(8):
        buf = scratch[k * eighth : (k + 1) * eighth].reshape(views[0].shape)
        buf[...] = views[k]
        olds.append(buf)
    acc = scratch[8 * eighth : 9 * eighth].reshape(views[0].shape)
    for k in range(8):
        np.multiply(olds[0], matrix[k, 0], out=views[k])
        for l in range(1, 8):
            if matrix[k, l] != 0:
                np.multiply(olds[l], matrix[k, l], out=acc)
                views[k] += acc


def _apply_3q_column_matrices(
    states: np.ndarray, matrices: np.ndarray, wires: Sequence[int], n: int
) -> None:
    """Per-column 8x8 matrices on a ``(2**n, B)`` batch: ``matrices`` is (B, 8, 8)."""
    batch = matrices.shape[0]
    s0, s1, s2 = sorted(wires)
    psi = states.reshape(
        1 << s0,
        2,
        1 << (s1 - s0 - 1),
        2,
        1 << (s2 - s1 - 1),
        2,
        1 << (n - s2 - 1),
        batch,
    )
    tensors = matrices.reshape(batch, 2, 2, 2, 2, 2, 2)
    outs = dict(zip(wires, "ijk"))
    ins = dict(zip(wires, "uvs"))
    tensor_sub = (
        "b"
        + "".join(outs[w] for w in wires)
        + "".join(ins[w] for w in wires)
    )
    in_sub = "x" + ins[s0] + "y" + ins[s1] + "z" + ins[s2] + "wb"
    out_sub = "x" + outs[s0] + "y" + outs[s1] + "z" + outs[s2] + "wb"
    psi[...] = np.einsum(f"{tensor_sub},{in_sub}->{out_sub}", tensors, psi)


# ---------------------------------------------------------------------------
# k-qubit reference fallback (k >= 4)
# ---------------------------------------------------------------------------


def _apply_kq_single(state: np.ndarray, matrix: np.ndarray, wires, n: int) -> None:
    k = len(wires)
    gate = matrix.reshape((2,) * (2 * k))
    psi = state.reshape((2,) * n)
    moved = np.tensordot(gate, psi, axes=(list(range(k, 2 * k)), list(wires)))
    state[...] = np.moveaxis(moved, range(k), wires).reshape(-1)


def _apply_kq_reference(
    states: np.ndarray,
    matrix: np.ndarray,
    wires: Sequence[int],
    n: int,
    tail: int = 1,
) -> None:
    """Exact tensor-contraction fallback for gates on four or more wires."""
    dim = 1 << n
    if tail > 1:
        columns = states.reshape(dim, tail)
        for b in range(tail):
            col = np.ascontiguousarray(columns[:, b])
            per_column = matrix[b] if matrix.ndim == 3 else matrix
            _apply_kq_single(col, per_column, wires, n)
            columns[:, b] = col
        return
    flat = states.reshape(-1, dim)
    for row in range(flat.shape[0]):
        per_row = matrix[row] if matrix.ndim == 3 else matrix
        _apply_kq_single(flat[row], per_row, wires, n)


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def apply_matrix_inplace(
    states: np.ndarray,
    matrix: np.ndarray,
    wires: Sequence[int],
    n: int,
    scratch: Optional[np.ndarray] = None,
    tail: int = 1,
) -> None:
    """Apply one gate matrix in place to a state array.

    ``states`` is a flat ``(2**n,)`` state, a row-major ``(B, 2**n)`` batch
    (``tail=1``), or an amplitude-major ``(2**n, B)`` batch (``tail=B``).
    ``matrix`` is a single ``(2**k, 2**k)`` matrix applied uniformly, or — on
    amplitude-major batches — a ``(B, 2**k, 2**k)`` stack of per-column
    matrices.
    """
    # Resolve the engine tier here, not only in the batch entry points:
    # direct callers (the adjoint sweep) must run on the same kernels as
    # everything else, or gradient bits would depend on which code path
    # happened to execute first in the process.
    _ensure_engine()
    k = len(wires)
    if matrix.ndim == 3:
        if k == 1:
            _apply_1q_column_matrices(states, matrix, wires[0], n)
        elif k == 2:
            _apply_2q_column_matrices(states, matrix, wires, n)
        elif k == 3:
            _apply_3q_column_matrices(states, matrix, wires, n)
        else:
            _apply_kq_reference(states, matrix, wires, n, tail)
        return
    if k == 1:
        _apply_1q(states, matrix, wires[0], n, scratch, tail)
    elif k == 2:
        _apply_2q(states, matrix, wires, n, scratch, tail)
    elif k == 3:
        _apply_3q(states, matrix, wires, n, scratch, tail)
    else:
        _apply_kq_reference(states, matrix, wires, n, tail)


# ---------------------------------------------------------------------------
# Circuit compilation: matrix resolution + single-qubit fusion
# ---------------------------------------------------------------------------

# Stream items: ("dense", matrix, wires) applies a shared matrix (or a
# per-column stack) to the whole batch; ("rows", [(column, matrix), ...],
# wires) patches individual batch columns in place.
_DENSE = "dense"
_ROWS = "rows"


def _override_matrices(
    op, position: int, resolved: Tuple[float, ...], batch_overrides: Sequence[Overrides]
) -> List[Tuple[int, np.ndarray]]:
    """(column, overridden matrix) for every batch element overriding this op."""
    out = []
    for column, element in enumerate(batch_overrides):
        entry = element.get(position)
        if not entry:
            continue
        patched = list(resolved)
        for slot, value in entry:
            patched[slot] = float(value)
        out.append((column, cached_matrix(op.gate, tuple(patched))))
    return out


def _stream_ops(
    circuit: Circuit,
    values: np.ndarray,
    batch_overrides: Optional[Sequence[Overrides]] = None,
    batch_values: Optional[np.ndarray] = None,
    fuse: bool = True,
) -> List[Tuple[str, object, Tuple[int, ...]]]:
    """Compile a circuit into a fused stream of kernel applications.

    ``batch_values`` (one full parameter vector per batch element) turns
    trainable ops into ``(B, 2**k, 2**k)`` matrix stacks; ops whose resolved
    parameters agree across the batch keep a single shared (cached) matrix.

    ``batch_overrides`` (one occurrence-override dict per batch element)
    instead applies the shared *base* matrix batch-wide and patches the few
    overridden columns with a correction ``R @ P^-1`` — of the ``B`` shifted
    executions of a gradient only two (or four) columns differ at any one op,
    so stacking per-element matrices for everyone would serialize the sweep
    through ``einsum``.  Single-qubit fusion runs *through* overridden ops:
    alongside the pending base product ``P`` on each wire, the stream keeps
    each deviating column's own product ``R`` and emits the column
    corrections at flush time, so a gradient batch fuses exactly as well as a
    plain run.
    """
    single = batch_overrides is not None and len(batch_overrides) == 1

    out: List[Tuple[str, object, Tuple[int, ...]]] = []
    # wire -> [base product P, {column: that column's own product R}]
    pending: Dict[int, List] = {}

    def flush(wire: int) -> None:
        entry = pending.pop(wire, None)
        if entry is None:
            return
        base, columns = entry
        out.append((_DENSE, base, (wire,)))
        if columns:
            # Base products are products of unitaries: the conjugate
            # transpose is the exact inverse.
            base_inv = base.conj().T
            out.append(
                (_ROWS, [(c, R @ base_inv) for c, R in columns.items()], (wire,))
            )

    for position, op in enumerate(circuit.ops):
        column_mats: List[Tuple[int, np.ndarray]] = []
        if batch_values is not None:
            resolved_rows = [op.resolve(row) for row in batch_values]
            if op.is_trainable and any(r != resolved_rows[0] for r in resolved_rows):
                matrix = np.stack(
                    [cached_matrix(op.gate, r) for r in resolved_rows]
                )
            else:
                matrix = cached_matrix(op.gate, resolved_rows[0])
        else:
            resolved = op.resolve(values)
            if batch_overrides is not None:
                column_mats = _override_matrices(
                    op, position, resolved, batch_overrides
                )
            if single and column_mats:
                # One batch element: substitute the override directly, no
                # base-plus-correction split needed.
                matrix = column_mats[0][1]
                column_mats = []
            else:
                matrix = cached_matrix(op.gate, resolved)
        wires = op.wires
        if fuse and len(wires) == 1:
            w = wires[0]
            prev, columns = pending.get(w, (None, {}))
            overriding = dict(column_mats)
            new_columns = {}
            for c, override in overriding.items():
                before = columns.get(c, prev)
                new_columns[c] = override if before is None else override @ before
            for c, product in columns.items():
                if c not in overriding:
                    new_columns[c] = matrix @ product
            pending[w] = [matrix if prev is None else matrix @ prev, new_columns]
        else:
            for w in wires:
                flush(w)
            out.append((_DENSE, matrix, wires))
            if column_mats:
                base_inv = matrix.conj().T  # gate matrices are unitary
                out.append(
                    (_ROWS, [(c, m @ base_inv) for c, m in column_mats], wires)
                )
    for w in list(pending):
        flush(w)
    return out


def _apply_stream(
    states: np.ndarray,
    stream: Sequence[Tuple[str, object, Tuple[int, ...]]],
    n: int,
    tail: int = 1,
) -> np.ndarray:
    """Run a compiled stream over a flat state or amplitude-major batch."""
    scratch = make_scratch(states.size)
    dim = 1 << n
    columns = states.reshape(dim, -1)
    for kind, payload, wires in stream:
        if kind == _DENSE:
            apply_matrix_inplace(states, payload, wires, n, scratch, tail)
        else:
            for column, matrix in payload:
                # Batch columns are strided; patch through a contiguous copy.
                col = np.ascontiguousarray(columns[:, column])
                apply_matrix_inplace(col, matrix, wires, n, scratch)
                columns[:, column] = col
    return states


# ---------------------------------------------------------------------------
# Execution entry points
# ---------------------------------------------------------------------------


def _check_values(circuit: Circuit, params) -> np.ndarray:
    if params is None:
        params = np.zeros(0)
    values = np.asarray(params, dtype=np.float64)
    if values.ndim != 1 or values.shape[0] < circuit.n_params:
        raise CircuitError(
            f"circuit expects >= {circuit.n_params} parameters, "
            f"got shape {values.shape}"
        )
    return values


def _initial_columns(
    circuit: Circuit, batch: int, initial_state: Optional[np.ndarray]
) -> np.ndarray:
    """Amplitude-major ``(2**n, B)`` initial batch."""
    dim = 1 << circuit.n_qubits
    if initial_state is None:
        states = np.zeros((dim, batch), dtype=COMPLEX_DTYPE)
        states[0, :] = 1.0
        return states
    initial_state = np.asarray(initial_state)
    if initial_state.shape != (dim,):
        raise CircuitError(
            f"initial state has shape {initial_state.shape}, "
            f"circuit expects ({dim},)"
        )
    return np.repeat(
        initial_state.astype(COMPLEX_DTYPE, copy=False)[:, None], batch, axis=1
    )


def run(
    circuit: Circuit,
    params=None,
    initial_state: Optional[np.ndarray] = None,
    overrides: Optional[Overrides] = None,
    fuse: bool = True,
) -> np.ndarray:
    """Execute ``circuit`` through the fast engine; returns the final state.

    ``overrides`` optionally replaces individual parameter slots of specific
    operation occurrences (the shift-rule contract of
    :mod:`repro.autodiff._execute`).
    """
    _ensure_engine()
    values = _check_values(circuit, params)
    batch_overrides = [overrides] if overrides else None
    stream = _stream_ops(circuit, values, batch_overrides=batch_overrides, fuse=fuse)
    dim = 1 << circuit.n_qubits
    if initial_state is None:
        state = np.zeros(dim, dtype=COMPLEX_DTYPE)
        state[0] = 1.0
    else:
        initial_state = np.asarray(initial_state)
        if initial_state.shape != (dim,):
            raise CircuitError(
                f"initial state has shape {initial_state.shape}, "
                f"circuit expects ({dim},)"
            )
        state = np.array(initial_state, dtype=COMPLEX_DTYPE, copy=True)
    _apply_stream(state, stream, circuit.n_qubits)
    return state


def run_batch(
    circuit: Circuit,
    params_batch,
    initial_state: Optional[np.ndarray] = None,
    fuse: bool = True,
    columns: bool = False,
) -> np.ndarray:
    """Execute ``circuit`` for ``B`` parameter vectors as one batched sweep.

    Gates whose resolved parameters agree across the batch (fixed gates,
    constant encodings) are applied with one vectorized kernel invocation; the
    rest use one batched ``einsum`` each.  Returns ``(B, 2**n)`` row-major
    states, or the internal amplitude-major ``(2**n, B)`` array when
    ``columns`` is true.
    """
    _ensure_engine()
    params_batch = np.asarray(params_batch, dtype=np.float64)
    if params_batch.ndim != 2 or params_batch.shape[1] < circuit.n_params:
        raise CircuitError(
            f"params_batch must have shape (B, >={circuit.n_params}), "
            f"got {params_batch.shape}"
        )
    batch = params_batch.shape[0]
    dim = 1 << circuit.n_qubits
    if batch == 0:
        empty = np.zeros((dim, 0), dtype=COMPLEX_DTYPE)
        return empty if columns else empty.T
    stream = _stream_ops(
        circuit, params_batch[0], batch_values=params_batch, fuse=fuse
    )
    states = _initial_columns(circuit, batch, initial_state)
    _apply_stream(states, stream, circuit.n_qubits, tail=batch)
    return states if columns else np.ascontiguousarray(states.T)


def run_shifted_batch(
    circuit: Circuit,
    params,
    batch_overrides: Sequence[Overrides],
    initial_state: Optional[np.ndarray] = None,
    fuse: bool = True,
    columns: bool = False,
) -> np.ndarray:
    """Execute one circuit under ``B`` occurrence-override sets as one batch.

    This is the engine under the batched parameter-shift gradient: all shifted
    executions share every gate except the overridden occurrence, so the whole
    gradient reduces to one batched sweep over the circuit.  Returns
    ``(B, 2**n)`` row-major states, or amplitude-major ``(2**n, B)`` when
    ``columns`` is true.
    """
    _ensure_engine()
    values = _check_values(circuit, params)
    dim = 1 << circuit.n_qubits
    if not batch_overrides:
        empty = np.zeros((dim, 0), dtype=COMPLEX_DTYPE)
        return empty if columns else empty.T
    stream = _stream_ops(
        circuit, values, batch_overrides=list(batch_overrides), fuse=fuse
    )
    states = _initial_columns(circuit, len(batch_overrides), initial_state)
    _apply_stream(states, stream, circuit.n_qubits, tail=len(batch_overrides))
    return states if columns else np.ascontiguousarray(states.T)
