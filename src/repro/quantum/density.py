"""Density-matrix simulation engine (exact noisy evolution).

Where :mod:`repro.quantum.noise` *samples* noisy trajectories on pure states
(O(2^n) memory, stochastic), this module evolves the full density matrix
(O(4^n) memory, deterministic): gates act as ``rho -> U rho U†`` and Kraus
channels as ``rho -> sum_i K_i rho K_i†`` with no sampling.  Exact noisy
expectation values make it the reference the trajectory method is tested
against, and the 4^n footprint is the worst case the checkpoint layer must
handle (a 14-qubit density matrix is already 4 GiB of complex128).

Layout: an ``n``-qubit density matrix is a ``(2**n, 2**n)`` complex128 array;
reshaped to ``(2,) * 2n`` the first ``n`` axes are ket indices and the last
``n`` are bra indices, with the same qubit-0-most-significant convention as
:mod:`repro.quantum.statevector`.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CircuitError
from repro.quantum import gates as _gates
from repro.quantum.circuit import Circuit
from repro.quantum.noise import NoiseModel
from repro.quantum.statevector import COMPLEX_DTYPE, n_qubits_of


def zero_density(n_qubits: int) -> np.ndarray:
    """``|0...0><0...0|`` on ``n_qubits`` wires."""
    if n_qubits < 1:
        raise CircuitError(f"n_qubits must be >= 1, got {n_qubits}")
    dim = 2**n_qubits
    rho = np.zeros((dim, dim), dtype=COMPLEX_DTYPE)
    rho[0, 0] = 1.0
    return rho


def density_from_statevector(state: np.ndarray) -> np.ndarray:
    """Outer product ``|psi><psi|`` of a pure state."""
    n_qubits_of(state)  # validates shape
    state = np.asarray(state, dtype=COMPLEX_DTYPE)
    return np.outer(state, state.conj())


def maximally_mixed(n_qubits: int) -> np.ndarray:
    """``I / 2^n`` — the fixed point of the depolarizing channel."""
    if n_qubits < 1:
        raise CircuitError(f"n_qubits must be >= 1, got {n_qubits}")
    dim = 2**n_qubits
    return np.eye(dim, dtype=COMPLEX_DTYPE) / dim


def n_qubits_of_density(rho: np.ndarray) -> int:
    """Infer the qubit count of a density matrix, validating its shape."""
    if rho.ndim != 2 or rho.shape[0] != rho.shape[1]:
        raise CircuitError(f"shape {rho.shape} is not a square density matrix")
    n = int(round(math.log2(rho.shape[0]))) if rho.shape[0] else 0
    if rho.shape[0] < 2 or 2**n != rho.shape[0]:
        raise CircuitError(
            f"density dimension {rho.shape[0]} is not a power of two >= 2"
        )
    return n


def is_density_matrix(rho: np.ndarray, atol: float = 1e-9) -> bool:
    """Hermitian, unit trace, positive semi-definite (within ``atol``)."""
    try:
        n_qubits_of_density(rho)
    except CircuitError:
        return False
    if not np.allclose(rho, rho.conj().T, atol=atol):
        return False
    if abs(np.trace(rho) - 1.0) > atol:
        return False
    eigenvalues = np.linalg.eigvalsh(rho)
    return bool(eigenvalues.min() > -atol)


def purity(rho: np.ndarray) -> float:
    """``tr(rho^2)``: 1 for pure states, ``1/2^n`` for maximally mixed."""
    n_qubits_of_density(rho)
    return float(np.einsum("ij,ji->", rho, rho).real)


def von_neumann_entropy(rho: np.ndarray, base: float = 2.0) -> float:
    """``-tr(rho log rho)`` (default: bits)."""
    n_qubits_of_density(rho)
    eigenvalues = np.linalg.eigvalsh(rho)
    positive = eigenvalues[eigenvalues > 1e-300]
    return float(-(positive * np.log(positive)).sum() / math.log(base))


# ---------------------------------------------------------------------------
# Evolution
# ---------------------------------------------------------------------------


def _apply_matrix_ket(
    tensor: np.ndarray, matrix: np.ndarray, wires: Sequence[int], n: int
) -> np.ndarray:
    """Apply ``matrix`` to the ket axes ``wires`` of a ``(2,)*2n`` tensor."""
    k = len(wires)
    gate = matrix.reshape((2,) * (2 * k))
    moved = np.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), list(wires)))
    return np.moveaxis(moved, range(k), wires)


def apply_gate_density(
    rho: np.ndarray,
    matrix: np.ndarray,
    wires: Sequence[int],
    n_qubits: Optional[int] = None,
) -> np.ndarray:
    """``U rho U†`` on the given wires; returns a new ``(dim, dim)`` array."""
    if n_qubits is None:
        n_qubits = n_qubits_of_density(rho)
    k = len(wires)
    if matrix.shape != (2**k, 2**k):
        raise CircuitError(
            f"matrix of shape {matrix.shape} does not act on {k} wire(s)"
        )
    dim = 2**n_qubits
    tensor = rho.reshape((2,) * (2 * n_qubits))
    tensor = _apply_matrix_ket(tensor, matrix, wires, n_qubits)
    bra_wires = [n_qubits + w for w in wires]
    tensor = _apply_matrix_ket(tensor, matrix.conj(), bra_wires, n_qubits)
    return np.ascontiguousarray(tensor).reshape(dim, dim)


def apply_kraus_density(
    rho: np.ndarray,
    kraus: Sequence[np.ndarray],
    wires: Sequence[int],
    n_qubits: Optional[int] = None,
) -> np.ndarray:
    """``sum_i K_i rho K_i†`` applied exactly (no trajectory sampling)."""
    if n_qubits is None:
        n_qubits = n_qubits_of_density(rho)
    if not kraus:
        raise CircuitError("Kraus channel needs at least one operator")
    out = np.zeros_like(rho)
    for operator in kraus:
        out += apply_gate_density(rho, operator, wires, n_qubits)
    return out


def apply_circuit_density(
    circuit: Circuit,
    params: Optional[Sequence[float]] = None,
    noise: Optional[NoiseModel] = None,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Evolve a density matrix through ``circuit`` with optional exact noise.

    ``noise`` applies every enabled Kraus channel to each wire a gate
    touches, after the gate — the same placement
    :func:`repro.quantum.noise.run_noisy` samples, so trajectory averages
    converge to this function's output.
    """
    values = np.zeros(circuit.n_params) if params is None else np.asarray(params)
    if initial is None:
        rho = zero_density(circuit.n_qubits)
    else:
        if n_qubits_of_density(initial) != circuit.n_qubits:
            raise CircuitError(
                f"initial density matrix has {n_qubits_of_density(initial)} "
                f"qubits, circuit expects {circuit.n_qubits}"
            )
        rho = np.array(initial, dtype=COMPLEX_DTYPE, copy=True)
    channels = noise.channels() if noise is not None else []
    for op in circuit.ops:
        rho = apply_gate_density(rho, op.matrix(values), op.wires, circuit.n_qubits)
        for wire in op.wires:
            for kraus in channels:
                rho = apply_kraus_density(rho, kraus, (wire,), circuit.n_qubits)
    return rho


# ---------------------------------------------------------------------------
# Measurement & reduction
# ---------------------------------------------------------------------------


def expectation_density(rho: np.ndarray, observable) -> float:
    """``tr(rho O)`` for a PauliString/Hamiltonian/Projector observable.

    Pauli strings contract directly against the ket axes (O(4^n) total);
    rank-one projectors reduce to ``<t|rho|t>``; any other observable with an
    ``apply(state)`` method falls back to column-wise application.
    """
    n = n_qubits_of_density(rho)
    terms = getattr(observable, "terms", None)
    if terms is not None:  # Hamiltonian: sum of Pauli strings
        return float(sum(expectation_density(rho, term) for term in terms))
    paulis = getattr(observable, "paulis", None)
    if paulis is not None:  # PauliString: apply letters to the ket index
        tensor = rho.reshape((2,) * (2 * n))
        for wire, letter in paulis:
            matrix = _gates.matrix_for(letter.lower())
            tensor = _apply_matrix_ket(tensor, matrix, (wire,), n)
        dim = 2**n
        applied = tensor.reshape(dim, dim)
        return float(observable.coeff * np.trace(applied).real)
    target = getattr(observable, "target", None)
    if target is not None:  # rank-one projector: <t|rho|t>
        coeff = getattr(observable, "coeff", 1.0)
        return float(coeff * np.vdot(target, rho @ target).real)
    # Generic: tr(O rho) = sum_c (O rho[:, c])[c].
    total = 0.0
    for column in range(rho.shape[0]):
        applied = observable.apply(np.ascontiguousarray(rho[:, column]))
        total += float(applied[column].real)
    return total


def probabilities_density(
    rho: np.ndarray, wires: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Born-rule probabilities (the diagonal), optionally marginalized."""
    n = n_qubits_of_density(rho)
    probs = np.ascontiguousarray(np.diag(rho).real)
    if wires is None:
        return probs
    wires = tuple(wires)
    if len(set(wires)) != len(wires):
        raise CircuitError(f"duplicate wires in {wires}")
    for w in wires:
        if not 0 <= w < n:
            raise CircuitError(f"wire {w} out of range for {n}-qubit state")
    tensor = probs.reshape((2,) * n)
    keep = set(wires)
    other_axes = tuple(axis for axis in range(n) if axis not in keep)
    marginal = tensor.sum(axis=other_axes) if other_axes else tensor
    perm = np.argsort(np.argsort(wires))
    marginal = np.transpose(marginal, axes=tuple(perm))
    return np.ascontiguousarray(marginal).reshape(-1)


def partial_trace(rho: np.ndarray, keep: Sequence[int]) -> np.ndarray:
    """Reduced density matrix on ``keep`` wires (in the order given)."""
    n = n_qubits_of_density(rho)
    keep = tuple(keep)
    if not keep:
        raise CircuitError("partial_trace must keep at least one wire")
    if len(set(keep)) != len(keep):
        raise CircuitError(f"duplicate wires in {keep}")
    for w in keep:
        if not 0 <= w < n:
            raise CircuitError(f"wire {w} out of range for {n}-qubit state")
    tensor = rho.reshape((2,) * (2 * n))
    traced = sorted(set(range(n)) - set(keep), reverse=True)
    for wire in traced:
        tensor = np.trace(tensor, axis1=wire, axis2=wire + tensor.ndim // 2)
    # Axes now correspond to kept wires in increasing order; permute to the
    # caller's order on both ket and bra sides.
    k = len(keep)
    increasing = sorted(keep)
    perm = [increasing.index(w) for w in keep]
    tensor = np.transpose(tensor, axes=perm + [k + p for p in perm])
    return np.ascontiguousarray(tensor).reshape(2**k, 2**k)


def fidelity_density(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Uhlmann fidelity ``(tr sqrt(sqrt(rho) sigma sqrt(rho)))^2``.

    Computed from the eigendecomposition of ``rho`` (no scipy ``sqrtm``):
    ``sqrt(rho) = V sqrt(diag(w)) V†``.
    """
    if rho.shape != sigma.shape:
        raise CircuitError(
            f"fidelity of mismatched shapes {rho.shape} vs {sigma.shape}"
        )
    n_qubits_of_density(rho)
    w, v = np.linalg.eigh(rho)
    w = np.clip(w, 0.0, None)
    sqrt_rho = (v * np.sqrt(w)) @ v.conj().T
    inner = sqrt_rho @ sigma @ sqrt_rho
    eigenvalues = np.clip(np.linalg.eigvalsh(inner), 0.0, None)
    return float(np.sqrt(eigenvalues).sum() ** 2)


def density_nbytes(n_qubits: int, dtype=COMPLEX_DTYPE) -> int:
    """Bytes of an ``n_qubits`` density matrix (the 4^n worst case)."""
    return int(4**n_qubits) * np.dtype(dtype).itemsize


# ---------------------------------------------------------------------------
# Simulator facade
# ---------------------------------------------------------------------------


class DensityMatrixSimulator:
    """Exact (optionally noisy) density-matrix executor.

    Mirrors :class:`repro.quantum.statevector.StatevectorSimulator`: stateless
    between calls, all state lives in the returned arrays.  A ``noise`` model
    fixed at construction applies to every execution.
    """

    def __init__(self, noise: Optional[NoiseModel] = None):
        self.noise = noise

    def run(
        self,
        circuit: Circuit,
        params: Optional[Sequence[float]] = None,
        initial: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Execute ``circuit`` and return the final density matrix."""
        return apply_circuit_density(circuit, params, self.noise, initial)

    def expectation(
        self,
        circuit: Circuit,
        params: Optional[Sequence[float]],
        observable,
        initial: Optional[np.ndarray] = None,
    ) -> float:
        """Exact ``tr(rho O)`` after executing ``circuit``."""
        return expectation_density(self.run(circuit, params, initial), observable)

    def expectations(
        self,
        circuit: Circuit,
        params: Optional[Sequence[float]],
        observables: Iterable,
        initial: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Expectations of several observables from one execution."""
        rho = self.run(circuit, params, initial)
        return np.array([expectation_density(rho, obs) for obs in observables])

    def probabilities(
        self,
        circuit: Circuit,
        params: Optional[Sequence[float]] = None,
        wires: Optional[Sequence[int]] = None,
        initial: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Measurement probabilities after executing ``circuit``."""
        return probabilities_density(self.run(circuit, params, initial), wires)
