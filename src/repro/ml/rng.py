"""Capture and restore numpy random-generator state.

Bitwise-exact training resume requires the RNG stream to continue from the
checkpointed position.  numpy's ``Generator.bit_generator.state`` is a plain
JSON-able dict (Python ints are arbitrary precision, so PCG64's 128-bit state
round-trips through JSON losslessly), which this module treats as the
canonical serialized form.
"""

from __future__ import annotations

import copy
from typing import Dict

import numpy as np

from repro.errors import SerializationError

_BIT_GENERATORS = {
    "PCG64": np.random.PCG64,
    "PCG64DXSM": np.random.PCG64DXSM,
    "MT19937": np.random.MT19937,
    "Philox": np.random.Philox,
    "SFC64": np.random.SFC64,
}


def capture_rng_state(rng: np.random.Generator) -> Dict:
    """Deep-copy the generator's full internal state as a JSON-able dict."""
    return copy.deepcopy(rng.bit_generator.state)


def restore_rng_state(rng: np.random.Generator, state: Dict) -> None:
    """Restore a state captured by :func:`capture_rng_state` in place."""
    expected = rng.bit_generator.state["bit_generator"]
    found = state.get("bit_generator")
    if found != expected:
        raise SerializationError(
            f"RNG state is for bit generator {found!r}, "
            f"trainer uses {expected!r}"
        )
    rng.bit_generator.state = copy.deepcopy(state)


def generator_from_state(state: Dict) -> np.random.Generator:
    """Construct a fresh Generator positioned at a captured state."""
    name = state.get("bit_generator")
    if name not in _BIT_GENERATORS:
        raise SerializationError(f"unknown bit generator {name!r}")
    bit_generator = _BIT_GENERATORS[name]()
    bit_generator.state = copy.deepcopy(state)
    return np.random.Generator(bit_generator)


def spawn_child(rng: np.random.Generator, key: int) -> np.random.Generator:
    """Derive a deterministic child generator (e.g. for the batch sampler)."""
    seed = int(rng.integers(0, 2**63 - 1)) ^ (key * 0x9E3779B97F4A7C15 % 2**63)
    return np.random.default_rng(seed)
