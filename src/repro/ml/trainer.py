"""Hook-based hybrid training loop with capturable state.

The trainer is the integration point for checkpointing: hooks receive every
completed step, and :meth:`Trainer.capture` / :meth:`Trainer.restore` convert
between live training state and :class:`repro.core.snapshot.TrainingSnapshot`.

Determinism contract: given equal (model, optimizer, config, initial params)
and equal snapshots, the continuation of training is *bitwise identical*.
Everything stochastic — shot sampling and batch shuffling — draws from
generators that the snapshot captures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.snapshot import TrainingSnapshot
from repro.errors import ConfigError
from repro.ml.dataset import ArrayDataset, BatchSampler
from repro.ml.rng import capture_rng_state, restore_rng_state
from repro.quantum import engines as _engines
from repro.quantum.kernels import prime_circuit_cache


@dataclass(frozen=True)
class TrainerConfig:
    """Static training configuration (not part of the snapshot).

    ``shard_workers`` >= 2 fans each step's gradient batch out across that
    many shard worker processes (:mod:`repro.quantum.engines.sharding`); 0
    or 1 forces in-process execution; ``None`` (the default) defers to the
    ambient :func:`repro.quantum.engines.execution_scope` (e.g. the fleet
    scheduler's per-job fan-out) and then ``QCKPT_SHARD_WORKERS``.  Sharded
    and in-process gradients are bitwise identical, so the determinism
    contract above is unaffected by the knob — it is pure wall-clock.
    """

    batch_size: int = 8
    seed: int = 1234
    shots: Optional[int] = None
    capture_statevector: bool = False
    shard_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.shots is not None and self.shots < 1:
            raise ConfigError(f"shots must be >= 1, got {self.shots}")
        if self.shard_workers is not None and self.shard_workers < 0:
            raise ConfigError(
                f"shard_workers must be >= 0, got {self.shard_workers}"
            )


@dataclass(frozen=True)
class StepInfo:
    """Per-step report delivered to hooks."""

    step: int
    loss: float
    grad_norm: float
    seconds: float


class Trainer:
    """Drives ``optimizer.step`` over ``model.loss_and_grad`` with hooks."""

    def __init__(
        self,
        model,
        optimizer,
        dataset: Optional[ArrayDataset] = None,
        config: Optional[TrainerConfig] = None,
        params: Optional[np.ndarray] = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.dataset = dataset
        self.config = config or TrainerConfig()
        self.rng = np.random.default_rng(self.config.seed)
        if params is None:
            params = model.init_params(self.rng)
        self.params = np.array(params, dtype=np.float64, copy=True)
        if self.params.shape != (model.n_params,):
            raise ConfigError(
                f"params shape {self.params.shape} does not match model "
                f"({model.n_params} parameters)"
            )
        self.sampler = (
            BatchSampler(len(dataset), self.config.batch_size, seed=self.config.seed + 1)
            if dataset is not None
            else None
        )
        ansatz = getattr(model, "ansatz", None)
        if ansatz is not None and ansatz.n_params <= self.params.size:
            # Warm the execution engine's matrix cache so the first step does
            # not pay cold builds for the ansatz's fixed/constant gates.
            prime_circuit_cache(ansatz, self.params)
            if self.config.shard_workers is not None and self.config.shard_workers >= 2:
                # Same warm-up inside each shard worker process: cold per-
                # worker matrix caches would otherwise tax the first step.
                from repro.quantum.engines import sharding

                sharding.prime_worker_caches(
                    ansatz, self.params, workers=self.config.shard_workers
                )
        self.step_count = 0
        self.loss_history: List[float] = []
        self.wall_time = 0.0

    # -- stepping --------------------------------------------------------------

    def train_step(self) -> StepInfo:
        """Run one optimization step and return its report."""
        started = time.perf_counter()
        batch = None
        if self.dataset is not None:
            batch = self.dataset.batch(self.sampler.next_batch())
        with _engines.execution_scope(shard_workers=self.config.shard_workers):
            loss, grads = self.model.loss_and_grad(
                self.params, batch, shots=self.config.shots, rng=self.rng
            )
        self.params = self.optimizer.step(self.params, grads)
        self.step_count += 1
        self.loss_history.append(float(loss))
        seconds = time.perf_counter() - started
        self.wall_time += seconds
        return StepInfo(
            step=self.step_count,
            loss=float(loss),
            grad_norm=float(np.linalg.norm(grads)),
            seconds=seconds,
        )

    def run(self, n_steps: int, hooks: Sequence = ()) -> List[StepInfo]:
        """Run ``n_steps`` steps, delivering each report to every hook.

        Hooks are duck-typed: any of ``on_run_start(trainer)``,
        ``on_step_end(trainer, info)``, ``on_run_end(trainer)`` are called if
        present.  Exceptions from hooks propagate (that is how failure
        injection crashes a run), but ``on_run_end`` always fires so async
        writers can drain.
        """
        if n_steps < 0:
            raise ConfigError(f"n_steps must be >= 0, got {n_steps}")
        for hook in hooks:
            handler = getattr(hook, "on_run_start", None)
            if handler is not None:
                handler(self)
        reports = []
        try:
            for _ in range(n_steps):
                info = self.train_step()
                reports.append(info)
                for hook in hooks:
                    handler = getattr(hook, "on_step_end", None)
                    if handler is not None:
                        handler(self, info)
        finally:
            for hook in hooks:
                handler = getattr(hook, "on_run_end", None)
                if handler is not None:
                    handler(self)
        return reports

    # -- snapshot interface -------------------------------------------------------

    def capture(self, lite: bool = False) -> TrainingSnapshot:
        """Capture complete training state into a snapshot (deep copies).

        With ``capture_statevector`` enabled the model's warm-start cache is
        included: a pure-state model contributes its ``statevector``; a
        density-matrix model (e.g. :class:`repro.ml.models.NoisyVQEModel`)
        contributes ``extra["density_matrix"]`` instead.

        ``lite`` skips the (re-derivable) warm-start cache even when capture
        is configured — the cheap degraded snapshot the service writer pool
        falls back to under backpressure, and what fleet jobs write as their
        restore-validation save.  A lite snapshot restores to bitwise-equal
        training state; only the warm-start cache must be recomputed.
        """
        statevector = None
        extra = {}
        if self.config.capture_statevector and not lite:
            provider = getattr(self.model, "statevector", None)
            if provider is not None:
                statevector = provider(self.params)
            else:
                density_provider = getattr(self.model, "density_matrix", None)
                if density_provider is not None:
                    extra["density_matrix"] = density_provider(self.params)
        return TrainingSnapshot(
            step=self.step_count,
            params=self.params.copy(),
            optimizer_state=self.optimizer.state_dict(),
            rng_state=capture_rng_state(self.rng),
            model_fingerprint=self.model.fingerprint(),
            sampler_state=self.sampler.state() if self.sampler else None,
            loss_history=np.asarray(self.loss_history, dtype=np.float64),
            statevector=statevector,
            wall_time=self.wall_time,
            extra=extra,
        )

    def warm_start(self, params: np.ndarray) -> None:
        """Adopt parameters only; everything else stays a fresh run.

        The cheap half of the restore planner's split: architecture-search
        and cross-validation workloads seed a *new* training run from a
        previous run's parameters without transferring (or re-applying)
        optimizer slots, RNG streams, sampler position, or the warm-start
        statevector cache.  Unlike :meth:`restore` this resets the run
        counters (step count, loss history, wall time) — a warm-started run
        is a new run, not a resumed one — and performs no fingerprint check
        beyond the parameter shape (donor and recipient architectures need
        only agree on the parameter vector).  Optimizer, RNG, and sampler
        state are left as constructed: pass a freshly built trainer for a
        clean run.
        """
        params = np.asarray(params, dtype=np.float64)
        if params.shape != (self.model.n_params,):
            raise ConfigError(
                f"warm-start params shape {params.shape} does not match "
                f"model ({self.model.n_params} parameters)"
            )
        self.params = params.copy()
        self.step_count = 0
        self.loss_history = []
        self.wall_time = 0.0

    def restore(self, snapshot: TrainingSnapshot) -> None:
        """Restore a snapshot, refusing incompatible model structures."""
        snapshot.check_compatible(self.model.fingerprint())
        if snapshot.params.shape != (self.model.n_params,):
            raise ConfigError(
                f"snapshot params shape {snapshot.params.shape} does not "
                f"match model ({self.model.n_params} parameters)"
            )
        self.params = snapshot.params.copy()
        self.optimizer.load_state_dict(snapshot.optimizer_state)
        restore_rng_state(self.rng, snapshot.rng_state)
        if snapshot.sampler_state is not None:
            if self.sampler is None:
                raise ConfigError(
                    "snapshot has sampler state but trainer has no dataset"
                )
            self.sampler.restore_state(snapshot.sampler_state)
        self.step_count = snapshot.step
        self.loss_history = [float(x) for x in snapshot.loss_history]
        self.wall_time = snapshot.wall_time

    @property
    def last_loss(self) -> Optional[float]:
        """Most recent training loss, if any step has run."""
        return self.loss_history[-1] if self.loss_history else None
