"""Datasets and the checkpointable batch sampler.

Synthetic dataset generators stand in for the classification workloads the
paper's hybrid-training experiments use (two moons, concentric circles,
blobs, bit-parity).  The :class:`BatchSampler` is the piece that matters for
checkpointing: its *position* in the epoch — permutation, cursor, epoch count,
and its private RNG — is part of training state, and skipping it on resume
silently re-feeds data and breaks exactness.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.ml.rng import capture_rng_state, generator_from_state


@dataclass(frozen=True)
class ArrayDataset:
    """A plain supervised dataset of feature rows and ±1 labels."""

    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        features = np.asarray(self.features, dtype=np.float64)
        labels = np.asarray(self.labels, dtype=np.float64)
        if features.ndim != 2:
            raise ConfigError(f"features must be 2-D, got shape {features.shape}")
        if labels.shape != (features.shape[0],):
            raise ConfigError(
                f"labels shape {labels.shape} does not match "
                f"{features.shape[0]} samples"
            )
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "labels", labels)

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    def batch(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Select rows by index."""
        return self.features[indices], self.labels[indices]

    def split(self, train_fraction: float, rng: np.random.Generator):
        """Shuffled train/test split."""
        if not 0.0 < train_fraction < 1.0:
            raise ConfigError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        train, test = order[:cut], order[cut:]
        return (
            ArrayDataset(self.features[train], self.labels[train]),
            ArrayDataset(self.features[test], self.labels[test]),
        )


# ---------------------------------------------------------------------------
# Synthetic dataset generators (labels are ±1 throughout)
# ---------------------------------------------------------------------------


def make_moons(
    n_samples: int, rng: np.random.Generator, noise: float = 0.1
) -> ArrayDataset:
    """Two interleaved half-circles."""
    half = n_samples // 2
    rest = n_samples - half
    t_outer = rng.uniform(0, math.pi, half)
    t_inner = rng.uniform(0, math.pi, rest)
    outer = np.stack([np.cos(t_outer), np.sin(t_outer)], axis=1)
    inner = np.stack([1 - np.cos(t_inner), 0.5 - np.sin(t_inner)], axis=1)
    features = np.concatenate([outer, inner])
    features += noise * rng.standard_normal(features.shape)
    labels = np.concatenate([np.ones(half), -np.ones(rest)])
    return ArrayDataset(features, labels)


def make_circles(
    n_samples: int,
    rng: np.random.Generator,
    noise: float = 0.05,
    factor: float = 0.5,
) -> ArrayDataset:
    """Two concentric circles with radius ratio ``factor``."""
    if not 0.0 < factor < 1.0:
        raise ConfigError(f"factor must be in (0, 1), got {factor}")
    half = n_samples // 2
    rest = n_samples - half
    t_outer = rng.uniform(0, 2 * math.pi, half)
    t_inner = rng.uniform(0, 2 * math.pi, rest)
    outer = np.stack([np.cos(t_outer), np.sin(t_outer)], axis=1)
    inner = factor * np.stack([np.cos(t_inner), np.sin(t_inner)], axis=1)
    features = np.concatenate([outer, inner])
    features += noise * rng.standard_normal(features.shape)
    labels = np.concatenate([np.ones(half), -np.ones(rest)])
    return ArrayDataset(features, labels)


def make_blobs(
    n_samples: int,
    rng: np.random.Generator,
    centers: Optional[np.ndarray] = None,
    spread: float = 0.3,
) -> ArrayDataset:
    """Two Gaussian blobs (default centers at ±1 on the diagonal)."""
    if centers is None:
        centers = np.array([[1.0, 1.0], [-1.0, -1.0]])
    half = n_samples // 2
    rest = n_samples - half
    a = centers[0] + spread * rng.standard_normal((half, centers.shape[1]))
    b = centers[1] + spread * rng.standard_normal((rest, centers.shape[1]))
    features = np.concatenate([a, b])
    labels = np.concatenate([np.ones(half), -np.ones(rest)])
    return ArrayDataset(features, labels)


def make_parity(n_bits: int) -> ArrayDataset:
    """All 2^n bitstrings labelled by parity (the classic hard QNN target)."""
    if n_bits < 1 or n_bits > 16:
        raise ConfigError(f"n_bits must be in [1, 16], got {n_bits}")
    count = 2**n_bits
    features = np.zeros((count, n_bits))
    labels = np.zeros(count)
    for index in range(count):
        bits = [(index >> (n_bits - 1 - b)) & 1 for b in range(n_bits)]
        features[index] = bits
        labels[index] = 1.0 if sum(bits) % 2 == 0 else -1.0
    return ArrayDataset(features, labels)


# ---------------------------------------------------------------------------
# Checkpointable batch sampler
# ---------------------------------------------------------------------------


class BatchSampler:
    """Shuffled mini-batch index stream with capturable position.

    The sampler owns a private RNG (seeded at construction) so that data
    order is independent of the model's shot noise stream.  ``state()``
    captures epoch, cursor, current permutation and RNG state;
    ``restore_state()`` resumes the stream bit-exactly.
    """

    def __init__(self, n_items: int, batch_size: int, seed: int = 0):
        if n_items < 1:
            raise ConfigError(f"n_items must be >= 1, got {n_items}")
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        self.n_items = int(n_items)
        self.batch_size = min(int(batch_size), self.n_items)
        self._rng = np.random.default_rng(seed)
        self.epoch = 0
        self._cursor = 0
        self._permutation = self._rng.permutation(self.n_items)

    def next_batch(self) -> np.ndarray:
        """Return the next batch of indices, reshuffling at epoch boundaries."""
        if self._cursor >= self.n_items:
            self.epoch += 1
            self._cursor = 0
            self._permutation = self._rng.permutation(self.n_items)
        end = min(self._cursor + self.batch_size, self.n_items)
        batch = self._permutation[self._cursor : end]
        self._cursor = end
        return batch.copy()

    # -- state ------------------------------------------------------------------

    def state(self) -> Dict:
        """Capturable position: epoch, cursor, permutation, RNG state."""
        return {
            "epoch": self.epoch,
            "cursor": self._cursor,
            "permutation": self._permutation.copy(),
            "rng_state": capture_rng_state(self._rng),
            "n_items": self.n_items,
            "batch_size": self.batch_size,
        }

    def restore_state(self, state: Dict) -> None:
        """Resume the index stream from a captured position."""
        if int(state["n_items"]) != self.n_items:
            raise ConfigError(
                f"sampler state is for {state['n_items']} items, "
                f"sampler has {self.n_items}"
            )
        self.epoch = int(state["epoch"])
        self._cursor = int(state["cursor"])
        self._permutation = np.array(state["permutation"], dtype=np.int64)
        self.batch_size = int(state["batch_size"])
        self._rng = generator_from_state(copy.deepcopy(state["rng_state"]))
