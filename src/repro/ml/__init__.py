"""Hybrid quantum-classical training substrate.

The training loop here is deliberately *fully capturable*: every piece of
state that influences future steps — parameters, optimizer slots, RNG state,
batch-sampler position — can be captured into a
:class:`repro.core.snapshot.TrainingSnapshot` and restored bit-exactly.  That
property is what the checkpointing layer (the paper's contribution) packages
and persists.
"""

from repro.ml.dataset import ArrayDataset, BatchSampler
from repro.ml.models import (
    NoisyVQEModel,
    QAOAMaxCutModel,
    UnitaryLearningModel,
    VariationalClassifier,
    VQEModel,
)
from repro.ml.optimizers import SGD, AdaGrad, Adam, Optimizer, RMSProp
from repro.ml.trainer import StepInfo, Trainer, TrainerConfig

__all__ = [
    "ArrayDataset",
    "BatchSampler",
    "VariationalClassifier",
    "VQEModel",
    "NoisyVQEModel",
    "QAOAMaxCutModel",
    "UnitaryLearningModel",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSProp",
    "AdaGrad",
    "Trainer",
    "TrainerConfig",
    "StepInfo",
]
