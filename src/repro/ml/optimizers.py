"""Classical optimizers with fully serializable state.

Every optimizer exposes ``state_dict()`` / ``load_state_dict()`` returning a
plain dict of scalars and numpy arrays (no callables, no pickle), so the
checkpoint layer can persist optimizer *slots* (Adam moments etc.) next to
the parameters.  Losing these slots is the classic resume bug this library
exists to prevent: restarting Adam from step 0 with warm parameters both
re-runs bias correction and forgets curvature, visibly kinking the loss
curve.

All optimizers minimize: ``params <- params - lr * update``.
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np

from repro.errors import ConfigError, IncompatibleCheckpointError

_REGISTRY: Dict[str, Type["Optimizer"]] = {}


def register(cls: Type["Optimizer"]) -> Type["Optimizer"]:
    """Class decorator adding an optimizer to the factory registry."""
    _REGISTRY[cls.kind] = cls
    return cls


def optimizer_from_state_dict(state: Dict) -> "Optimizer":
    """Reconstruct any registered optimizer from its ``state_dict()``."""
    kind = state.get("kind")
    if kind not in _REGISTRY:
        raise IncompatibleCheckpointError(f"unknown optimizer kind {kind!r}")
    optimizer = _REGISTRY[kind](**state.get("hyper", {}))
    optimizer.load_state_dict(state)
    return optimizer


class Optimizer:
    """Base class; subclasses define ``kind``, ``_update`` and slot handling."""

    kind = "base"

    def __init__(self, lr: float = 0.01):
        if lr <= 0:
            raise ConfigError(f"learning rate must be > 0, got {lr}")
        self.lr = float(lr)
        self.t = 0

    # -- stepping --------------------------------------------------------------

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Return updated parameters; advances internal slots."""
        params = np.asarray(params, dtype=np.float64)
        grads = np.asarray(grads, dtype=np.float64)
        if params.shape != grads.shape:
            raise ConfigError(
                f"params shape {params.shape} != grads shape {grads.shape}"
            )
        self.t += 1
        return params - self.lr * self._update(params, grads)

    def _update(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- state -----------------------------------------------------------------

    def hyperparameters(self) -> Dict:
        """Constructor arguments (JSON scalars only)."""
        return {"lr": self.lr}

    def _slots(self) -> Dict:
        """Mutable slot values: numpy arrays and scalars."""
        return {"t": self.t}

    def _load_slots(self, slots: Dict) -> None:
        self.t = int(slots["t"])

    def state_dict(self) -> Dict:
        """Complete serializable state: kind + hyperparameters + slots."""
        return {
            "kind": self.kind,
            "hyper": self.hyperparameters(),
            "slots": self._slots(),
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore slots (and hyperparameters) from ``state_dict()`` output."""
        if state.get("kind") != self.kind:
            raise IncompatibleCheckpointError(
                f"optimizer state is for {state.get('kind')!r}, "
                f"this optimizer is {self.kind!r}"
            )
        for name, value in state.get("hyper", {}).items():
            setattr(self, name, value)
        self._load_slots(dict(state.get("slots", {})))

    def reset(self) -> None:
        """Drop all accumulated slots (fresh optimizer with same hyper)."""
        self.load_state_dict(
            {"kind": self.kind, "hyper": self.hyperparameters(), "slots": self._fresh_slots()}
        )

    def _fresh_slots(self) -> Dict:
        return {"t": 0}

    def __repr__(self) -> str:
        hyper = ", ".join(f"{k}={v}" for k, v in self.hyperparameters().items())
        return f"{type(self).__name__}({hyper}, t={self.t})"


@register
class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    kind = "sgd"

    def __init__(
        self,
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ):
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ConfigError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self.weight_decay = float(weight_decay)
        self._velocity: np.ndarray | None = None

    def hyperparameters(self) -> Dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "nesterov": self.nesterov,
            "weight_decay": self.weight_decay,
        }

    def _update(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            grads = grads + self.weight_decay * params
        if self.momentum == 0.0:
            return grads
        if self._velocity is None or self._velocity.shape != grads.shape:
            self._velocity = np.zeros_like(grads)
        self._velocity = self.momentum * self._velocity + grads
        if self.nesterov:
            return grads + self.momentum * self._velocity
        return self._velocity

    def _slots(self) -> Dict:
        slots = super()._slots()
        if self._velocity is not None:
            slots["velocity"] = self._velocity.copy()
        return slots

    def _load_slots(self, slots: Dict) -> None:
        super()._load_slots(slots)
        velocity = slots.get("velocity")
        self._velocity = None if velocity is None else np.array(velocity, dtype=np.float64)

    def _fresh_slots(self) -> Dict:
        return {"t": 0}


@register
class Adam(Optimizer):
    """Adam (Kingma & Ba) with optional AMSGrad."""

    kind = "adam"

    def __init__(
        self,
        lr: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        amsgrad: bool = False,
    ):
        super().__init__(lr)
        for name, beta in (("beta1", beta1), ("beta2", beta2)):
            if not 0.0 <= beta < 1.0:
                raise ConfigError(f"{name} must be in [0, 1), got {beta}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.amsgrad = bool(amsgrad)
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._vmax: np.ndarray | None = None

    def hyperparameters(self) -> Dict:
        return {
            "lr": self.lr,
            "beta1": self.beta1,
            "beta2": self.beta2,
            "eps": self.eps,
            "amsgrad": self.amsgrad,
        }

    def _update(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        if self._m is None or self._m.shape != grads.shape:
            self._m = np.zeros_like(grads)
            self._v = np.zeros_like(grads)
            self._vmax = np.zeros_like(grads)
        self._m = self.beta1 * self._m + (1 - self.beta1) * grads
        self._v = self.beta2 * self._v + (1 - self.beta2) * grads**2
        m_hat = self._m / (1 - self.beta1**self.t)
        if self.amsgrad:
            self._vmax = np.maximum(self._vmax, self._v)
            v_hat = self._vmax / (1 - self.beta2**self.t)
        else:
            v_hat = self._v / (1 - self.beta2**self.t)
        return m_hat / (np.sqrt(v_hat) + self.eps)

    def _slots(self) -> Dict:
        slots = super()._slots()
        if self._m is not None:
            slots["m"] = self._m.copy()
            slots["v"] = self._v.copy()
            slots["vmax"] = self._vmax.copy()
        return slots

    def _load_slots(self, slots: Dict) -> None:
        super()._load_slots(slots)
        for attr, key in (("_m", "m"), ("_v", "v"), ("_vmax", "vmax")):
            value = slots.get(key)
            setattr(
                self,
                attr,
                None if value is None else np.array(value, dtype=np.float64),
            )


@register
class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton) with optional momentum."""

    kind = "rmsprop"

    def __init__(
        self,
        lr: float = 0.01,
        alpha: float = 0.99,
        eps: float = 1e-8,
        momentum: float = 0.0,
    ):
        super().__init__(lr)
        if not 0.0 <= alpha < 1.0:
            raise ConfigError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = float(alpha)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self._sq: np.ndarray | None = None
        self._buf: np.ndarray | None = None

    def hyperparameters(self) -> Dict:
        return {
            "lr": self.lr,
            "alpha": self.alpha,
            "eps": self.eps,
            "momentum": self.momentum,
        }

    def _update(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        if self._sq is None or self._sq.shape != grads.shape:
            self._sq = np.zeros_like(grads)
            self._buf = np.zeros_like(grads)
        self._sq = self.alpha * self._sq + (1 - self.alpha) * grads**2
        scaled = grads / (np.sqrt(self._sq) + self.eps)
        if self.momentum == 0.0:
            return scaled
        self._buf = self.momentum * self._buf + scaled
        return self._buf

    def _slots(self) -> Dict:
        slots = super()._slots()
        if self._sq is not None:
            slots["sq"] = self._sq.copy()
            slots["buf"] = self._buf.copy()
        return slots

    def _load_slots(self, slots: Dict) -> None:
        super()._load_slots(slots)
        for attr, key in (("_sq", "sq"), ("_buf", "buf")):
            value = slots.get(key)
            setattr(
                self,
                attr,
                None if value is None else np.array(value, dtype=np.float64),
            )


@register
class AdaGrad(Optimizer):
    """AdaGrad (Duchi et al.): per-parameter lifetime gradient accumulation."""

    kind = "adagrad"

    def __init__(self, lr: float = 0.01, eps: float = 1e-10):
        super().__init__(lr)
        self.eps = float(eps)
        self._acc: np.ndarray | None = None

    def hyperparameters(self) -> Dict:
        return {"lr": self.lr, "eps": self.eps}

    def _update(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        if self._acc is None or self._acc.shape != grads.shape:
            self._acc = np.zeros_like(grads)
        self._acc = self._acc + grads**2
        return grads / (np.sqrt(self._acc) + self.eps)

    def _slots(self) -> Dict:
        slots = super()._slots()
        if self._acc is not None:
            slots["acc"] = self._acc.copy()
        return slots

    def _load_slots(self, slots: Dict) -> None:
        super()._load_slots(slots)
        value = slots.get("acc")
        self._acc = None if value is None else np.array(value, dtype=np.float64)
