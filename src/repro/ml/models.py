"""Trainable hybrid models.

A model owns the *structure* of the problem (ansatz circuit, encoder,
observable) and exposes one method the trainer needs::

    loss_and_grad(params, batch, shots=None, rng=None) -> (loss, grads)

plus a ``fingerprint()`` identifying the structure.  Checkpoints embed the
fingerprint; resume refuses snapshots from a different model structure
(:class:`repro.errors.IncompatibleCheckpointError`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff.adjoint import adjoint_gradient
from repro.autodiff.density_shift import density_parameter_shift_gradient
from repro.autodiff.parameter_shift import parameter_shift_gradient
from repro.errors import ConfigError
from repro.quantum.circuit import Circuit, concat
from repro.quantum.density import apply_circuit_density, expectation_density
from repro.quantum.encoding import angle_encoding
from repro.quantum.noise import NoiseModel
from repro.quantum.observables import Hamiltonian, PauliString, Projector
from repro.quantum.sampling import estimate_expectation, sample_bitstrings
from repro.quantum.statevector import apply_circuit
from repro.quantum.templates import qaoa_maxcut

EncoderFn = Callable[[np.ndarray], Circuit]


def _fingerprint_parts(*parts: str) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class VariationalClassifier:
    """Binary classifier: ``f(x) = <Z_readout>`` of ``encoder(x) + ansatz``.

    Labels are ±1.  Loss is mean squared error ``mean((f(x) - y)^2)`` (the
    default) or binary cross-entropy on ``p = (1 + f) / 2``.
    """

    def __init__(
        self,
        ansatz: Circuit,
        encoder: Optional[EncoderFn] = None,
        encoder_id: str = "angle-ry",
        readout: Optional[PauliString] = None,
        loss: str = "mse",
        gradient_method: str = "adjoint",
    ):
        self.ansatz = ansatz
        self.n_qubits = ansatz.n_qubits
        if encoder is None:
            encoder = lambda x: angle_encoding(x, self.n_qubits, "ry")  # noqa: E731
        self.encoder = encoder
        self.encoder_id = encoder_id
        self.readout = readout or PauliString.from_label("Z0")
        if loss not in {"mse", "bce"}:
            raise ConfigError(f"loss must be 'mse' or 'bce', got {loss!r}")
        self.loss = loss
        # Execution detail, not structure (excluded from the fingerprint):
        # "parameter-shift" batches the shifted executions, which lets them
        # shard across worker processes under an ambient execution scope.
        if gradient_method not in {"adjoint", "parameter-shift"}:
            raise ConfigError(
                f"gradient_method must be 'adjoint' or 'parameter-shift', "
                f"got {gradient_method!r}"
            )
        self.gradient_method = gradient_method

    @property
    def n_params(self) -> int:
        return self.ansatz.n_params

    def fingerprint(self) -> str:
        return _fingerprint_parts(
            "VariationalClassifier",
            self.ansatz.fingerprint(),
            self.encoder_id,
            json.dumps(self.readout.to_json(), sort_keys=True),
            self.loss,
        )

    def init_params(self, rng: np.random.Generator, scale: float = 0.1) -> np.ndarray:
        return scale * rng.standard_normal(self.n_params)

    # -- forward ---------------------------------------------------------------

    def _full_circuit(self, x: np.ndarray) -> Circuit:
        return concat([self.encoder(x), self.ansatz])

    def forward_one(
        self,
        params: np.ndarray,
        x: np.ndarray,
        shots: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Expectation value of the readout for one sample."""
        circuit = self._full_circuit(x)
        state = apply_circuit(circuit, params)
        if shots is None:
            return float(self.readout.expectation(state))
        if rng is None:
            raise ConfigError("shot-based forward requires an rng")
        return float(estimate_expectation(state, self.readout, shots, rng))

    def predict(self, params: np.ndarray, features: np.ndarray) -> np.ndarray:
        """±1 predictions (exact expectations; ties resolve to +1)."""
        outputs = np.array([self.forward_one(params, x) for x in features])
        return np.where(outputs >= 0.0, 1.0, -1.0)

    def accuracy(
        self, params: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> float:
        """Fraction of correct ±1 predictions."""
        return float(np.mean(self.predict(params, features) == labels))

    # -- loss/gradient ------------------------------------------------------------

    def _loss_terms(self, output: float, label: float) -> Tuple[float, float]:
        """Per-sample (loss, dloss/doutput)."""
        if self.loss == "mse":
            diff = output - label
            return diff * diff, 2.0 * diff
        # bce on p = (1 + f)/2 with y01 = (1 + label)/2
        eps = 1e-9
        p = min(max((1.0 + output) / 2.0, eps), 1.0 - eps)
        y01 = (1.0 + label) / 2.0
        loss = -(y01 * np.log(p) + (1 - y01) * np.log(1 - p))
        dloss_dp = (p - y01) / (p * (1 - p))
        return float(loss), float(dloss_dp * 0.5)

    def loss_and_grad(
        self,
        params: np.ndarray,
        batch: Tuple[np.ndarray, np.ndarray],
        shots: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[float, np.ndarray]:
        """Mean loss and gradient over a (features, labels) batch."""
        features, labels = batch
        total_loss = 0.0
        total_grad = np.zeros(self.n_params)
        for x, y in zip(features, labels):
            circuit = self._full_circuit(x)
            if shots is None:
                if self.gradient_method == "parameter-shift":
                    output = self.forward_one(params, x)
                    grad_f = parameter_shift_gradient(
                        circuit, params, self.readout
                    )
                else:
                    output, grad_f = adjoint_gradient(
                        circuit, params, self.readout, return_value=True
                    )
            else:
                output = self.forward_one(params, x, shots, rng)
                grad_f = parameter_shift_gradient(
                    circuit, params, self.readout, shots=shots, rng=rng
                )
            loss, dloss = self._loss_terms(float(output), float(y))
            total_loss += loss
            total_grad += dloss * grad_f
        count = max(len(features), 1)
        return total_loss / count, total_grad / count


class VQEModel:
    """Variational quantum eigensolver: loss is ``<H>`` of the ansatz state.

    ``gradient_method`` selects the analytic differentiator: ``"adjoint"``
    (default — one reverse sweep, cheapest single-process) or
    ``"parameter-shift"`` (the batched shift rule, whose shifted-execution
    batch can fan out across shard worker processes via the ambient
    :func:`repro.quantum.engines.execution_scope` /
    ``TrainerConfig.shard_workers``).  Both are exact; the choice is not
    part of the model fingerprint, like the engine tier it is an execution
    detail.  Shot-based gradients always use the shift rule.
    """

    def __init__(
        self,
        ansatz: Circuit,
        hamiltonian: Hamiltonian,
        gradient_method: str = "adjoint",
    ):
        self.ansatz = ansatz
        self.hamiltonian = hamiltonian
        self.n_qubits = ansatz.n_qubits
        if hamiltonian.max_wire() >= ansatz.n_qubits:
            raise ConfigError(
                f"hamiltonian acts on wire {hamiltonian.max_wire()}, "
                f"ansatz has {ansatz.n_qubits} qubits"
            )
        if gradient_method not in {"adjoint", "parameter-shift"}:
            raise ConfigError(
                f"gradient_method must be 'adjoint' or 'parameter-shift', "
                f"got {gradient_method!r}"
            )
        self.gradient_method = gradient_method

    @property
    def n_params(self) -> int:
        return self.ansatz.n_params

    def fingerprint(self) -> str:
        return _fingerprint_parts(
            "VQEModel",
            self.ansatz.fingerprint(),
            json.dumps(self.hamiltonian.to_json(), sort_keys=True),
        )

    def init_params(self, rng: np.random.Generator, scale: float = 0.1) -> np.ndarray:
        return scale * rng.standard_normal(self.n_params)

    def energy(self, params: np.ndarray) -> float:
        """Exact energy expectation."""
        state = apply_circuit(self.ansatz, params)
        return float(self.hamiltonian.expectation(state))

    def statevector(self, params: np.ndarray) -> np.ndarray:
        """Final ansatz state (the warm-start cache checkpoints can persist)."""
        return apply_circuit(self.ansatz, params)

    def loss_and_grad(
        self,
        params: np.ndarray,
        batch=None,
        shots: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[float, np.ndarray]:
        """Energy and its gradient (batch is ignored; VQE has no dataset)."""
        if shots is None:
            if self.gradient_method == "parameter-shift":
                grads = parameter_shift_gradient(
                    self.ansatz, params, self.hamiltonian
                )
                return self.energy(params), grads
            value, grads = adjoint_gradient(
                self.ansatz, params, self.hamiltonian, return_value=True
            )
            return float(value), grads
        if rng is None:
            raise ConfigError("shot-based VQE requires an rng")
        state = apply_circuit(self.ansatz, params)
        value = estimate_expectation(state, self.hamiltonian, shots, rng)
        grads = parameter_shift_gradient(
            self.ansatz, params, self.hamiltonian, shots=shots, rng=rng
        )
        return float(value), grads


class NoisyVQEModel:
    """VQE under an exact (density-matrix) noise model.

    Loss is ``tr(rho(theta) H)`` where ``rho`` is evolved through the ansatz
    with every enabled Kraus channel applied deterministically — the
    noise-floor reference for the trajectory-sampled simulations.  Gradients
    use the parameter-shift rules, which stay exact under parameter-
    independent noise.  Memory is O(4^n): this is the worst-case
    checkpoint-footprint workload.
    """

    def __init__(
        self,
        ansatz: Circuit,
        hamiltonian: Hamiltonian,
        noise: NoiseModel,
    ):
        self.ansatz = ansatz
        self.hamiltonian = hamiltonian
        self.noise = noise
        self.n_qubits = ansatz.n_qubits
        if hamiltonian.max_wire() >= ansatz.n_qubits:
            raise ConfigError(
                f"hamiltonian acts on wire {hamiltonian.max_wire()}, "
                f"ansatz has {ansatz.n_qubits} qubits"
            )

    @property
    def n_params(self) -> int:
        return self.ansatz.n_params

    def fingerprint(self) -> str:
        noise_id = json.dumps(
            {
                "depolarizing": self.noise.depolarizing,
                "bit_flip": self.noise.bit_flip,
                "phase_flip": self.noise.phase_flip,
                "amplitude_damping": self.noise.amplitude_damping,
            },
            sort_keys=True,
        )
        return _fingerprint_parts(
            "NoisyVQEModel",
            self.ansatz.fingerprint(),
            json.dumps(self.hamiltonian.to_json(), sort_keys=True),
            noise_id,
        )

    def init_params(self, rng: np.random.Generator, scale: float = 0.1) -> np.ndarray:
        return scale * rng.standard_normal(self.n_params)

    def energy(self, params: np.ndarray) -> float:
        """Exact noisy energy ``tr(rho(theta) H)``."""
        rho = apply_circuit_density(self.ansatz, params, noise=self.noise)
        return expectation_density(rho, self.hamiltonian)

    def density_matrix(self, params: np.ndarray) -> np.ndarray:
        """Final noisy state (the O(4^n) warm-start cache)."""
        return apply_circuit_density(self.ansatz, params, noise=self.noise)

    def loss_and_grad(
        self,
        params: np.ndarray,
        batch=None,
        shots: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[float, np.ndarray]:
        """Noisy energy and its exact parameter-shift gradient."""
        if shots is not None:
            raise ConfigError(
                "NoisyVQEModel is the exact reference; use VQEModel with a "
                "trajectory noise model for shot-based training"
            )
        loss = self.energy(params)
        grads = density_parameter_shift_gradient(
            self.ansatz, params, self.hamiltonian, noise=self.noise
        )
        return loss, grads


class QAOAMaxCutModel:
    """QAOA for MaxCut on an undirected graph.

    The cost Hamiltonian is ``sum_{(a,b) in E} w_ab/2 (Z_a Z_b - 1)`` whose
    minimum is ``-maxcut``; the ansatz is the standard alternating
    cost/mixer circuit of :func:`repro.quantum.templates.qaoa_maxcut`, whose
    per-layer ``gamma``/``beta`` parameters are *shared* across gates — the
    workload that stresses shared-parameter slots in the autodiff stack and
    gives tiny (O(layers)) parameter vectors next to O(2^n) statevectors.

    ``graph`` is an edge list ``[(a, b), ...]`` or ``[(a, b, weight), ...]``;
    ``networkx`` graphs are accepted via :meth:`from_networkx`.
    """

    def __init__(
        self,
        n_qubits: int,
        edges: Sequence[Tuple],
        n_layers: int = 2,
    ):
        if n_layers < 1:
            raise ConfigError(f"n_layers must be >= 1, got {n_layers}")
        normalized = []
        for edge in edges:
            if len(edge) == 2:
                a, b, weight = int(edge[0]), int(edge[1]), 1.0
            elif len(edge) == 3:
                a, b, weight = int(edge[0]), int(edge[1]), float(edge[2])
            else:
                raise ConfigError(f"edge {edge!r} is not (a, b) or (a, b, w)")
            if a == b:
                raise ConfigError(f"self-loop edge ({a}, {b}) is not a cut edge")
            if not (0 <= a < n_qubits and 0 <= b < n_qubits):
                raise ConfigError(
                    f"edge ({a}, {b}) out of range for {n_qubits} qubits"
                )
            normalized.append((min(a, b), max(a, b), weight))
        if not normalized:
            raise ConfigError("MaxCut needs at least one edge")
        self.n_qubits = int(n_qubits)
        self.edges = tuple(sorted(normalized))
        self.n_layers = int(n_layers)
        self.ansatz = qaoa_maxcut(
            n_qubits, [(a, b) for a, b, _ in self.edges], n_layers
        )
        # C = sum w/2 (Z_a Z_b - 1); minimizing <C> maximizes the cut.
        terms = [
            PauliString(weight / 2.0, ((a, "Z"), (b, "Z")))
            for a, b, weight in self.edges
        ]
        offset = -sum(weight for _, _, weight in self.edges) / 2.0
        terms.append(PauliString.identity(offset))
        self.hamiltonian = Hamiltonian(terms)

    @classmethod
    def from_networkx(cls, graph, n_layers: int = 2) -> "QAOAMaxCutModel":
        """Build from a ``networkx`` graph (uses ``weight`` attributes)."""
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [
            (index[a], index[b], float(data.get("weight", 1.0)))
            for a, b, data in graph.edges(data=True)
        ]
        return cls(len(nodes), edges, n_layers)

    @property
    def n_params(self) -> int:
        return self.ansatz.n_params

    def fingerprint(self) -> str:
        return _fingerprint_parts(
            "QAOAMaxCutModel",
            self.ansatz.fingerprint(),
            json.dumps([list(e) for e in self.edges]),
        )

    def init_params(self, rng: np.random.Generator, scale: float = 0.1) -> np.ndarray:
        return scale * rng.standard_normal(self.n_params)

    # -- cut evaluation -----------------------------------------------------------

    def cut_value(self, bitstring: Sequence[int]) -> float:
        """Total weight of edges cut by an assignment (0/1 per qubit)."""
        bits = list(bitstring)
        if len(bits) != self.n_qubits:
            raise ConfigError(
                f"bitstring length {len(bits)} != {self.n_qubits} qubits"
            )
        return float(
            sum(w for a, b, w in self.edges if bits[a] != bits[b])
        )

    def max_cut_brute_force(self) -> float:
        """Exact MaxCut by enumeration (exponential; for validation)."""
        best = 0.0
        for assignment in range(2**self.n_qubits):
            best = max(best, self.cut_value(self._index_to_bits(assignment)))
        return best

    def expected_cut(self, params: np.ndarray) -> float:
        """Expected cut value of the QAOA state (``-<C>``)."""
        return -self.energy(params)

    def _index_to_bits(self, index: int) -> List[int]:
        """Basis index → bit list (qubit 0 is the most significant bit)."""
        return [
            (index >> (self.n_qubits - 1 - q)) & 1 for q in range(self.n_qubits)
        ]

    def sample_cut(
        self, params: np.ndarray, shots: int, rng: np.random.Generator
    ) -> Tuple[List[int], float]:
        """Best bitstring (and its cut) among ``shots`` measured samples."""
        state = apply_circuit(self.ansatz, params)
        samples = sample_bitstrings(state, shots, rng)
        best_bits: List[int] = []
        best_value = -1.0
        for index in np.unique(samples):
            bits = self._index_to_bits(int(index))
            value = self.cut_value(bits)
            if value > best_value:
                best_bits, best_value = bits, value
        return best_bits, best_value

    # -- training interface ---------------------------------------------------------

    def energy(self, params: np.ndarray) -> float:
        """Exact ``<C>`` (negative expected cut)."""
        state = apply_circuit(self.ansatz, params)
        return float(self.hamiltonian.expectation(state))

    def statevector(self, params: np.ndarray) -> np.ndarray:
        """Final QAOA state (the warm-start cache checkpoints can persist)."""
        return apply_circuit(self.ansatz, params)

    def loss_and_grad(
        self,
        params: np.ndarray,
        batch=None,
        shots: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[float, np.ndarray]:
        """``<C>`` and its gradient (adjoint exact, parameter-shift for shots).

        The shared gamma/beta slots make the parameter-shift path exercise
        per-occurrence shifting; both paths agree to machine precision in the
        exact case (covered by tests).
        """
        if shots is None:
            value, grads = adjoint_gradient(
                self.ansatz, params, self.hamiltonian, return_value=True
            )
            return float(value), grads
        if rng is None:
            raise ConfigError("shot-based QAOA requires an rng")
        state = apply_circuit(self.ansatz, params)
        value = estimate_expectation(state, self.hamiltonian, shots, rng)
        grads = parameter_shift_gradient(
            self.ansatz, params, self.hamiltonian, shots=shots, rng=rng
        )
        return float(value), grads


class UnitaryLearningModel:
    """Learn a target unitary from (input state, output state) examples.

    This is the characterization workload of the QNN literature: loss is
    ``1 - mean fidelity`` between the ansatz output and ``U|phi_x>`` over the
    training inputs.  Gradients flow through rank-one :class:`Projector`
    observables via adjoint differentiation.
    """

    def __init__(
        self,
        ansatz: Circuit,
        target_unitary: np.ndarray,
        input_states: Sequence[np.ndarray],
    ):
        self.ansatz = ansatz
        self.n_qubits = ansatz.n_qubits
        dim = 2**ansatz.n_qubits
        target_unitary = np.asarray(target_unitary, dtype=np.complex128)
        if target_unitary.shape != (dim, dim):
            raise ConfigError(
                f"target unitary shape {target_unitary.shape} does not match "
                f"{ansatz.n_qubits} qubits"
            )
        self.target_unitary = target_unitary
        self.input_states = [np.asarray(s, dtype=np.complex128) for s in input_states]
        if not self.input_states:
            raise ConfigError("need at least one training input state")
        for state in self.input_states:
            if state.shape != (dim,):
                raise ConfigError(f"input state shape {state.shape} != ({dim},)")
        self._targets = [target_unitary @ state for state in self.input_states]

    @property
    def n_params(self) -> int:
        return self.ansatz.n_params

    def fingerprint(self) -> str:
        digest = hashlib.sha256()
        digest.update(self.ansatz.fingerprint().encode())
        digest.update(np.ascontiguousarray(self.target_unitary).tobytes())
        for state in self.input_states:
            digest.update(np.ascontiguousarray(state).tobytes())
        return _fingerprint_parts("UnitaryLearningModel", digest.hexdigest())

    def init_params(self, rng: np.random.Generator, scale: float = 0.1) -> np.ndarray:
        return scale * rng.standard_normal(self.n_params)

    def mean_fidelity(self, params: np.ndarray) -> float:
        """Average ``|<target_x|V(params)|phi_x>|^2`` over training pairs."""
        total = 0.0
        for state, target in zip(self.input_states, self._targets):
            out = apply_circuit(self.ansatz, params, initial_state=state)
            total += float(abs(np.vdot(target, out)) ** 2)
        return total / len(self.input_states)

    def loss_and_grad(
        self,
        params: np.ndarray,
        batch=None,
        shots: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[float, np.ndarray]:
        """``1 - mean fidelity`` and its gradient (exact only)."""
        if shots is not None:
            raise ConfigError(
                "UnitaryLearningModel supports exact simulation only"
            )
        total_fid = 0.0
        total_grad = np.zeros(self.n_params)
        for state, target in zip(self.input_states, self._targets):
            projector = Projector(target)
            fid, grad = adjoint_gradient(
                self.ansatz,
                params,
                projector,
                initial_state=state,
                return_value=True,
            )
            total_fid += fid
            total_grad += grad
        count = len(self.input_states)
        return 1.0 - total_fid / count, -total_grad / count
