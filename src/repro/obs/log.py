"""Structured diagnostics: component + level + ``key=value`` fields.

One line per event on stderr (never stdout — stdout belongs to command
output and is parsed by scripts), machine-grepable:

    2026-08-07T12:00:01 INFO daemon transport-start transport=socket listen=127.0.0.1:8341

Level resolution, highest precedence first: :func:`configure` (the CLI's
``--verbose`` maps to ``debug``), then the ``QCKPT_LOG`` environment
variable (``debug``/``info``/``warning``/``error``), then the default
``warning`` — so daemons are quiet unless an operator asks.

When an ambient trace span exists, its trace id is appended as
``trace=<id>``, which is what stitches a log line to the JSONL span tree.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Optional, TextIO

from repro.obs.trace import current_trace_id

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_DEFAULT_LEVEL = "warning"

_lock = threading.Lock()
_configured_level: Optional[str] = None
_stream: Optional[TextIO] = None  # None -> sys.stderr at emit time


def _env_level() -> str:
    level = os.environ.get("QCKPT_LOG", "").strip().lower()
    return level if level in _LEVELS else _DEFAULT_LEVEL


def configure(
    level: Optional[str] = None, stream: Optional[TextIO] = None
) -> None:
    """Override the log level and/or destination (tests, ``--verbose``)."""
    global _configured_level, _stream
    if level is not None:
        level = level.strip().lower()
        if level not in _LEVELS:
            raise ValueError(
                f"unknown log level {level!r}, expected one of "
                f"{sorted(_LEVELS)}"
            )
    with _lock:
        if level is not None:
            _configured_level = level
        if stream is not None:
            _stream = stream


def reset() -> None:
    """Back to environment-driven defaults (tests)."""
    global _configured_level, _stream
    with _lock:
        _configured_level = None
        _stream = None


def threshold() -> int:
    return _LEVELS[_configured_level or _env_level()]


def _format_value(value) -> str:
    text = str(value)
    if " " in text or '"' in text or "=" in text:
        text = '"' + text.replace('"', r"\"") + '"'
    return text


class ObsLogger:
    """Per-component structured logger; cheap to construct and hold."""

    def __init__(self, component: str):
        self.component = component

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if _LEVELS[level] < threshold():
            return
        trace_id = current_trace_id()
        if trace_id is not None:
            fields = dict(fields, trace=trace_id)
        stamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime())
        parts = [stamp, level.upper(), self.component, event]
        parts.extend(f"{k}={_format_value(v)}" for k, v in fields.items())
        line = " ".join(parts)
        with _lock:
            stream = _stream or sys.stderr
            try:
                print(line, file=stream)
            except (OSError, ValueError):
                pass  # a dead stderr must never take the daemon down

    def debug(self, event: str, **fields) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        self._emit("error", event, fields)


def get_logger(component: str) -> ObsLogger:
    return ObsLogger(component)


__all__ = ["ObsLogger", "configure", "get_logger", "reset", "threshold"]
