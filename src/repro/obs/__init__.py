"""Unified observability: metrics registry, tracing, structured logs.

See :mod:`repro.obs.metrics` (counters/gauges/histograms + the
``StatsView`` migration shim), :mod:`repro.obs.trace` (spans with ambient
propagation across threads and the control-plane wire),
:mod:`repro.obs.log` (structured stderr diagnostics),
:mod:`repro.obs.export` (bounded JSONL logs + the on-store ``obs/``
directory), and the observatory trio: :mod:`repro.obs.timeseries`
(epoch-aware SQLite sample history), :mod:`repro.obs.profile` (span-tree
profiling with stage attribution and critical paths), and
:mod:`repro.obs.health` (declarative health rules -> ok/warn/critical).
"""

from repro.obs.export import (
    BoundedJsonlWriter,
    JsonlTraceSink,
    ObsDir,
    prometheus_text,
    read_jsonl_records,
    store_obs_dir,
)
from repro.obs.health import (
    DEFAULT_RULES,
    HealthEngine,
    HealthFinding,
    HealthReport,
    HealthRule,
)
from repro.obs.log import ObsLogger, configure, get_logger
from repro.obs.profile import (
    OpAggregate,
    ProfileNode,
    build_trees,
    critical_path,
    folded_stacks,
    load_trees,
    stage_coverage,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
)
from repro.obs.timeseries import (
    Sample,
    TimeSeriesDB,
    TimeSeriesSampler,
)
from repro.obs.trace import (
    TRACE_KEY,
    MemoryTraceSink,
    Span,
    TraceSink,
    capture_context,
    current_span,
    current_trace_id,
    new_span_id,
    new_trace_id,
    parse_context,
    set_trace_sink,
    span_scope,
    traced,
    tracing_enabled,
    wire_context,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_RULES",
    "TRACE_KEY",
    "BoundedJsonlWriter",
    "Counter",
    "Gauge",
    "HealthEngine",
    "HealthFinding",
    "HealthReport",
    "HealthRule",
    "Histogram",
    "JsonlTraceSink",
    "MemoryTraceSink",
    "MetricsRegistry",
    "ObsDir",
    "ObsLogger",
    "OpAggregate",
    "ProfileNode",
    "Sample",
    "Span",
    "StatsView",
    "TimeSeriesDB",
    "TimeSeriesSampler",
    "TraceSink",
    "build_trees",
    "capture_context",
    "configure",
    "critical_path",
    "current_span",
    "current_trace_id",
    "folded_stacks",
    "get_logger",
    "load_trees",
    "new_span_id",
    "new_trace_id",
    "parse_context",
    "prometheus_text",
    "read_jsonl_records",
    "set_trace_sink",
    "span_scope",
    "stage_coverage",
    "store_obs_dir",
    "traced",
    "tracing_enabled",
    "wire_context",
]
