"""Unified observability: metrics registry, tracing, structured logs.

See :mod:`repro.obs.metrics` (counters/gauges/histograms + the
``StatsView`` migration shim), :mod:`repro.obs.trace` (spans with ambient
propagation across threads and the control-plane wire),
:mod:`repro.obs.log` (structured stderr diagnostics), and
:mod:`repro.obs.export` (bounded JSONL logs + the on-store ``obs/``
directory).
"""

from repro.obs.export import (
    BoundedJsonlWriter,
    JsonlTraceSink,
    ObsDir,
    store_obs_dir,
)
from repro.obs.log import ObsLogger, configure, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
)
from repro.obs.trace import (
    TRACE_KEY,
    MemoryTraceSink,
    Span,
    TraceSink,
    capture_context,
    current_span,
    current_trace_id,
    new_span_id,
    new_trace_id,
    parse_context,
    set_trace_sink,
    span_scope,
    traced,
    tracing_enabled,
    wire_context,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "TRACE_KEY",
    "BoundedJsonlWriter",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTraceSink",
    "MemoryTraceSink",
    "MetricsRegistry",
    "ObsDir",
    "ObsLogger",
    "Span",
    "StatsView",
    "TraceSink",
    "capture_context",
    "configure",
    "current_span",
    "current_trace_id",
    "get_logger",
    "new_span_id",
    "new_trace_id",
    "parse_context",
    "set_trace_sink",
    "span_scope",
    "store_obs_dir",
    "traced",
    "tracing_enabled",
    "wire_context",
]
