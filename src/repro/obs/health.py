"""Declarative daemon health: rules over the registry and the timeseries.

Operators of a federated daemon need *verdicts*, not raw counters.  A
:class:`HealthEngine` evaluates a list of :class:`HealthRule`\\ s against
the live registry snapshot (instant conditions) and the
:class:`~repro.obs.timeseries.TimeSeriesDB` (windowed conditions) and
folds the per-rule findings into one ``ok`` / ``warn`` / ``critical``
verdict with human-readable reasons.  The daemon runs it on the serve
loop's heartbeat cadence; the report lands in ``daemon.json``, the
``status`` and ``health`` control-plane ops, and ``qckpt health``.

Rule kinds:

``threshold``
    Compare the *current* value of a series (counter/gauge value, or a
    histogram quantile when ``quantile`` is set) against ``value`` with
    ``op``.  With no ``labels``, every label-set of the series is checked
    and the worst offender reported.
``rate``
    Compare the per-second rate of a cumulative series over
    ``window_seconds`` of timeseries history.  Rates are epoch-aware
    (see :func:`repro.obs.timeseries.rate_from_samples`): a daemon
    restart never produces a negative or restart-spanning rate — pairs
    that span incarnations are skipped, and a rule with no valid data
    passes (absence of evidence is handled by ``staleness``).
``staleness``
    Fire when the newest timeseries sample (of ``series``, or of any
    series when ``series`` is empty) is older than ``window_seconds`` —
    the sampler, or the daemon around it, has stopped.
``burn``
    Error-budget burn: the rate of ``series`` divided by the rate of
    ``total_series`` over the window, compared against ``value`` —
    "more than X of our retry budget is being spent".

Rules are plain data (``from_dict``/``to_dict``), so custom rule sets
can ship over the wire or live in test harnesses; :data:`DEFAULT_RULES`
covers the failure modes the reliability layer already measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, StorageError
from repro.obs.timeseries import TimeSeriesDB

SEVERITIES = ("warn", "critical")
KINDS = ("threshold", "rate", "staleness", "burn")
OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

_VERDICT_RANK = {"ok": 0, "warn": 1, "critical": 2}


@dataclass(frozen=True)
class HealthRule:
    """One declarative condition; fires -> finding at ``severity``."""

    name: str
    kind: str
    series: str = ""
    labels: Optional[Dict[str, str]] = None
    op: str = ">="
    value: float = 0.0
    window_seconds: float = 60.0
    severity: str = "warn"
    quantile: Optional[float] = None
    total_series: Optional[str] = None
    reason: str = ""

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ConfigError(f"health rule {self.name!r}: kind {self.kind!r}")
        if self.severity not in SEVERITIES:
            raise ConfigError(
                f"health rule {self.name!r}: severity {self.severity!r}"
            )
        if self.op not in OPS:
            raise ConfigError(f"health rule {self.name!r}: op {self.op!r}")
        if self.kind == "burn" and not self.total_series:
            raise ConfigError(
                f"health rule {self.name!r}: burn needs total_series"
            )
        if self.window_seconds <= 0:
            raise ConfigError(
                f"health rule {self.name!r}: window_seconds must be > 0"
            )

    def to_dict(self) -> dict:
        record = {
            "name": self.name,
            "kind": self.kind,
            "series": self.series,
            "op": self.op,
            "value": self.value,
            "window_seconds": self.window_seconds,
            "severity": self.severity,
        }
        if self.labels is not None:
            record["labels"] = dict(self.labels)
        if self.quantile is not None:
            record["quantile"] = self.quantile
        if self.total_series is not None:
            record["total_series"] = self.total_series
        if self.reason:
            record["reason"] = self.reason
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "HealthRule":
        try:
            return cls(
                name=str(record["name"]),
                kind=str(record["kind"]),
                series=str(record.get("series", "")),
                labels=record.get("labels"),
                op=str(record.get("op", ">=")),
                value=float(record.get("value", 0.0)),
                window_seconds=float(record.get("window_seconds", 60.0)),
                severity=str(record.get("severity", "warn")),
                quantile=(
                    None
                    if record.get("quantile") is None
                    else float(record["quantile"])
                ),
                total_series=record.get("total_series"),
                reason=str(record.get("reason", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"bad health rule record: {exc}") from exc


@dataclass
class HealthFinding:
    """One rule's outcome in one evaluation."""

    rule: str
    severity: str
    firing: bool
    reason: str
    observed: Optional[float] = None

    def to_dict(self) -> dict:
        record = {
            "rule": self.rule,
            "severity": self.severity,
            "firing": self.firing,
            "reason": self.reason,
        }
        if self.observed is not None:
            record["observed"] = round(self.observed, 6)
        return record


@dataclass
class HealthReport:
    """The folded verdict of one evaluation pass."""

    verdict: str
    findings: List[HealthFinding]
    ts: float
    checked: int

    @property
    def firing(self) -> List[HealthFinding]:
        return [f for f in self.findings if f.firing]

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "ts": self.ts,
            "checked": self.checked,
            "findings": [f.to_dict() for f in self.findings],
        }


#: The out-of-the-box rule set: every condition maps onto a series the
#: reliability / pool / store layers already maintain.  Tuning guidance
#: lives in docs/OPERATIONS.md ("Health rules").
DEFAULT_RULES: Tuple[HealthRule, ...] = (
    HealthRule(
        name="breaker-open",
        kind="threshold",
        series="reliability.breaker_open",
        op=">=",
        value=1.0,
        severity="critical",
        reason="storage circuit breaker is open — writes are being rejected",
    ),
    HealthRule(
        name="retry-storm",
        kind="rate",
        series="reliability.retries",
        op=">",
        value=0.5,
        window_seconds=60.0,
        severity="warn",
        reason="storage retries exceed 0.5/s over the last minute",
    ),
    HealthRule(
        name="retries-exhausted",
        kind="rate",
        series="reliability.exhausted_ops",
        op=">",
        value=0.0,
        window_seconds=120.0,
        severity="critical",
        reason="retry budget exhausted on recent operations — data is "
        "failing to persist",
    ),
    HealthRule(
        name="retry-budget-burn",
        kind="burn",
        series="reliability.exhausted_ops",
        total_series="reliability.retries",
        op=">",
        value=0.5,
        window_seconds=300.0,
        severity="critical",
        reason="over half of recent retries ended exhausted",
    ),
    HealthRule(
        name="save-latency-p99",
        kind="threshold",
        series="save.seconds",
        quantile=0.99,
        op=">",
        value=5.0,
        severity="warn",
        reason="save p99 latency above 5s",
    ),
    HealthRule(
        name="queue-backlog",
        kind="threshold",
        series="pool.queue_depth",
        op=">=",
        value=64.0,
        severity="warn",
        reason="writer pool backlog at or above 64 pending tasks",
    ),
    HealthRule(
        name="sampler-stalled",
        kind="staleness",
        series="",
        window_seconds=30.0,
        severity="warn",
        reason="no metrics sample recorded in the last 30s — history and "
        "windowed rules are blind",
    ),
)


def _snapshot_values(
    snapshot: dict, rule: HealthRule
) -> List[Tuple[Dict[str, str], Optional[float]]]:
    """Current values of every snapshot series matching a threshold rule.

    Histogram series yield the rule's quantile (or the mean with no
    ``quantile`` set — a threshold on a histogram without a quantile is
    unusual but defined).
    """
    out: List[Tuple[Dict[str, str], Optional[float]]] = []
    for record in snapshot.get("series", ()):
        if record.get("name") != rule.series:
            continue
        labels = record.get("labels") or {}
        if rule.labels is not None and labels != rule.labels:
            continue
        if record.get("type") == "histogram":
            count = int(record.get("count", 0))
            if count <= 0:
                continue
            if rule.quantile is not None:
                bounds = list(record.get("buckets", [])) + [float("inf")]
                counts = list(record.get("counts", []))
                target = min(max(rule.quantile, 0.0), 1.0) * count
                seen = 0
                observed = bounds[-2] if len(bounds) > 1 else 0.0
                for bound, bucket_count in zip(bounds, counts):
                    seen += bucket_count
                    if seen >= target:
                        observed = min(bound, bounds[-2])
                        break
            else:
                observed = float(record.get("sum", 0.0)) / count
            out.append((labels, observed))
        else:
            out.append((labels, float(record.get("value", 0.0))))
    return out


class HealthEngine:
    """Evaluate a rule list against a snapshot + optional timeseries."""

    def __init__(self, rules: Optional[Sequence[HealthRule]] = None):
        self.rules: Tuple[HealthRule, ...] = tuple(
            DEFAULT_RULES if rules is None else rules
        )

    def evaluate(
        self,
        snapshot: dict,
        timeseries: Optional[TimeSeriesDB] = None,
        now: Optional[float] = None,
        include_staleness: bool = True,
    ) -> HealthReport:
        """One evaluation pass.  ``include_staleness=False`` suits offline
        use (``qckpt health <store>`` on a drained store, where a stale
        sampler is expected, not a failure)."""
        now = time.time() if now is None else float(now)
        findings: List[HealthFinding] = []
        for rule in self.rules:
            if rule.kind == "staleness" and not include_staleness:
                continue
            try:
                finding = self._evaluate_rule(rule, snapshot, timeseries, now)
            except StorageError:
                # History unavailable: windowed rules pass rather than
                # guessing; the staleness rule reports the gap.
                finding = HealthFinding(
                    rule=rule.name,
                    severity=rule.severity,
                    firing=False,
                    reason="no history available",
                )
            findings.append(finding)
        verdict = "ok"
        for finding in findings:
            if finding.firing:
                if _VERDICT_RANK[finding.severity] > _VERDICT_RANK[verdict]:
                    verdict = finding.severity
        return HealthReport(
            verdict=verdict, findings=findings, ts=now, checked=len(findings)
        )

    def _evaluate_rule(
        self,
        rule: HealthRule,
        snapshot: dict,
        timeseries: Optional[TimeSeriesDB],
        now: float,
    ) -> HealthFinding:
        compare = OPS[rule.op]
        if rule.kind == "threshold":
            observed = None
            for _, value in _snapshot_values(snapshot, rule):
                if value is None:
                    continue
                if observed is None or compare(value, observed):
                    observed = value  # keep the worst offender
            if observed is None:
                return HealthFinding(
                    rule.name, rule.severity, False, "series absent"
                )
            firing = compare(observed, rule.value)
            return self._finding(rule, firing, observed)
        if rule.kind == "rate":
            if timeseries is None:
                return HealthFinding(
                    rule.name, rule.severity, False, "no history available"
                )
            observed = self._worst_rate(rule, rule.series, timeseries, now)
            if observed is None:
                return HealthFinding(
                    rule.name, rule.severity, False, "no rate data in window"
                )
            return self._finding(rule, compare(observed, rule.value), observed)
        if rule.kind == "staleness":
            if timeseries is None:
                return self._finding(rule, True, None)
            if rule.series:
                newest = timeseries.latest(rule.series, labels=rule.labels)
                newest_ts = newest.ts if newest else None
            else:
                newest_ts = timeseries.latest_ts()
            if newest_ts is None:
                return self._finding(rule, True, None)
            age = now - newest_ts
            return self._finding(rule, age > rule.window_seconds, age)
        # burn
        if timeseries is None:
            return HealthFinding(
                rule.name, rule.severity, False, "no history available"
            )
        error_rate = self._worst_rate(rule, rule.series, timeseries, now)
        total_rate = self._worst_rate(
            rule, rule.total_series or "", timeseries, now
        )
        if error_rate is None or not total_rate:
            return HealthFinding(
                rule.name, rule.severity, False, "no rate data in window"
            )
        ratio = error_rate / total_rate
        return self._finding(rule, compare(ratio, rule.value), ratio)

    def _worst_rate(
        self,
        rule: HealthRule,
        series: str,
        timeseries: TimeSeriesDB,
        now: float,
    ) -> Optional[float]:
        """Highest epoch-aware rate across the matching label sets."""
        label_sets = (
            [rule.labels]
            if rule.labels is not None
            else timeseries.label_sets(series) or [None]
        )
        worst: Optional[float] = None
        for labels in label_sets:
            rate = timeseries.windowed_rate(
                series,
                labels=labels,
                window_seconds=rule.window_seconds,
                now=now,
            )
            if rate is not None and (worst is None or rate > worst):
                worst = rate
        return worst

    def _finding(
        self, rule: HealthRule, firing: bool, observed: Optional[float]
    ) -> HealthFinding:
        if firing:
            reason = rule.reason or (
                f"{rule.series} {rule.op} {rule.value} "
                f"({rule.kind}, window {rule.window_seconds:g}s)"
            )
            if observed is not None:
                reason = f"{reason} [observed {observed:.4g}]"
        else:
            reason = "ok"
        return HealthFinding(
            rule=rule.name,
            severity=rule.severity,
            firing=firing,
            reason=reason,
            observed=observed,
        )


def rules_from_records(records: Sequence[dict]) -> List[HealthRule]:
    """Parse a JSON rule list (``ConfigError`` on a malformed record)."""
    return [HealthRule.from_dict(record) for record in records]


__all__ = [
    "DEFAULT_RULES",
    "HealthEngine",
    "HealthFinding",
    "HealthReport",
    "HealthRule",
    "rules_from_records",
]
