"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The registry is the single place the repo counts things.  Components
(:class:`~repro.service.chunkstore.ChunkStore`, the writer pool, the
tiered/reliable/replicated backends, the daemon) each accept an optional
``metrics`` registry; when none is given they create a private one, so
unit tests keep their per-instance counting semantics, while the daemon
threads ONE shared registry through the whole stack and gets the unified
fleet view with labeled series (``job``, ``tier``, ``op``).

Design points:

* **Thread safety** — every instrument carries its own lock; a histogram's
  ``count``/``sum``/bucket counts always move together, so a snapshot taken
  under load is internally consistent (count == sum of bucket counts).
* **Deterministic snapshots** — ``snapshot()`` sorts series by name+labels
  and emits plain JSON types, so tests and benches can assert on it and
  two snapshots of a quiescent registry are byte-equal.
* **Near-zero cost when disabled** — a disabled registry hands out shared
  null instruments whose methods are no-ops; call sites keep their
  instruments cached, so the disabled path is one no-op method call.
* **Epochs** (stats-loss-on-reopen fix) — ``load()`` folds a persisted
  snapshot into the registry as a *baseline* and bumps ``epoch``; merged
  series stay cumulative across restarts, and every emitted series carries
  the epoch it was last live in, so consumers (``qckpt top``) can refuse to
  compute rates across the restart gap.

:class:`StatsView` is the migration shim for the pre-existing ``*Stats``
dataclasses: attribute reads/writes become registry-series reads/writes
(with a per-view baseline so a fresh view over a shared registry still
counts from zero), which keeps ``stats.retries += 1`` call sites and every
``assert backend.stats.fast_hits == 2`` in the test suite working
unchanged.
"""

from __future__ import annotations

import bisect
import json
import os
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ConfigError

SNAPSHOT_VERSION = 1

#: Default latency buckets (seconds): 100µs .. 30s, roughly log-spaced.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]
_SeriesKey = Tuple[str, _LabelKey]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic (by convention) float total."""

    kind = "counter"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: _LabelKey):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(Counter):
    """Point-in-time value; ``inc``/``set`` like a counter, may go down."""

    kind = "gauge"
    __slots__ = ()

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-bucket histogram; buckets are upper bounds, plus overflow."""

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "_lock", "_counts", "_count",
                 "_sum")

    def __init__(
        self,
        name: str,
        labels: _LabelKey,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 < q <= 1)."""
        with self._lock:
            count, counts = self._count, list(self._counts)
        if count == 0:
            return 0.0
        target = q * count
        seen = 0
        for index, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= target:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.buckets[-1]  # overflow: clamp to last bound
        return self.buckets[-1]


class _NullCounter:
    """Shared no-op instrument handed out by a disabled registry."""

    kind = "counter"
    name = ""
    labels: _LabelKey = ()
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @staticmethod
    def quantile(q: float) -> float:
        return 0.0


NULL_INSTRUMENT = _NullCounter()

Instrument = Union[Counter, Gauge, Histogram, _NullCounter]


class MetricsRegistry:
    """Get-or-create registry of labeled instruments.

    ``enabled=None`` reads ``QCKPT_METRICS`` (anything but ``"0"`` enables);
    a disabled registry returns :data:`NULL_INSTRUMENT` everywhere and
    snapshots empty.
    """

    def __init__(self, enabled: Optional[bool] = None):
        if enabled is None:
            enabled = os.environ.get("QCKPT_METRICS", "1") != "0"
        self.enabled = bool(enabled)
        self.epoch = 1
        self._lock = threading.Lock()
        self._series: Dict[_SeriesKey, Instrument] = {}
        self._baseline: Dict[_SeriesKey, dict] = {}

    # -- instrument factories ---------------------------------------------------

    def _get(self, cls, name: str, labels: Dict[str, object], **kwargs):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._series.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._series[key] = instrument
            elif instrument.kind != cls.kind:
                raise ConfigError(
                    f"series {name!r}{dict(key[1])} already registered as "
                    f"{instrument.kind}, not {cls.kind}"
                )
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def find(self, name: str, **labels) -> Optional[Instrument]:
        """Existing instrument for ``name``+``labels``, or None (no create)."""
        with self._lock:
            return self._series.get((name, _label_key(labels)))

    # -- snapshot / merge / persistence -----------------------------------------

    def _record(self, key: _SeriesKey, instrument: Instrument) -> dict:
        name, label_key = key
        record: dict = {
            "name": name,
            "labels": dict(label_key),
            "type": instrument.kind,
            "epoch": self.epoch,
        }
        if instrument.kind == "histogram":
            with instrument._lock:  # noqa: SLF001 - consistent triple
                record["count"] = instrument._count
                record["sum"] = instrument._sum
                record["counts"] = list(instrument._counts)
            record["buckets"] = list(instrument.buckets)
        else:
            record["value"] = instrument.value
        return record

    @staticmethod
    def _merge_records(base: dict, live: dict) -> dict:
        """Fold a prior-epoch record into a live one (cumulative totals)."""
        merged = dict(live)
        if live["type"] == "histogram" and base.get("type") == "histogram":
            merged["count"] = base.get("count", 0) + live["count"]
            merged["sum"] = base.get("sum", 0.0) + live["sum"]
            base_counts = base.get("counts", [])
            if list(base.get("buckets", [])) == list(live["buckets"]) and len(
                base_counts
            ) == len(live["counts"]):
                merged["counts"] = [
                    b + c for b, c in zip(base_counts, live["counts"])
                ]
        elif live["type"] == "counter" and "value" in base:
            merged["value"] = base["value"] + live["value"]
        # gauges: the live value wins outright.
        return merged

    def snapshot(self) -> dict:
        """Deterministic JSON-safe dump of every series (baseline merged)."""
        with self._lock:
            live = dict(self._series)
            baseline = {k: dict(v) for k, v in self._baseline.items()}
        series: Dict[_SeriesKey, dict] = {}
        for key, record in baseline.items():
            series[key] = record
        for key, instrument in live.items():
            record = self._record(key, instrument)
            base = series.get(key)
            series[key] = (
                self._merge_records(base, record) if base else record
            )
        ordered = [series[key] for key in sorted(series)]
        return {
            "version": SNAPSHOT_VERSION,
            "epoch": self.epoch,
            "series": ordered,
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a prior snapshot into this registry's baseline."""
        if not self.enabled:
            return
        with self._lock:
            for record in snapshot.get("series", []):
                key = (
                    str(record.get("name")),
                    _label_key(record.get("labels", {})),
                )
                base = self._baseline.get(key)
                if base is None:
                    self._baseline[key] = dict(record)
                else:
                    self._baseline[key] = self._merge_records(base, record)

    def save(self, path) -> None:
        Path(path).write_text(
            json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def load(self, path) -> bool:
        """Adopt a persisted snapshot as baseline; bump the epoch.

        Returns True when a snapshot was loaded.  Unreadable files are
        treated as absent — observability must never wedge the store.
        """
        path = Path(path)
        try:
            snapshot = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return False
        if not isinstance(snapshot, dict):
            return False
        self.merge(snapshot)
        with self._lock:
            prior = int(snapshot.get("epoch", 0) or 0)
            self.epoch = max(self.epoch, prior + 1)
        return True


class StatsView:
    """Registry-backed stat fields that read/write like plain attributes.

    Subclasses call :meth:`_bind` once per field; thereafter ``view.field``
    reads the bound series minus the construction-time baseline (so a new
    view over a shared, already-hot registry starts at zero — per-instance
    semantics preserved) and ``view.field = v`` / ``view.field += 1`` write
    through to the series.  Unbound attributes behave normally.
    """

    def __init__(self):
        object.__setattr__(self, "_series", {})
        object.__setattr__(self, "_base", {})
        object.__setattr__(self, "_ints", set())

    def _bind(self, attr: str, instrument, as_int: bool = True) -> None:
        self._series[attr] = instrument
        self._base[attr] = instrument.value
        if as_int:
            self._ints.add(attr)

    def __getattr__(self, attr: str):
        series = self.__dict__.get("_series")
        if series and attr in series:
            value = series[attr].value - self.__dict__["_base"][attr]
            return int(value) if attr in self.__dict__["_ints"] else value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {attr!r}"
        )

    def __setattr__(self, attr: str, value) -> None:
        series = self.__dict__.get("_series")
        if series and attr in series:
            series[attr].set(self.__dict__["_base"][attr] + value)
        else:
            object.__setattr__(self, attr, value)

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{attr}={getattr(self, attr)!r}"
            for attr in sorted(self.__dict__.get("_series", ()))
        )
        return f"{type(self).__name__}({fields})"


__all__ = [
    "DEFAULT_BUCKETS",
    "SNAPSHOT_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "StatsView",
]
