"""Epoch-aware metrics time-series history in SQLite.

PR 7's registry answers "what is the system doing *right now*"; this
module adds *history*.  A :class:`TimeSeriesSampler` runs on the daemon's
heartbeat cadence and writes one row per registry series into a SQLite
file under ``<store>/obs/`` (:data:`DB_FILENAME`), so ``qckpt top`` can
render sparklines and rates from real samples instead of two-frame
deltas, and the health engine can evaluate windowed-rate and error-budget
rules over minutes of data.

The file follows :mod:`repro.storage.metadb`'s discipline exactly — the
samples are a *cache over the live registry*, never the truth:

* schema is versioned (:data:`SCHEMA_VERSION`); a missing table, a
  version mismatch, or a failed ``PRAGMA quick_check`` discards the file
  and recreates it empty (``discarded_previous`` is set for callers);
* WAL journal + ``synchronous=NORMAL`` keeps appends one fsync;
* every SQLite failure surfaces as :class:`~repro.errors.StorageError`,
  which the daemon absorbs — sampling must never fail the serve loop.

**Epoch discipline.**  Each row carries the registry epoch (restart
incarnation) of the series it sampled.  Rate and percentile helpers only
ever difference two samples from the *same* epoch: a daemon restart can
lose updates between the last persisted snapshot and the crash, so a
cross-epoch delta may be negative or wildly wrong.  The helpers skip
restart-spanning pairs entirely — they return ``None`` rather than a
made-up number.

Retention is bounded two ways: rows older than ``retention_seconds`` are
pruned on insert, and the table is capped at ``max_rows`` (oldest rows
go first), so the obs directory cannot eat the store's disk.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.obs.metrics import MetricsRegistry

#: Bump on any schema change; a mismatched file is discarded and rebuilt.
SCHEMA_VERSION = 1

#: Filename inside the store's ``obs/`` directory.
DB_FILENAME = "timeseries.db"

#: Default retention window (seconds) — six hours of heartbeat-cadence
#: samples is ~43k rows for a 40-series registry at 2s cadence.
DEFAULT_RETENTION_SECONDS = 6 * 3600.0

#: Hard row cap, pruned oldest-first (a second bound independent of time).
DEFAULT_MAX_ROWS = 200_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS samples (
    ts      REAL    NOT NULL,
    epoch   INTEGER NOT NULL,
    name    TEXT    NOT NULL,
    labels  TEXT    NOT NULL,
    kind    TEXT    NOT NULL,
    value   REAL,
    count   INTEGER,
    sum     REAL,
    buckets TEXT,
    counts  TEXT
);
CREATE INDEX IF NOT EXISTS idx_samples_series ON samples (name, labels, ts);
CREATE INDEX IF NOT EXISTS idx_samples_ts ON samples (ts);
"""

_REQUIRED_TABLES = {"meta", "samples"}


class _SchemaMismatch(Exception):
    """Internal: stored schema version differs from :data:`SCHEMA_VERSION`."""


def _labels_key(labels: Optional[Dict[str, str]]) -> str:
    """Canonical JSON form of a label set (sorted keys, no spaces)."""
    return json.dumps(labels or {}, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Sample:
    """One stored observation of one series."""

    ts: float
    epoch: int
    name: str
    labels: Dict[str, str]
    kind: str
    value: Optional[float] = None
    count: Optional[int] = None
    sum: Optional[float] = None
    buckets: Optional[Tuple[float, ...]] = None
    counts: Optional[Tuple[int, ...]] = None

    @property
    def cumulative(self) -> float:
        """The monotone quantity rates are computed over: counter/gauge
        value, or a histogram's observation count."""
        if self.kind == "histogram":
            return float(self.count or 0)
        return float(self.value or 0.0)


class TimeSeriesDB:
    """SQLite-backed sample history for one store's metrics registry.

    Thread-safe (one lock, ``check_same_thread=False``); a corrupt or
    version-mismatched file is discarded and recreated empty — history is
    a cache, losing it costs sparklines, not correctness.
    """

    def __init__(
        self,
        path=None,
        retention_seconds: float = DEFAULT_RETENTION_SECONDS,
        max_rows: int = DEFAULT_MAX_ROWS,
        metrics: Optional[MetricsRegistry] = None,
        prune_interval_seconds: float = 60.0,
    ):
        self.path = None if path is None else str(path)
        self.retention_seconds = float(retention_seconds)
        self.max_rows = int(max_rows)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Pruning (retention window + row cap) is amortized: it runs on
        #: the first insert, then whenever this much sample time passed
        #: since the last prune or the estimated row count crosses the
        #: cap.  ``0`` prunes on every insert (tests).
        self.prune_interval_seconds = float(prune_interval_seconds)
        self._last_prune_ts: Optional[float] = None
        self._rows_at_prune = 0
        self._rows_since_prune = 0
        self._lock = threading.RLock()
        self._conn: Optional[sqlite3.Connection] = None
        #: True when this open discarded a prior file (corrupt or from
        #: another schema era).
        self.discarded_previous = False
        self._open()

    # -- lifecycle ---------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self.path is None:
            conn = sqlite3.connect(":memory:", check_same_thread=False)
        else:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            conn = sqlite3.connect(
                self.path, timeout=30.0, check_same_thread=False
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    def _open(self) -> None:
        with self._lock:
            try:
                self._conn = self._connect()
                self._validate_or_init()
            except (sqlite3.Error, _SchemaMismatch):
                # Corrupt or from another era: discard, never trust.
                self._discard_and_recreate()
            self.metrics.counter("timeseries.opens").inc()

    def _validate_or_init(self) -> None:
        conn = self._conn
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        if not tables:
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            conn.commit()
            return
        if not _REQUIRED_TABLES <= tables:
            raise _SchemaMismatch(
                f"missing tables: {_REQUIRED_TABLES - tables}"
            )
        row = conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        if row is None or row[0] != str(SCHEMA_VERSION):
            raise _SchemaMismatch(
                f"schema version {row[0] if row else None!r} != "
                f"{SCHEMA_VERSION}"
            )
        status = conn.execute("PRAGMA quick_check(1)").fetchone()
        if status is None or status[0] != "ok":
            raise _SchemaMismatch(f"quick_check: {status}")

    def _discard_and_recreate(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        if self.path is not None:
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(self.path + suffix)
                except OSError:
                    pass
        self.discarded_previous = True
        self.metrics.counter("timeseries.rebuilds").inc()
        self._conn = self._connect()
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) "
            "VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        self._conn.commit()

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    def _query(self, sql: str, params: Tuple = ()) -> List[Tuple]:
        with self._lock:
            if self._conn is None:
                raise StorageError("timeseries db is closed")
            try:
                return self._conn.execute(sql, params).fetchall()
            except sqlite3.Error as exc:
                raise StorageError(f"timeseries db: {exc}") from exc

    # -- writing -----------------------------------------------------------

    def record_snapshot(
        self, snapshot: dict, ts: Optional[float] = None
    ) -> int:
        """Insert one row per series of a registry ``snapshot()`` dict.

        Returns the number of rows written.  Pruning (retention window +
        row cap) runs in the same transaction, amortized to roughly once
        per :attr:`prune_interval_seconds` of sample time (and whenever
        the row estimate crosses the cap) so the steady-state sampler
        pays an insert, not a table scan.
        """
        now = time.time() if ts is None else float(ts)
        rows = []
        for record in snapshot.get("series", ()):
            name = record.get("name")
            kind = record.get("type")
            if not name or kind not in ("counter", "gauge", "histogram"):
                continue
            labels = _labels_key(record.get("labels"))
            epoch = int(record.get("epoch", snapshot.get("epoch", 1)))
            if kind == "histogram":
                rows.append(
                    (
                        now,
                        epoch,
                        name,
                        labels,
                        kind,
                        None,
                        int(record.get("count", 0)),
                        float(record.get("sum", 0.0)),
                        json.dumps(record.get("buckets", [])),
                        json.dumps(record.get("counts", [])),
                    )
                )
            else:
                rows.append(
                    (
                        now,
                        epoch,
                        name,
                        labels,
                        kind,
                        float(record.get("value", 0.0)),
                        None,
                        None,
                        None,
                        None,
                    )
                )
        with self._lock:
            if self._conn is None:
                raise StorageError("timeseries db is closed")
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                self._conn.executemany(
                    "INSERT INTO samples (ts, epoch, name, labels, kind, "
                    "value, count, sum, buckets, counts) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    rows,
                )
                self._rows_since_prune += len(rows)
                if self._should_prune(now):
                    self._prune(now)
                self._conn.commit()
            except sqlite3.Error as exc:
                try:
                    self._conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                raise StorageError(f"timeseries db: {exc}") from exc
        self.metrics.counter("timeseries.samples").inc(len(rows))
        return len(rows)

    def _should_prune(self, now: float) -> bool:
        if self._last_prune_ts is None:
            return True
        if now - self._last_prune_ts >= self.prune_interval_seconds:
            return True
        # The cap may only be overshot by what arrived since the last
        # prune; enforce it as soon as the estimate crosses the line.
        return self._rows_at_prune + self._rows_since_prune > self.max_rows

    def _prune(self, now: float) -> None:
        """Retention window + row cap, inside the caller's transaction."""
        self._conn.execute(
            "DELETE FROM samples WHERE ts < ?",
            (now - self.retention_seconds,),
        )
        (total,) = self._conn.execute(
            "SELECT COUNT(*) FROM samples"
        ).fetchone()
        if total > self.max_rows:
            self._conn.execute(
                "DELETE FROM samples WHERE rowid IN ("
                "SELECT rowid FROM samples ORDER BY ts ASC LIMIT ?)",
                (total - self.max_rows,),
            )
            total = self.max_rows
        self._last_prune_ts = now
        self._rows_at_prune = int(total)
        self._rows_since_prune = 0

    # -- reading -----------------------------------------------------------

    def _row_to_sample(self, row: Tuple) -> Sample:
        ts, epoch, name, labels, kind, value, count, sum_, buckets, counts = row
        return Sample(
            ts=float(ts),
            epoch=int(epoch),
            name=name,
            labels=json.loads(labels),
            kind=kind,
            value=None if value is None else float(value),
            count=None if count is None else int(count),
            sum=None if sum_ is None else float(sum_),
            buckets=None if buckets is None else tuple(json.loads(buckets)),
            counts=None if counts is None else tuple(json.loads(counts)),
        )

    def query(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[Sample]:
        """Samples of one series, oldest first.

        With ``labels=None`` every label-set of ``name`` is returned
        (callers group with :func:`group_by_labels`).  ``limit`` keeps the
        *newest* N rows.
        """
        sql = (
            "SELECT ts, epoch, name, labels, kind, value, count, sum, "
            "buckets, counts FROM samples WHERE name = ?"
        )
        params: List = [name]
        if labels is not None:
            sql += " AND labels = ?"
            params.append(_labels_key(labels))
        if since is not None:
            sql += " AND ts >= ?"
            params.append(float(since))
        if until is not None:
            sql += " AND ts <= ?"
            params.append(float(until))
        sql += " ORDER BY ts DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        rows = self._query(sql, tuple(params))
        return [self._row_to_sample(row) for row in reversed(rows)]

    def series_names(self) -> List[str]:
        return [
            row[0]
            for row in self._query(
                "SELECT DISTINCT name FROM samples ORDER BY name"
            )
        ]

    def label_sets(self, name: str) -> List[Dict[str, str]]:
        return [
            json.loads(row[0])
            for row in self._query(
                "SELECT DISTINCT labels FROM samples WHERE name = ? "
                "ORDER BY labels",
                (name,),
            )
        ]

    def latest(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[Sample]:
        rows = self.query(name, labels=labels, limit=1)
        return rows[-1] if rows else None

    def latest_ts(self) -> Optional[float]:
        """Timestamp of the newest sample of any series (staleness probe)."""
        rows = self._query("SELECT MAX(ts) FROM samples")
        if not rows or rows[0][0] is None:
            return None
        return float(rows[0][0])

    def windowed_rate(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        window_seconds: float = 60.0,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Per-second rate of a cumulative series over a trailing window.

        Epoch-aware: only consecutive same-epoch sample pairs contribute;
        a pair spanning a daemon restart is skipped, and a negative
        within-epoch delta (which a well-behaved counter never produces)
        is skipped too.  Returns ``None`` when no valid pair exists —
        never a negative or restart-spanning rate.
        """
        now = time.time() if now is None else float(now)
        samples = self.query(name, labels=labels, since=now - window_seconds)
        return rate_from_samples(samples)

    def windowed_quantile(
        self,
        name: str,
        q: float,
        labels: Optional[Dict[str, str]] = None,
        window_seconds: float = 300.0,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Approximate quantile of a histogram series over a window.

        Differences the bucket counts of the oldest and newest samples of
        the *newest epoch* in the window (restart-spanning deltas are
        meaningless); with a single in-window sample the cumulative
        distribution of that sample is used.  Returns the upper bound of
        the bucket containing ``q``, or ``None`` with no observations.
        """
        now = time.time() if now is None else float(now)
        samples = [
            s
            for s in self.query(name, labels=labels, since=now - window_seconds)
            if s.kind == "histogram" and s.buckets and s.counts is not None
        ]
        if not samples:
            return None
        epoch = samples[-1].epoch
        samples = [s for s in samples if s.epoch == epoch]
        newest = samples[-1]
        counts = list(newest.counts)
        if len(samples) >= 2:
            oldest = samples[0]
            if oldest.buckets == newest.buckets:
                counts = [
                    max(0, b - a) for a, b in zip(oldest.counts, newest.counts)
                ]
        total = sum(counts)
        if total <= 0:
            return None
        q = min(max(float(q), 0.0), 1.0)
        target = q * total
        seen = 0
        bounds = list(newest.buckets) + [float("inf")]
        for bound, bucket_count in zip(bounds, counts):
            seen += bucket_count
            if seen >= target:
                return bound
        return bounds[-1]


def rate_from_samples(samples: Sequence[Sample]) -> Optional[float]:
    """Epoch-aware rate over an ordered sample run (oldest first).

    Sums positive same-epoch deltas over the time they cover.  ``None``
    when no consecutive same-epoch pair exists.
    """
    total_delta = 0.0
    total_dt = 0.0
    pairs = 0
    for prev, cur in zip(samples, samples[1:]):
        if cur.epoch != prev.epoch or cur.ts <= prev.ts:
            continue
        delta = cur.cumulative - prev.cumulative
        if delta < 0:
            continue  # counter went backwards inside one epoch: distrust
        total_delta += delta
        total_dt += cur.ts - prev.ts
        pairs += 1
    if not pairs or total_dt <= 0:
        return None
    return total_delta / total_dt


def group_by_labels(
    samples: Sequence[Sample],
) -> Dict[str, List[Sample]]:
    """Split a mixed-label sample run into per-label-set runs."""
    grouped: Dict[str, List[Sample]] = {}
    for sample in samples:
        grouped.setdefault(_labels_key(sample.labels), []).append(sample)
    return grouped


class TimeSeriesSampler:
    """Clocked bridge from a live registry into a :class:`TimeSeriesDB`.

    The daemon calls :meth:`maybe_sample` from its serve loop; sampling
    happens at most every ``interval_seconds``.  Failures are counted and
    swallowed — history must never take the daemon down.
    """

    def __init__(
        self,
        db: TimeSeriesDB,
        registry: MetricsRegistry,
        interval_seconds: float = 2.0,
    ):
        self.db = db
        self.registry = registry
        self.interval_seconds = float(interval_seconds)
        self.samples_taken = 0
        self.errors = 0
        self._next_due = 0.0

    def maybe_sample(self, now: Optional[float] = None) -> bool:
        now = time.time() if now is None else float(now)
        if now < self._next_due:
            return False
        self._next_due = now + self.interval_seconds
        return self.sample(now)

    def sample(self, now: Optional[float] = None) -> bool:
        try:
            self.db.record_snapshot(self.registry.snapshot(), ts=now)
        except StorageError:
            self.errors += 1
            return False
        self.samples_taken += 1
        return True


__all__ = [
    "DB_FILENAME",
    "DEFAULT_MAX_ROWS",
    "DEFAULT_RETENTION_SECONDS",
    "SCHEMA_VERSION",
    "Sample",
    "TimeSeriesDB",
    "TimeSeriesSampler",
    "group_by_labels",
    "rate_from_samples",
]
