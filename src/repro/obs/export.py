"""Exporters: bounded JSONL logs and the on-store ``obs/`` directory.

A serving daemon (or a scrub run) keeps its observability artifacts under
``<store>/obs/``:

* ``registry.json`` — the persisted metrics snapshot, written at clean
  shutdown and after a scrub, reloaded (epoch-bumped) at the next start so
  cumulative counters survive restarts (the stats-loss-on-reopen fix);
* ``trace.jsonl`` — one JSON object per finished span;
* ``metrics.jsonl`` — periodic registry snapshots, one per line.

Both ``.jsonl`` files are *bounded*: when a file passes ``max_bytes`` it
is rotated to ``<name>.1`` (replacing the previous rotation), so the obs
directory can never eat the store's disk.  Record schemas are documented
in docs/FORMATS.md.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, TraceSink

OBS_DIR_NAME = "obs"
REGISTRY_FILENAME = "registry.json"
TRACE_FILENAME = "trace.jsonl"
METRICS_FILENAME = "metrics.jsonl"
DEFAULT_MAX_LOG_BYTES = 4 << 20


class BoundedJsonlWriter:
    """Append JSON records to a file, rotating once past ``max_bytes``."""

    def __init__(self, path, max_bytes: int = DEFAULT_MAX_LOG_BYTES):
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()

    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                if (
                    self.path.exists()
                    and self.path.stat().st_size + len(line) > self.max_bytes
                ):
                    self.path.replace(self.path.with_name(self.path.name + ".1"))
                with self.path.open("a", encoding="utf-8") as handle:
                    handle.write(line)
            except OSError:
                pass  # observability must never fail the operation it observes


class JsonlTraceSink(TraceSink):
    """Spans to a bounded JSONL file (the daemon's process sink)."""

    def __init__(self, path, max_bytes: int = DEFAULT_MAX_LOG_BYTES):
        self._writer = BoundedJsonlWriter(path, max_bytes=max_bytes)
        self.path = self._writer.path

    def emit(self, span: Span) -> None:
        self._writer.append(span.to_record())


class ObsDir:
    """The ``<store>/obs/`` directory: registry snapshot + JSONL logs."""

    def __init__(self, root, max_log_bytes: int = DEFAULT_MAX_LOG_BYTES):
        self.root = Path(root)
        self.max_log_bytes = int(max_log_bytes)
        self.root.mkdir(parents=True, exist_ok=True)
        self._metrics_writer: Optional[BoundedJsonlWriter] = None

    @property
    def registry_path(self) -> Path:
        return self.root / REGISTRY_FILENAME

    @property
    def trace_path(self) -> Path:
        return self.root / TRACE_FILENAME

    @property
    def metrics_path(self) -> Path:
        return self.root / METRICS_FILENAME

    def load_registry(self, registry: MetricsRegistry) -> bool:
        return registry.load(self.registry_path)

    def save_registry(self, registry: MetricsRegistry) -> None:
        try:
            registry.save(self.registry_path)
        except OSError:
            pass

    def trace_sink(self) -> JsonlTraceSink:
        return JsonlTraceSink(self.trace_path, max_bytes=self.max_log_bytes)

    def append_metrics(self, registry: MetricsRegistry, **extra) -> None:
        """One metrics record (full snapshot) onto ``metrics.jsonl``."""
        if self._metrics_writer is None:
            self._metrics_writer = BoundedJsonlWriter(
                self.metrics_path, max_bytes=self.max_log_bytes
            )
        snapshot = registry.snapshot()
        self._metrics_writer.append(
            {
                "kind": "metrics",
                "ts": time.time(),
                "epoch": snapshot["epoch"],
                "series": snapshot["series"],
                **extra,
            }
        )


def store_obs_dir(store_dir) -> Path:
    """Conventional obs directory for a store rooted at ``store_dir``."""
    return Path(store_dir) / OBS_DIR_NAME


__all__ = [
    "DEFAULT_MAX_LOG_BYTES",
    "METRICS_FILENAME",
    "OBS_DIR_NAME",
    "REGISTRY_FILENAME",
    "TRACE_FILENAME",
    "BoundedJsonlWriter",
    "JsonlTraceSink",
    "ObsDir",
    "store_obs_dir",
]
