"""Exporters: bounded JSONL logs and the on-store ``obs/`` directory.

A serving daemon (or a scrub run) keeps its observability artifacts under
``<store>/obs/``:

* ``registry.json`` — the persisted metrics snapshot, written at clean
  shutdown and after a scrub, reloaded (epoch-bumped) at the next start so
  cumulative counters survive restarts (the stats-loss-on-reopen fix);
* ``trace.jsonl`` — one JSON object per finished span;
* ``metrics.jsonl`` — periodic registry snapshots, one per line.

Both ``.jsonl`` files are *bounded*: when a file passes ``max_bytes`` it
is rotated — the whole file moves to a single ``<name>.1`` generation
(replacing the previous rotation) and appends continue into a fresh
file, so history survives one full rotation and the obs directory can
never eat the store's disk.  Readers must use
:func:`read_jsonl_records`, which walks the ``.1`` generation first and
tolerates a torn trailing line (a crash mid-append can leave one).
Record schemas are documented in docs/FORMATS.md.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, TraceSink

OBS_DIR_NAME = "obs"
REGISTRY_FILENAME = "registry.json"
TRACE_FILENAME = "trace.jsonl"
METRICS_FILENAME = "metrics.jsonl"
DEFAULT_MAX_LOG_BYTES = 4 << 20


class BoundedJsonlWriter:
    """Append JSON records to a file, rotating once past ``max_bytes``."""

    def __init__(self, path, max_bytes: int = DEFAULT_MAX_LOG_BYTES):
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()

    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                # Rotation moves the *whole* file to one `.1` generation
                # (never truncates mid-record); an empty live file is never
                # rotated, so an oversized record cannot wipe the previous
                # generation for nothing.
                if (
                    self.path.exists()
                    and self.path.stat().st_size > 0
                    and self.path.stat().st_size + len(line) > self.max_bytes
                ):
                    self.path.replace(self.path.with_name(self.path.name + ".1"))
                with self.path.open("a", encoding="utf-8") as handle:
                    handle.write(line)
            except OSError:
                pass  # observability must never fail the operation it observes


def read_jsonl_records(path) -> Iterator[dict]:
    """Records from a bounded JSONL file, oldest first, damage-tolerant.

    Reads the rotated ``<name>.1`` generation before the live file, skips
    any line that does not decode to a JSON object (a torn trailing line
    from a crash mid-append, or garbage), and treats missing files as
    empty.  This is the one reader the offline ``qckpt metrics`` /
    ``qckpt profile`` paths go through.
    """
    path = Path(path)
    for candidate in (path.with_name(path.name + ".1"), path):
        try:
            with candidate.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn or corrupt line: skip, keep reading
                    if isinstance(record, dict):
                        yield record
        except OSError:
            continue


class JsonlTraceSink(TraceSink):
    """Spans to a bounded JSONL file (the daemon's process sink)."""

    def __init__(self, path, max_bytes: int = DEFAULT_MAX_LOG_BYTES):
        self._writer = BoundedJsonlWriter(path, max_bytes=max_bytes)
        self.path = self._writer.path

    def emit(self, span: Span) -> None:
        self._writer.append(span.to_record())


class ObsDir:
    """The ``<store>/obs/`` directory: registry snapshot + JSONL logs."""

    def __init__(self, root, max_log_bytes: int = DEFAULT_MAX_LOG_BYTES):
        self.root = Path(root)
        self.max_log_bytes = int(max_log_bytes)
        self.root.mkdir(parents=True, exist_ok=True)
        self._metrics_writer: Optional[BoundedJsonlWriter] = None

    @property
    def registry_path(self) -> Path:
        return self.root / REGISTRY_FILENAME

    @property
    def trace_path(self) -> Path:
        return self.root / TRACE_FILENAME

    @property
    def metrics_path(self) -> Path:
        return self.root / METRICS_FILENAME

    def load_registry(self, registry: MetricsRegistry) -> bool:
        return registry.load(self.registry_path)

    def save_registry(self, registry: MetricsRegistry) -> None:
        try:
            registry.save(self.registry_path)
        except OSError:
            pass

    def trace_sink(self) -> JsonlTraceSink:
        return JsonlTraceSink(self.trace_path, max_bytes=self.max_log_bytes)

    def append_metrics(self, registry: MetricsRegistry, **extra) -> None:
        """One metrics record (full snapshot) onto ``metrics.jsonl``."""
        if self._metrics_writer is None:
            self._metrics_writer = BoundedJsonlWriter(
                self.metrics_path, max_bytes=self.max_log_bytes
            )
        snapshot = registry.snapshot()
        self._metrics_writer.append(
            {
                "kind": "metrics",
                "ts": time.time(),
                "epoch": snapshot["epoch"],
                "series": snapshot["series"],
                **extra,
            }
        )


def _prom_name(name: str) -> str:
    sanitized = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "qckpt_" + sanitized


def _prom_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels or {})
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for key in sorted(merged):
        value = (
            str(merged[key])
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{key}="{value}"')
    return "{" + ",".join(parts) + "}"


def _prom_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    formatted = repr(float(value))
    return formatted[:-2] if formatted.endswith(".0") else formatted


def prometheus_text(snapshot: dict) -> str:
    """Registry snapshot as Prometheus text exposition (version 0.0.4).

    Counters gain the conventional ``_total`` suffix, histograms expand
    into cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``,
    and every name is prefixed ``qckpt_``.  The registry epoch (restart
    incarnation) is exported as ``qckpt_registry_epoch`` so scrapers can
    detect restarts the same way ``qckpt top`` does.
    """
    lines: List[str] = []
    typed: set = set()

    def declare(prom: str, kind: str) -> None:
        if prom not in typed:
            typed.add(prom)
            lines.append(f"# TYPE {prom} {kind}")

    lines.append("# TYPE qckpt_registry_epoch gauge")
    lines.append(
        f"qckpt_registry_epoch {_prom_number(snapshot.get('epoch', 1))}"
    )
    for record in snapshot.get("series", ()):
        name = record.get("name")
        kind = record.get("type")
        if not name:
            continue
        labels = record.get("labels") or {}
        if kind == "counter":
            prom = _prom_name(name) + "_total"
            declare(prom, "counter")
            lines.append(
                f"{prom}{_prom_labels(labels)} "
                f"{_prom_number(record.get('value', 0.0))}"
            )
        elif kind == "gauge":
            prom = _prom_name(name)
            declare(prom, "gauge")
            lines.append(
                f"{prom}{_prom_labels(labels)} "
                f"{_prom_number(record.get('value', 0.0))}"
            )
        elif kind == "histogram":
            prom = _prom_name(name)
            declare(prom, "histogram")
            bounds = list(record.get("buckets", [])) + [float("inf")]
            cumulative = 0
            counts = list(record.get("counts", []))
            for bound, bucket_count in zip(bounds, counts):
                cumulative += int(bucket_count)
                le = _prom_labels(labels, {"le": _prom_number(bound)})
                lines.append(f"{prom}_bucket{le} {cumulative}")
            lines.append(
                f"{prom}_sum{_prom_labels(labels)} "
                f"{_prom_number(record.get('sum', 0.0))}"
            )
            lines.append(
                f"{prom}_count{_prom_labels(labels)} "
                f"{int(record.get('count', 0))}"
            )
    return "\n".join(lines) + "\n"


def store_obs_dir(store_dir) -> Path:
    """Conventional obs directory for a store rooted at ``store_dir``."""
    return Path(store_dir) / OBS_DIR_NAME


__all__ = [
    "DEFAULT_MAX_LOG_BYTES",
    "METRICS_FILENAME",
    "OBS_DIR_NAME",
    "REGISTRY_FILENAME",
    "TRACE_FILENAME",
    "BoundedJsonlWriter",
    "JsonlTraceSink",
    "ObsDir",
    "prometheus_text",
    "read_jsonl_records",
    "store_obs_dir",
]
