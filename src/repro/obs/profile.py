"""Span-tree profiling over the trace sink: where did the time go?

The trace log (``<store>/obs/trace.jsonl``) already joins a client submit
with the daemon-side save under one trace id; this module turns those
flat span records into answers:

* **span trees** — records grouped by trace id, parented by span id, with
  per-node *self time* (duration minus children) vs *child time*;
* **stage attribution** — the chunk store and restore executor annotate
  their ``store.save`` / ``store.restore`` spans with a ``stages`` attr
  (``{"hash": 0.12, "write": 0.40, ...}`` seconds) and byte counts; the
  profiler expands those into synthetic ``stage:*`` child nodes so a save
  decomposes into serialize/hash/encode/write/manifest and a restore into
  fetch/verify/assemble without per-block span overhead on the hot path;
* **critical path** — from any root, repeatedly descend into the heaviest
  child: the chain of (node, duration) pairs that bounds end-to-end
  latency, i.e. "my saves got slow — *this* stage is why";
* **aggregation** — per-name totals (count, total/self ms, bytes,
  MB/s throughput) across every trace in the log;
* **folded stacks** — ``root;child;leaf <self-µs>`` lines, the input
  format of every flamegraph renderer.

Input records are read tolerantly: the rotated ``.1`` generation is read
first, undecodable lines (a torn trailing line from a crash mid-append,
or the rotation boundary) are skipped, and non-span records are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.export import read_jsonl_records

#: Prefix of synthetic stage nodes expanded from a span's ``stages`` attr.
STAGE_PREFIX = "stage:"


@dataclass
class ProfileNode:
    """One span (or synthetic stage) in a reconstructed trace tree."""

    name: str
    span_id: str
    trace_id: str
    parent_id: Optional[str]
    start: float
    duration_ms: float
    status: str = "ok"
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["ProfileNode"] = field(default_factory=list)
    synthetic: bool = False

    @property
    def child_ms(self) -> float:
        return sum(child.duration_ms for child in self.children)

    @property
    def self_ms(self) -> float:
        """Time not attributed to any child (clamped at zero: overlapping
        concurrent children can sum past the parent)."""
        return max(0.0, self.duration_ms - self.child_ms)

    @property
    def bytes(self) -> Optional[int]:
        raw = self.attrs.get("bytes")
        try:
            return None if raw is None else int(raw)
        except (TypeError, ValueError):
            return None


def iter_span_records(path) -> Iterable[dict]:
    """Span records from a trace JSONL file (plus its ``.1`` rotation),
    oldest first, torn/garbage lines skipped."""
    for record in read_jsonl_records(path):
        if record.get("kind") == "span":
            yield record


def _node_from_record(record: dict) -> ProfileNode:
    return ProfileNode(
        name=str(record.get("name", "?")),
        span_id=str(record.get("span", "")),
        trace_id=str(record.get("trace", "")),
        parent_id=record.get("parent"),
        start=float(record.get("start", 0.0)),
        duration_ms=float(record.get("duration_ms", 0.0)),
        status=str(record.get("status", "ok")),
        attrs=dict(record.get("attrs") or {}),
    )


def _expand_stages(node: ProfileNode) -> None:
    """Turn a node's ``stages`` attr into synthetic child nodes."""
    stages = node.attrs.get("stages")
    if not isinstance(stages, dict):
        return
    offset = node.start
    for stage, seconds in stages.items():
        try:
            ms = float(seconds) * 1000.0
        except (TypeError, ValueError):
            continue
        if ms <= 0:
            continue
        node.children.append(
            ProfileNode(
                name=f"{STAGE_PREFIX}{stage}",
                span_id=f"{node.span_id}:{stage}",
                trace_id=node.trace_id,
                parent_id=node.span_id,
                start=offset,
                duration_ms=ms,
                attrs={},
                synthetic=True,
            )
        )
        offset += ms / 1000.0


def build_trees(records: Iterable[dict]) -> Dict[str, List[ProfileNode]]:
    """Group span records into per-trace trees.

    Returns ``{trace_id: [roots...]}``; a span whose parent never made it
    into the log (dropped by rotation) becomes a root.  Nodes carrying a
    ``stages`` attr grow synthetic ``stage:*`` children.
    """
    by_trace: Dict[str, Dict[str, ProfileNode]] = {}
    order: List[Tuple[str, str]] = []
    for record in records:
        node = _node_from_record(record)
        if not node.trace_id or not node.span_id:
            continue
        by_trace.setdefault(node.trace_id, {})[node.span_id] = node
        order.append((node.trace_id, node.span_id))
    trees: Dict[str, List[ProfileNode]] = {}
    for trace_id, nodes in by_trace.items():
        roots: List[ProfileNode] = []
        for node in nodes.values():
            parent = nodes.get(node.parent_id) if node.parent_id else None
            if parent is not None and parent is not node:
                parent.children.append(node)
            else:
                roots.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda child: child.start)
            _expand_stages(node)
        roots.sort(key=lambda root: root.start)
        trees[trace_id] = roots
    return trees


def critical_path(root: ProfileNode) -> List[ProfileNode]:
    """The heaviest root-to-leaf chain: at each node descend into the
    child with the largest duration."""
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda child: child.duration_ms)
        path.append(node)
    return path


def stage_coverage(node: ProfileNode) -> Optional[float]:
    """Fraction of a span's wall time attributed to named children
    (stages or real child spans); ``None`` for a zero-duration span."""
    if node.duration_ms <= 0:
        return None
    return min(1.0, node.child_ms / node.duration_ms)


@dataclass
class OpAggregate:
    """Totals of one span name across every trace in the log."""

    name: str
    count: int = 0
    total_ms: float = 0.0
    self_ms: float = 0.0
    bytes: int = 0
    errors: int = 0

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    @property
    def throughput_mb_s(self) -> Optional[float]:
        if not self.bytes or self.total_ms <= 0:
            return None
        return (self.bytes / (1 << 20)) / (self.total_ms / 1000.0)


def aggregate(trees: Dict[str, List[ProfileNode]]) -> List[OpAggregate]:
    """Per-name aggregates over every node of every tree, heaviest total
    time first."""
    table: Dict[str, OpAggregate] = {}
    stack: List[ProfileNode] = [
        root for roots in trees.values() for root in roots
    ]
    while stack:
        node = stack.pop()
        agg = table.setdefault(node.name, OpAggregate(name=node.name))
        agg.count += 1
        agg.total_ms += node.duration_ms
        agg.self_ms += node.self_ms
        if node.bytes:
            agg.bytes += node.bytes
        if node.status != "ok":
            agg.errors += 1
        stack.extend(node.children)
    return sorted(table.values(), key=lambda agg: -agg.total_ms)


def newest_trace(
    trees: Dict[str, List[ProfileNode]], containing: Optional[str] = None
) -> Optional[str]:
    """Trace id of the newest trace (by root start), optionally restricted
    to traces containing a span named ``containing``."""
    best: Optional[Tuple[float, str]] = None
    for trace_id, roots in trees.items():
        if containing is not None and not any(
            _contains(root, containing) for root in roots
        ):
            continue
        start = max(root.start for root in roots) if roots else 0.0
        if best is None or start > best[0]:
            best = (start, trace_id)
    return best[1] if best else None


def _contains(node: ProfileNode, name: str) -> bool:
    if node.name == name:
        return True
    return any(_contains(child, name) for child in node.children)


def find_span(
    roots: Sequence[ProfileNode], name: str
) -> Optional[ProfileNode]:
    """First span named ``name`` in a depth-first walk of the trees."""
    stack = list(roots)
    while stack:
        node = stack.pop(0)
        if node.name == name:
            return node
        stack = node.children + stack
    return None


def folded_stacks(trees: Dict[str, List[ProfileNode]]) -> List[str]:
    """Folded-stack lines (``a;b;c <self-microseconds>``) over all traces,
    ready for any flamegraph renderer.  Identical stacks are merged."""
    weights: Dict[str, int] = {}

    def walk(node: ProfileNode, prefix: str) -> None:
        stack = f"{prefix};{node.name}" if prefix else node.name
        weight = int(round(node.self_ms * 1000.0))
        if weight > 0:
            weights[stack] = weights.get(stack, 0) + weight
        for child in node.children:
            walk(child, stack)

    for roots in trees.values():
        for root in roots:
            walk(root, "")
    return [f"{stack} {weight}" for stack, weight in sorted(weights.items())]


def load_trees(trace_path) -> Dict[str, List[ProfileNode]]:
    """Convenience: trace JSONL file (+ rotation) straight to trees."""
    return build_trees(iter_span_records(trace_path))


__all__ = [
    "STAGE_PREFIX",
    "OpAggregate",
    "ProfileNode",
    "aggregate",
    "build_trees",
    "critical_path",
    "find_span",
    "folded_stacks",
    "iter_span_records",
    "load_trees",
    "newest_trace",
    "stage_coverage",
]
