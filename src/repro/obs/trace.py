"""Lightweight cross-layer tracing: spans with ambient propagation.

Mirrors the ``deadline_scope`` idiom from :mod:`repro.reliability`: a
thread-local stack carries the *current* span, ``span_scope`` pushes a
child (parented on the ambient span, or on an explicit wire context), and
everything in between — pool channels, the chunk store, the daemon —
nests without plumbing a context argument through every call.

Three propagation boundaries are covered:

* **thread hop** — :func:`capture_context` at submit time plus
  ``span_scope(..., parent=ctx)`` inside the task joins a writer-pool
  worker's span onto the submitting thread's trace (see
  :meth:`repro.service.pool.PoolChannel.submit`);
* **wire hop** — the client puts :func:`wire_context` into the request
  body under ``"trace"``; the daemon opens its handling span parented on
  it, so a daemon-side span tree joins the client's trace id.  The field
  rides the body dict itself, so it survives both transports *and* the
  reconnect-with-stable-request-id path (the socket client rebuilds the
  frame from the same body on every attempt);
* **process boundary** — spans are emitted to the process sink
  (:func:`set_trace_sink`), a bounded JSONL file under the store when a
  daemon is serving, an in-memory ring in tests.

Cost model: with no sink installed and no ambient/parent context,
``span_scope`` yields ``None`` after two reads — tracing off is near
free.  Span creation without a sink (e.g. a request carrying a parent
context into an unsinked daemon) still propagates ids but emits nothing.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

#: Request-body key carrying the trace context over the control plane.
TRACE_KEY = "trace"

_AMBIENT = threading.local()
_SINK: Optional["TraceSink"] = None
_SINK_LOCK = threading.Lock()

# Span ids only need collision resistance within one trace log, not
# cryptographic strength; ``getrandbits`` is ~10x cheaper than ``uuid4``
# (which reads os.urandom), and span creation sits on the hot save path.
_ID_RNG = random.Random()


def new_trace_id() -> str:
    return f"{_ID_RNG.getrandbits(64):016x}"


def new_span_id() -> str:
    return f"{_ID_RNG.getrandbits(32):08x}"


@dataclass
class Span:
    """One timed operation; ``attrs`` are free-form JSON-safe fields."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start: float = 0.0
    end: Optional[float] = None
    status: str = "ok"
    attrs: Dict[str, object] = field(default_factory=dict)

    def context(self) -> Dict[str, str]:
        """Wire/thread-portable reference to this span."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else time.time()) - self.start

    def to_record(self) -> dict:
        """JSONL record (schema documented in docs/FORMATS.md)."""
        return {
            "kind": "span",
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "duration_ms": round(self.duration * 1000.0, 3),
            "status": self.status,
            "attrs": self.attrs,
        }


class TraceSink:
    """Destination for finished spans."""

    def emit(self, span: Span) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class MemoryTraceSink(TraceSink):
    """Bounded in-memory ring of span records (tests, `status` surfaces)."""

    def __init__(self, capacity: int = 1024):
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=capacity)

    def emit(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span.to_record())

    def records(self) -> List[dict]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


def set_trace_sink(sink: Optional[TraceSink]) -> Optional[TraceSink]:
    """Install the process trace sink; returns the previous one."""
    global _SINK
    with _SINK_LOCK:
        previous = _SINK
        _SINK = sink
    return previous


def get_trace_sink() -> Optional[TraceSink]:
    return _SINK


def tracing_enabled() -> bool:
    return _SINK is not None


def _stack() -> list:
    stack = getattr(_AMBIENT, "stack", None)
    if stack is None:
        stack = _AMBIENT.stack = []
    return stack


def current_span() -> Optional[Span]:
    stack = getattr(_AMBIENT, "stack", None)
    return stack[-1] if stack else None


def current_trace_id() -> Optional[str]:
    span = current_span()
    return span.trace_id if span is not None else None


def capture_context() -> Optional[Dict[str, str]]:
    """Ambient span context for cross-thread handoff, or None."""
    span = current_span()
    return span.context() if span is not None else None


def wire_context() -> Dict[str, str]:
    """Context to send over the wire: ambient if present, else a new root.

    A client with no ambient span still originates a trace id here, so the
    daemon-side span tree of every request is joinable to its origin.
    """
    ctx = capture_context()
    if ctx is not None:
        return ctx
    return {"trace_id": new_trace_id(), "span_id": new_span_id()}


def parse_context(value) -> Optional[Dict[str, str]]:
    """Validate a wire-received trace context; None when absent/malformed."""
    if not isinstance(value, dict):
        return None
    trace_id = value.get("trace_id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    span_id = value.get("span_id")
    return {
        "trace_id": trace_id,
        "span_id": span_id if isinstance(span_id, str) else "",
    }


@contextmanager
def span_scope(
    name: str,
    parent: Optional[Dict[str, str]] = None,
    **attrs,
) -> Iterator[Optional[Span]]:
    """Open a span: child of ``parent`` (wire ctx) or the ambient span.

    Yields the :class:`Span` (mutate ``span.attrs`` freely) — or ``None``
    on the fast path when tracing is entirely off (no sink, no ambient
    span, no explicit parent).
    """
    ambient = current_span()
    if _SINK is None and ambient is None and parent is None:
        yield None
        return
    if parent is not None and parent.get("trace_id"):
        trace_id = parent["trace_id"]
        parent_id: Optional[str] = parent.get("span_id") or None
    elif ambient is not None:
        trace_id = ambient.trace_id
        parent_id = ambient.span_id
    else:
        trace_id = new_trace_id()
        parent_id = None
    span = Span(
        name=name,
        trace_id=trace_id,
        span_id=new_span_id(),
        parent_id=parent_id,
        start=time.time(),
        attrs=dict(attrs),
    )
    stack = _stack()
    stack.append(span)
    try:
        yield span
    except BaseException:
        span.status = "error"
        raise
    finally:
        stack.pop()
        span.end = time.time()
        sink = _SINK
        if sink is not None:
            try:
                sink.emit(span)
            except Exception:  # noqa: BLE001 - tracing must never break work
                pass


def traced(
    fn: Callable[[], None],
    name: str,
    parent: Optional[Dict[str, str]],
    **attrs,
) -> Callable[[], None]:
    """Wrap a thunk so it runs under a span parented on ``parent``.

    Used at thread-hop boundaries (writer-pool submit): capture the
    context on the submitting thread, reattach on the worker.
    """

    def run() -> None:
        with span_scope(name, parent=parent, **attrs):
            fn()

    return run


__all__ = [
    "TRACE_KEY",
    "MemoryTraceSink",
    "Span",
    "TraceSink",
    "capture_context",
    "current_span",
    "current_trace_id",
    "get_trace_sink",
    "new_span_id",
    "new_trace_id",
    "parse_context",
    "set_trace_sink",
    "span_scope",
    "traced",
    "tracing_enabled",
    "wire_context",
]
