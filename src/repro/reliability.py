"""Composable reliability policies: retries, deadlines, circuit breaking.

The stack's failure surfaces — storage backends, the restore pipeline, the
daemon control plane — all face the same question: *a call failed; now what?*
This module answers it once, with three small composable policies instead of
per-call-site ad-hoc loops:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and full
  jitter.  Retries only errors the raiser marked *transient*
  (:class:`~repro.errors.TransientStorageError` by default); persistent
  failures (missing object, bad name) surface immediately.  The clock, the
  RNG, and the sleep function are all injectable, so tests assert the exact
  delay sequence instead of sampling probabilities.
* :class:`Deadline` — a wall-clock budget created once at the top of an
  operation and handed down (explicitly, or ambiently via
  :func:`deadline_scope`) through nested calls.  Every layer that sleeps or
  polls checks the same budget, so "give this restore 30 s" means 30 s total,
  not 30 s per layer.
* :class:`CircuitBreaker` — after ``failure_threshold`` consecutive transient
  failures, stop hammering a clearly-down backend and fail fast with
  :class:`~repro.errors.CircuitOpenError`; after ``reset_timeout`` let probe
  traffic through (half-open) and close again on the first success.

:class:`~repro.storage.reliable.ReliableBackend` wires all three across the
``StorageBackend`` contract; the socket control client and the daemon client
reuse :class:`RetryPolicy` / :class:`Deadline` directly.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from typing import Callable, List, Optional, Tuple, Type

from repro.errors import (
    CircuitOpenError,
    ConfigError,
    DeadlineExceeded,
    RetryExhaustedError,
    TransientStorageError,
)

_JITTER_MODES = {"full", "none"}


class Deadline:
    """A fixed wall-clock budget that nested calls share.

    ``Deadline(5.0)`` expires five seconds after construction no matter how
    many layers it passes through — the point is that budgets *propagate*
    rather than multiply.  ``clock`` is injectable (monotonic seconds) so
    expiry is testable without real waiting.
    """

    def __init__(self, seconds: float, clock: Callable[[], float] = time.monotonic):
        if seconds < 0:
            raise ConfigError(f"deadline budget must be >= 0, got {seconds}")
        self.budget_seconds = float(seconds)
        self._clock = clock
        self._expires_at = clock() + self.budget_seconds

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is gone."""
        if self.expired:
            what = f" during {label}" if label else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget_seconds:.3f}s exceeded{what}"
            )

    def clamp(self, timeout: float) -> float:
        """``timeout`` bounded by what is left of the budget."""
        return min(float(timeout), self.remaining())


# Ambient deadline: a per-thread stack so a budget set at the top of an
# operation reaches layers whose signatures cannot thread it explicitly
# (e.g. the StorageBackend contract).
_AMBIENT = threading.local()


def current_deadline() -> Optional[Deadline]:
    """The innermost :func:`deadline_scope` deadline on this thread, if any."""
    stack = getattr(_AMBIENT, "stack", None)
    return stack[-1] if stack else None


@contextlib.contextmanager
def deadline_scope(deadline: Optional[Deadline]):
    """Make ``deadline`` ambient for the body (``None`` is a no-op scope)."""
    if deadline is None:
        yield None
        return
    stack = getattr(_AMBIENT, "stack", None)
    if stack is None:
        stack = _AMBIENT.stack = []
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()


class RetryPolicy:
    """Exponential backoff with full jitter over a bounded attempt count.

    The backoff cap before retry ``i`` (0-based) is
    ``min(max_delay, base_delay * multiplier**i)``; full jitter draws the
    actual delay uniformly from ``[0, cap]`` (the AWS-style scheme that
    decorrelates simultaneous retriers).  ``jitter="none"`` sleeps the cap
    itself.  :meth:`worst_case_delay` — the sum of caps — is the
    policy-derived bound tests assert against.

    Determinism: pass ``rng=random.Random(seed)`` and a fake ``sleep`` (for
    example ``SimulatedClock.advance``) and the policy's entire timing
    becomes a pure function of the seed.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        multiplier: float = 2.0,
        jitter: str = "full",
        retry_on: Tuple[Type[BaseException], ...] = (TransientStorageError,),
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ConfigError(
                f"delays must be >= 0, got base={base_delay} max={max_delay}"
            )
        if multiplier < 1.0:
            raise ConfigError(f"multiplier must be >= 1, got {multiplier}")
        if jitter not in _JITTER_MODES:
            raise ConfigError(
                f"jitter must be one of {_JITTER_MODES}, got {jitter!r}"
            )
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.multiplier = float(multiplier)
        self.jitter = jitter
        self.retry_on = tuple(retry_on)
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    def backoff_cap(self, retry_index: int) -> float:
        """Upper bound of the delay before retry ``retry_index`` (0-based)."""
        return min(self.max_delay, self.base_delay * self.multiplier**retry_index)

    def delay_for(self, retry_index: int) -> float:
        """Actual (jittered) delay before retry ``retry_index``; consumes RNG."""
        cap = self.backoff_cap(retry_index)
        if self.jitter == "none" or cap <= 0:
            return cap
        return self._rng.uniform(0.0, cap)

    def worst_case_delay(self) -> float:
        """Total sleep of a fully exhausted call — the latency bound."""
        return sum(self.backoff_cap(i) for i in range(self.max_attempts - 1))

    def pause(self, retry_index: int, deadline: Optional[Deadline] = None) -> float:
        """Sleep the backoff before retry ``retry_index``; returns the delay.

        Refuses to sleep past ``deadline`` — sleeping through a budget only
        to fail the post-sleep check would waste the caller's whole wait.
        """
        delay = self.delay_for(retry_index)
        if deadline is not None and deadline.remaining() < delay:
            raise DeadlineExceeded(
                f"deadline of {deadline.budget_seconds:.3f}s cannot absorb a "
                f"{delay:.3f}s backoff (retry {retry_index + 1})"
            )
        if delay > 0:
            self._sleep(delay)
        return delay

    def call(
        self,
        fn: Callable[[], object],
        retry_on: Optional[Tuple[Type[BaseException], ...]] = None,
        deadline: Optional[Deadline] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ):
        """Run ``fn`` under this policy and return its result.

        Retries only ``retry_on`` errors (the policy default when ``None``);
        anything else propagates untouched.  The effective deadline is the
        explicit one or the ambient :func:`current_deadline`.  ``on_retry``
        observes each scheduled retry as ``(retry_index, error)`` — the hook
        :class:`~repro.storage.reliable.ReliableBackend` counts retries with.
        Exhaustion raises :class:`RetryExhaustedError` chained from the last
        underlying error.
        """
        retryable = self.retry_on if retry_on is None else tuple(retry_on)
        if deadline is None:
            deadline = current_deadline()
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            if deadline is not None:
                deadline.check("retry attempt")
            try:
                return fn()
            except retryable as exc:
                last = exc
                if attempt + 1 >= self.max_attempts:
                    break
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.pause(attempt, deadline)
        raise RetryExhaustedError(
            f"operation still failing after {self.max_attempts} attempts: {last}"
        ) from last


class CircuitBreaker:
    """Fail fast against a backend that keeps failing.

    Closed → open after ``failure_threshold`` *consecutive* counted failures;
    open → half-open once ``reset_timeout`` seconds pass (probe traffic is
    admitted); half-open → closed on the first success, back to open on the
    first failure.  Only transient-class errors should be counted — a missing
    object is an answer, not an outage — which is what :meth:`call` and
    :class:`~repro.storage.reliable.ReliableBackend` enforce.

    Thread-safe; the clock is injectable for deterministic tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout < 0:
            raise ConfigError(f"reset_timeout must be >= 0, got {reset_timeout}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self.opens = 0  # lifetime open transitions, for tests/benchmarks

    def _state_locked(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = self.HALF_OPEN
        return self._state

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def before(self) -> None:
        """Gate a call: raises :class:`CircuitOpenError` while open."""
        with self._lock:
            if self._state_locked() == self.OPEN:
                retry_in = self.reset_timeout - (self._clock() - self._opened_at)
                raise CircuitOpenError(
                    f"circuit open after {self._failures} consecutive "
                    f"failures; probing again in {max(0.0, retry_in):.3f}s"
                )

    def success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED

    def failure(self) -> None:
        with self._lock:
            self._failures += 1
            state = self._state_locked()
            if state == self.HALF_OPEN or (
                state == self.CLOSED and self._failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.opens += 1

    def call(
        self,
        fn: Callable[[], object],
        count: Tuple[Type[BaseException], ...] = (
            TransientStorageError,
            RetryExhaustedError,
        ),
    ):
        """Run ``fn`` through the breaker, counting only ``count`` errors."""
        self.before()
        try:
            result = fn()
        except count:
            self.failure()
            raise
        self.success()
        return result


__all__ = [
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "current_deadline",
    "deadline_scope",
]
