"""Deterministic storage fault injection.

Crash-consistency and corruption-recovery tests need a backend that fails in
*controlled* ways:

* ``truncate`` — persist only a prefix of the object (torn write, as if the
  process died mid-upload on a non-atomic store),
* ``bitflip`` — persist the object with one byte corrupted (at-rest rot),
* ``error`` — raise :class:`~repro.errors.StorageError` without persisting.

Faults are armed per write-ordinal: ``fail_on_write=3`` damages the third
write after arming and then disarms.  Everything is deterministic — no RNG.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigError, StorageError
from repro.storage.backend import StorageBackend

_MODES = {"truncate", "bitflip", "error"}


class FlakyBackend(StorageBackend):
    """Backend decorator that injects one storage fault on demand."""

    def __init__(self, inner: StorageBackend):
        self.inner = inner
        self._mode: Optional[str] = None
        self._fail_on_write = 0
        self._writes_seen = 0
        self._truncate_fraction = 0.5
        self._flip_offset = 0
        self._read_mode: Optional[str] = None
        self._fail_on_read = 0
        self._reads_seen = 0
        self._read_truncate_fraction = 0.5
        self._read_flip_offset = 0
        self.faults_injected = 0

    def arm(
        self,
        mode: str,
        fail_on_write: int = 1,
        truncate_fraction: float = 0.5,
        flip_offset: int = 0,
    ) -> None:
        """Schedule one fault on the ``fail_on_write``-th subsequent write."""
        if mode not in _MODES:
            raise ConfigError(f"mode must be one of {_MODES}, got {mode!r}")
        if fail_on_write < 1:
            raise ConfigError(f"fail_on_write must be >= 1, got {fail_on_write}")
        if not 0.0 <= truncate_fraction < 1.0:
            raise ConfigError(
                f"truncate_fraction must be in [0, 1), got {truncate_fraction}"
            )
        self._mode = mode
        self._fail_on_write = fail_on_write
        self._writes_seen = 0
        self._truncate_fraction = truncate_fraction
        self._flip_offset = flip_offset

    def arm_read(
        self,
        mode: str,
        fail_on_read: int = 1,
        truncate_fraction: float = 0.5,
        flip_offset: int = 0,
    ) -> None:
        """Schedule one fault on the ``fail_on_read``-th subsequent read.

        ``read`` and ``read_range`` share the ordinal counter, so a restore
        pipeline issuing many ranged fetches can be failed mid-stream at a
        chosen fetch.  ``error`` raises; ``truncate`` returns a prefix;
        ``bitflip`` corrupts one byte of the returned data — the latter two
        model a backend that *lies*, which integrity verification must catch.
        """
        if mode not in _MODES:
            raise ConfigError(f"mode must be one of {_MODES}, got {mode!r}")
        if fail_on_read < 1:
            raise ConfigError(f"fail_on_read must be >= 1, got {fail_on_read}")
        if not 0.0 <= truncate_fraction < 1.0:
            raise ConfigError(
                f"truncate_fraction must be in [0, 1), got {truncate_fraction}"
            )
        self._read_mode = mode
        self._fail_on_read = fail_on_read
        self._reads_seen = 0
        self._read_truncate_fraction = truncate_fraction
        self._read_flip_offset = flip_offset

    def disarm(self) -> None:
        """Cancel any pending fault (write and read alike)."""
        self._mode = None
        self._read_mode = None

    def _maybe_damage_read(self, name: str, data: bytes) -> bytes:
        if self._read_mode is None:
            return data
        self._reads_seen += 1
        if self._reads_seen != self._fail_on_read:
            return data
        mode = self._read_mode
        self._read_mode = None
        self.faults_injected += 1
        if mode == "error":
            raise StorageError(f"injected read error for {name!r}")
        if mode == "truncate":
            return data[: int(len(data) * self._read_truncate_fraction)]
        corrupted = bytearray(data)  # bitflip
        if corrupted:
            corrupted[self._read_flip_offset % len(corrupted)] ^= 0xFF
        return bytes(corrupted)

    def write(self, name: str, data: bytes) -> None:
        if self._mode is not None:
            self._writes_seen += 1
            if self._writes_seen == self._fail_on_write:
                mode = self._mode
                self._mode = None
                self.faults_injected += 1
                if mode == "error":
                    raise StorageError(f"injected write error for {name!r}")
                if mode == "truncate":
                    cut = int(len(data) * self._truncate_fraction)
                    self.inner.write(name, data[:cut])
                    return
                if mode == "bitflip":
                    corrupted = bytearray(data)
                    if corrupted:
                        offset = self._flip_offset % len(corrupted)
                        corrupted[offset] ^= 0xFF
                    self.inner.write(name, bytes(corrupted))
                    return
        self.inner.write(name, data)

    def read(self, name: str) -> bytes:
        return self._maybe_damage_read(name, self.inner.read(name))

    def read_range(self, name: str, start: int, length: int) -> bytes:
        return self._maybe_damage_read(
            name, self.inner.read_range(name, start, length)
        )

    @property
    def supports_ranged_reads(self) -> bool:
        return self.inner.supports_ranged_reads

    def tier_for(self, name: str):
        return self.inner.tier_for(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def list(self, prefix: str = "") -> List[str]:
        return self.inner.list(prefix)

    def size(self, name: str) -> int:
        return self.inner.size(name)
