"""Deterministic storage fault injection.

Crash-consistency and corruption-recovery tests need a backend that fails in
*controlled* ways:

* ``truncate`` — persist only a prefix of the object (torn write, as if the
  process died mid-upload on a non-atomic store),
* ``bitflip`` — persist the object with one byte corrupted (at-rest rot),
* ``error`` — raise :class:`~repro.errors.TransientStorageError` without
  persisting (the retryable class: an injected fault models a condition —
  brownout, lossy link — that clears, not a missing object).

Two arming styles, both deterministic (no RNG):

* one-shot (:meth:`FlakyBackend.arm` / :meth:`FlakyBackend.arm_read`):
  ``fail_on_write=3`` damages the third write after arming, then disarms;
* schedules (:meth:`FlakyBackend.arm_schedule`): fail a deterministic
  *window* of op ordinals — ops ``first .. first+count-1`` fail, then the
  backend heals — optionally repeating every ``period`` ops.  Keyed by
  per-op counters, so a retry test can assert "attempt 1 fails, attempt 2
  recovers" as a fact rather than a probability, and a fault *storm*
  (``period > 0``) exercises a retried backend for as long as the bench
  keeps calling it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigError, TransientStorageError
from repro.storage.backend import StorageBackend

_MODES = {"truncate", "bitflip", "error"}
_OPS = {"write", "read"}


@dataclass(frozen=True)
class _Schedule:
    """A deterministic window of failing op ordinals (1-based)."""

    mode: str
    first: int
    count: int
    period: int  # 0 = fail the window once, then heal forever
    truncate_fraction: float
    flip_offset: int

    def covers(self, ordinal: int) -> bool:
        if ordinal < self.first:
            return False
        if self.period <= 0:
            return ordinal < self.first + self.count
        return (ordinal - self.first) % self.period < self.count


class FlakyBackend(StorageBackend):
    """Backend decorator that injects storage faults on demand."""

    def __init__(self, inner: StorageBackend):
        self.inner = inner
        self._mode: Optional[str] = None
        self._fail_on_write = 0
        self._writes_seen = 0
        self._truncate_fraction = 0.5
        self._flip_offset = 0
        self._read_mode: Optional[str] = None
        self._fail_on_read = 0
        self._reads_seen = 0
        self._read_truncate_fraction = 0.5
        self._read_flip_offset = 0
        self._schedules = {"write": None, "read": None}
        self._schedule_ordinals = {"write": 0, "read": 0}
        self.faults_injected = 0

    def arm(
        self,
        mode: str,
        fail_on_write: int = 1,
        truncate_fraction: float = 0.5,
        flip_offset: int = 0,
    ) -> None:
        """Schedule one fault on the ``fail_on_write``-th subsequent write."""
        if mode not in _MODES:
            raise ConfigError(f"mode must be one of {_MODES}, got {mode!r}")
        if fail_on_write < 1:
            raise ConfigError(f"fail_on_write must be >= 1, got {fail_on_write}")
        if not 0.0 <= truncate_fraction < 1.0:
            raise ConfigError(
                f"truncate_fraction must be in [0, 1), got {truncate_fraction}"
            )
        self._mode = mode
        self._fail_on_write = fail_on_write
        self._writes_seen = 0
        self._truncate_fraction = truncate_fraction
        self._flip_offset = flip_offset
        self._schedules["write"] = None

    def arm_read(
        self,
        mode: str,
        fail_on_read: int = 1,
        truncate_fraction: float = 0.5,
        flip_offset: int = 0,
    ) -> None:
        """Schedule one fault on the ``fail_on_read``-th subsequent read.

        ``read`` and ``read_range`` share the ordinal counter, so a restore
        pipeline issuing many ranged fetches can be failed mid-stream at a
        chosen fetch.  ``error`` raises; ``truncate`` returns a prefix;
        ``bitflip`` corrupts one byte of the returned data — the latter two
        model a backend that *lies*, which integrity verification must catch.
        """
        if mode not in _MODES:
            raise ConfigError(f"mode must be one of {_MODES}, got {mode!r}")
        if fail_on_read < 1:
            raise ConfigError(f"fail_on_read must be >= 1, got {fail_on_read}")
        if not 0.0 <= truncate_fraction < 1.0:
            raise ConfigError(
                f"truncate_fraction must be in [0, 1), got {truncate_fraction}"
            )
        self._read_mode = mode
        self._fail_on_read = fail_on_read
        self._reads_seen = 0
        self._read_truncate_fraction = truncate_fraction
        self._read_flip_offset = flip_offset
        self._schedules["read"] = None

    def arm_schedule(
        self,
        op: str,
        mode: str,
        first: int = 1,
        count: int = 1,
        period: int = 0,
        truncate_fraction: float = 0.5,
        flip_offset: int = 0,
    ) -> None:
        """Fail ``op`` ordinals ``first .. first+count-1``, then heal.

        Ordinals are 1-based and count from this call.  ``period > 0``
        repeats the failure window every ``period`` ops (a transient-fault
        storm); ``period=0`` fails the window exactly once.  The schedule
        stays armed until :meth:`disarm` or a re-arm — unlike the one-shot
        API it does not consume itself, which is what lets a retry test
        assert deterministic *recovery*: with ``first=1, count=2`` the first
        two attempts fail and the third succeeds, every time.
        """
        if op not in _OPS:
            raise ConfigError(f"op must be one of {_OPS}, got {op!r}")
        if mode not in _MODES:
            raise ConfigError(f"mode must be one of {_MODES}, got {mode!r}")
        if first < 1:
            raise ConfigError(f"first must be >= 1, got {first}")
        if count < 1:
            raise ConfigError(f"count must be >= 1, got {count}")
        if period < 0:
            raise ConfigError(f"period must be >= 0, got {period}")
        if period and period < count:
            raise ConfigError(
                f"period ({period}) must be >= count ({count}) or the "
                "backend would never heal"
            )
        if not 0.0 <= truncate_fraction < 1.0:
            raise ConfigError(
                f"truncate_fraction must be in [0, 1), got {truncate_fraction}"
            )
        self._schedules[op] = _Schedule(
            mode=mode,
            first=first,
            count=count,
            period=period,
            truncate_fraction=truncate_fraction,
            flip_offset=flip_offset,
        )
        self._schedule_ordinals[op] = 0
        if op == "write":
            self._mode = None
        else:
            self._read_mode = None

    def disarm(self) -> None:
        """Cancel any pending fault (one-shot and schedule, write and read)."""
        self._mode = None
        self._read_mode = None
        self._schedules = {"write": None, "read": None}

    def _scheduled_fault(self, op: str) -> Optional[Tuple[str, float, int]]:
        schedule = self._schedules[op]
        if schedule is None:
            return None
        self._schedule_ordinals[op] += 1
        if not schedule.covers(self._schedule_ordinals[op]):
            return None
        return (schedule.mode, schedule.truncate_fraction, schedule.flip_offset)

    def _next_write_fault(self) -> Optional[Tuple[str, float, int]]:
        fault = self._scheduled_fault("write")
        if fault is not None:
            return fault
        if self._mode is not None:
            self._writes_seen += 1
            if self._writes_seen == self._fail_on_write:
                mode = self._mode
                self._mode = None
                return (mode, self._truncate_fraction, self._flip_offset)
        return None

    def _next_read_fault(self) -> Optional[Tuple[str, float, int]]:
        fault = self._scheduled_fault("read")
        if fault is not None:
            return fault
        if self._read_mode is not None:
            self._reads_seen += 1
            if self._reads_seen == self._fail_on_read:
                mode = self._read_mode
                self._read_mode = None
                return (
                    mode,
                    self._read_truncate_fraction,
                    self._read_flip_offset,
                )
        return None

    def _maybe_damage_read(self, name: str, data: bytes) -> bytes:
        fault = self._next_read_fault()
        if fault is None:
            return data
        mode, truncate_fraction, flip_offset = fault
        self.faults_injected += 1
        if mode == "error":
            raise TransientStorageError(f"injected read error for {name!r}")
        if mode == "truncate":
            return data[: int(len(data) * truncate_fraction)]
        corrupted = bytearray(data)  # bitflip
        if corrupted:
            corrupted[flip_offset % len(corrupted)] ^= 0xFF
        return bytes(corrupted)

    def write(self, name: str, data: bytes) -> None:
        fault = self._next_write_fault()
        if fault is None:
            self.inner.write(name, data)
            return
        mode, truncate_fraction, flip_offset = fault
        self.faults_injected += 1
        if mode == "error":
            raise TransientStorageError(f"injected write error for {name!r}")
        if mode == "truncate":
            cut = int(len(data) * truncate_fraction)
            self.inner.write(name, data[:cut])
            return
        corrupted = bytearray(data)  # bitflip
        if corrupted:
            corrupted[flip_offset % len(corrupted)] ^= 0xFF
        self.inner.write(name, bytes(corrupted))

    def read(self, name: str) -> bytes:
        return self._maybe_damage_read(name, self.inner.read(name))

    def read_range(self, name: str, start: int, length: int) -> bytes:
        return self._maybe_damage_read(
            name, self.inner.read_range(name, start, length)
        )

    @property
    def supports_ranged_reads(self) -> bool:
        return self.inner.supports_ranged_reads

    def tier_for(self, name: str):
        return self.inner.tier_for(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def list(self, prefix: str = "") -> List[str]:
        return self.inner.list(prefix)

    def size(self, name: str) -> int:
        return self.inner.size(name)
