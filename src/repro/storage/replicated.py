"""N-way replicated storage with quorum reads and read-repair.

Checkpoints are the last line of defence against lost work, so the paper's
deployment section calls for replicating them across failure domains.  This
decorator mirrors every object across ``replicas`` and tolerates partial
failures:

* **writes** succeed when at least ``write_quorum`` replicas accept the
  object (default: majority); failed replicas leave the object *degraded*
  until :meth:`repair`,
* **reads** either take the first available copy (``consistency="first"``,
  the fast path — object integrity is already guaranteed end-to-end by the
  QCKPT checksums) or compare all available copies and return the majority
  value (``consistency="quorum"``), rewriting divergent minority replicas
  when ``read_repair`` is on,
* :meth:`scrub` walks the namespace and repairs missing/divergent copies in
  bulk, returning a report the operator (or a cron job) can act on.

Determinism: replica order is significant and iteration is always in the
given order, so tests can inject faults per replica.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError, StorageError
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.storage.backend import StorageBackend

_CONSISTENCY_MODES = {"first", "quorum"}


class ReplicationStats(StatsView):
    """Counters exposed for tests and the remote-storage ablation.

    Registry-backed ``replica.*`` series; per-replica write failures are
    one ``replica.write_failures`` counter per ``replica=<index>`` label,
    surfaced as the familiar list through
    :attr:`per_replica_write_failures`.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        replicas: int = 0,
    ):
        super().__init__()
        registry = metrics if metrics is not None else MetricsRegistry()
        for name in (
            "degraded_writes",
            "failed_writes",
            "divergent_reads",
            "repaired_objects",
        ):
            self._bind(name, registry.counter(f"replica.{name}"))
        self._replica_failures = [
            registry.counter("replica.write_failures", replica=str(index))
            for index in range(replicas)
        ]
        self._replica_base = [c.value for c in self._replica_failures]

    def note_replica_failure(self, index: int) -> None:
        self._replica_failures[index].inc()

    @property
    def per_replica_write_failures(self) -> List[int]:
        return [
            int(counter.value - base)
            for counter, base in zip(
                self._replica_failures, self._replica_base
            )
        ]


class ReplicatedBackend(StorageBackend):
    """Mirror objects across several backends with quorum semantics."""

    def __init__(
        self,
        replicas: Sequence[StorageBackend],
        write_quorum: Optional[int] = None,
        consistency: str = "first",
        read_repair: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if len(replicas) < 2:
            raise ConfigError(
                f"replication needs >= 2 replicas, got {len(replicas)}"
            )
        if consistency not in _CONSISTENCY_MODES:
            raise ConfigError(
                f"consistency must be one of {_CONSISTENCY_MODES}, "
                f"got {consistency!r}"
            )
        majority = len(replicas) // 2 + 1
        if write_quorum is None:
            write_quorum = majority
        if not 1 <= write_quorum <= len(replicas):
            raise ConfigError(
                f"write_quorum must be in [1, {len(replicas)}], got {write_quorum}"
            )
        self.replicas = list(replicas)
        self.write_quorum = write_quorum
        self.consistency = consistency
        self.read_repair = read_repair
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = ReplicationStats(self.metrics, replicas=len(replicas))

    # -- writes -----------------------------------------------------------------

    def write(self, name: str, data: bytes) -> None:
        successes = 0
        errors: List[str] = []
        for index, replica in enumerate(self.replicas):
            try:
                replica.write(name, data)
                successes += 1
            except StorageError as exc:
                self.stats.note_replica_failure(index)
                errors.append(f"replica {index}: {exc}")
        if successes < self.write_quorum:
            self.stats.failed_writes += 1
            raise StorageError(
                f"write of {name!r} reached {successes}/{len(self.replicas)} "
                f"replicas, quorum is {self.write_quorum}: {'; '.join(errors)}"
            )
        if successes < len(self.replicas):
            self.stats.degraded_writes += 1

    # -- reads -----------------------------------------------------------------

    def _read_copies(self, name: str) -> Dict[int, bytes]:
        copies: Dict[int, bytes] = {}
        for index, replica in enumerate(self.replicas):
            try:
                if replica.exists(name):
                    copies[index] = replica.read(name)
            except StorageError:
                continue
        return copies

    def read(self, name: str) -> bytes:
        if self.consistency == "first":
            last_error: Optional[StorageError] = None
            for replica in self.replicas:
                try:
                    if replica.exists(name):
                        return replica.read(name)
                except StorageError as exc:
                    last_error = exc
            if last_error is not None:
                raise StorageError(
                    f"all replicas failed reading {name!r}: {last_error}"
                )
            raise StorageError(f"object {name!r} not found on any replica")

        copies = self._read_copies(name)
        if not copies:
            raise StorageError(f"object {name!r} not found on any replica")
        winner = self._majority_value(name, copies)
        if self.read_repair:
            self._repair_object(name, winner, copies)
        return winner

    def _majority_value(self, name: str, copies: Dict[int, bytes]) -> bytes:
        votes: Dict[bytes, int] = {}
        for data in copies.values():
            votes[data] = votes.get(data, 0) + 1
        if len(votes) > 1:
            self.stats.divergent_reads += 1
        best_count = max(votes.values())
        winners = [data for data, count in votes.items() if count == best_count]
        if len(winners) > 1:
            # A tie is unresolvable at this layer; surface it rather than
            # silently picking a side (QCKPT checksums break the tie upstream).
            raise StorageError(
                f"object {name!r} has {len(winners)} equally-voted divergent "
                "copies; run scrub with a validating reader"
            )
        return winners[0]

    def _repair_object(
        self, name: str, winner: bytes, copies: Dict[int, bytes]
    ) -> bool:
        repaired = False
        for index, replica in enumerate(self.replicas):
            if copies.get(index) == winner:
                continue
            try:
                replica.write(name, winner)
                repaired = True
            except StorageError:
                continue
        if repaired:
            self.stats.repaired_objects += 1
        return repaired

    def read_range(self, name: str, start: int, length: int) -> bytes:
        """Ranged read from the first replica holding the object.

        Quorum comparison is intentionally skipped for ranged reads — they
        serve partial restores whose chunks are CRC-verified end to end.
        """
        last_error: Optional[StorageError] = None
        for replica in self.replicas:
            try:
                if replica.exists(name):
                    return replica.read_range(name, start, length)
            except StorageError as exc:
                last_error = exc
        if last_error is not None:
            raise StorageError(
                f"all replicas failed ranged read of {name!r}: {last_error}"
            )
        raise StorageError(f"object {name!r} not found on any replica")

    @property
    def supports_ranged_reads(self) -> bool:
        return all(r.supports_ranged_reads for r in self.replicas)

    # -- namespace ---------------------------------------------------------------

    def exists(self, name: str) -> bool:
        return any(replica.exists(name) for replica in self.replicas)

    def delete(self, name: str) -> None:
        errors: List[str] = []
        for index, replica in enumerate(self.replicas):
            try:
                replica.delete(name)
            except StorageError as exc:
                errors.append(f"replica {index}: {exc}")
        if len(errors) == len(self.replicas):
            raise StorageError(
                f"delete of {name!r} failed on every replica: {'; '.join(errors)}"
            )

    def list(self, prefix: str = "") -> List[str]:
        names = set()
        for replica in self.replicas:
            names.update(replica.list(prefix))
        return sorted(names)

    def size(self, name: str) -> int:
        for replica in self.replicas:
            if replica.exists(name):
                return replica.size(name)
        raise StorageError(f"object {name!r} not found on any replica")

    # -- maintenance ---------------------------------------------------------------

    def scrub(self, validator=None) -> Dict[str, str]:
        """Repair every object; returns ``{name: action}`` for touched objects.

        Actions: ``"replicated"`` (missing copies filled in), ``"repaired"``
        (divergent copies rewritten to the majority value), or
        ``"validated"`` (a majority tie broken by ``validator``).  Objects
        whose divergence cannot be resolved are reported as ``"conflict"``
        and left untouched.

        ``validator`` is an optional ``(name, data) -> bool`` callback used
        only when voting ties: with end-to-end checksums one level up (the
        QCKPT container), :meth:`repro.core.store.CheckpointStore.object_validator`
        identifies the intact copy that byte-voting alone cannot.
        """
        report: Dict[str, str] = {}
        for name in self.list():
            copies = self._read_copies(name)
            if not copies:
                continue
            action = None
            try:
                winner = self._majority_value(name, copies)
            except StorageError:
                winner = self._validated_value(name, copies, validator)
                if winner is None:
                    report[name] = "conflict"
                    continue
                action = "validated"
            divergent = any(data != winner for data in copies.values())
            missing = len(copies) < len(self.replicas)
            if not divergent and not missing:
                continue
            if action is None:
                action = "repaired" if divergent else "replicated"
            if self._repair_object(name, winner, copies):
                report[name] = action
        return report

    def _validated_value(
        self, name: str, copies: Dict[int, bytes], validator
    ) -> Optional[bytes]:
        """Break a voting tie: the unique distinct value ``validator`` accepts."""
        if validator is None:
            return None
        accepted = []
        for data in copies.values():
            if data not in accepted and validator(name, data):
                accepted.append(data)
        return accepted[0] if len(accepted) == 1 else None
