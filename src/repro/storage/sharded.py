"""Hash-sharded storage: one flat namespace spread across several backends.

The multi-job checkpoint service splits snapshots into content-addressed
chunks; a single backend would serialize all of that traffic through one
device.  :class:`ShardedBackend` routes each object name to one of ``K``
inner backends by a stable hash of the name, so chunk writes from many jobs
spread across devices while readers stay oblivious — the composite still
honours the flat-namespace :class:`~repro.storage.backend.StorageBackend`
contract (``list`` is the sorted union of all shards).

Routing is *stable* (SHA-256 of the name, independent of Python's per-process
hash randomization), so a store reopened by a different process finds every
object on the same shard that wrote it.  Content-addressed chunk names hash
uniformly, which keeps shards balanced without any placement state.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

from repro.errors import ConfigError
from repro.storage.backend import StorageBackend, validate_name


class ShardedBackend(StorageBackend):
    """Routes objects across ``shards`` by a stable hash of the name."""

    def __init__(self, shards: Sequence[StorageBackend]):
        if not shards:
            raise ConfigError("ShardedBackend needs at least one shard")
        self.shards: List[StorageBackend] = list(shards)

    def shard_index(self, name: str) -> int:
        """Stable shard index for ``name`` (same in every process)."""
        validate_name(name)
        digest = hashlib.sha256(name.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % len(self.shards)

    def shard_for(self, name: str) -> StorageBackend:
        """The shard backend holding ``name``."""
        return self.shards[self.shard_index(name)]

    # -- StorageBackend contract ----------------------------------------------------

    @property
    def supports_ranged_reads(self) -> bool:
        return all(shard.supports_ranged_reads for shard in self.shards)

    def tier_for(self, name: str):
        return self.shard_for(name).tier_for(name)

    def write(self, name: str, data: bytes) -> None:
        self.shard_for(name).write(name, data)

    def read(self, name: str) -> bytes:
        return self.shard_for(name).read(name)

    def read_range(self, name: str, start: int, length: int) -> bytes:
        return self.shard_for(name).read_range(name, start, length)

    def exists(self, name: str) -> bool:
        return self.shard_for(name).exists(name)

    def delete(self, name: str) -> None:
        self.shard_for(name).delete(name)

    def list(self, prefix: str = "") -> List[str]:
        names: set = set()
        for shard in self.shards:
            names.update(shard.list(prefix))
        return sorted(names)

    def size(self, name: str) -> int:
        return self.shard_for(name).size(name)

    # -- introspection ----------------------------------------------------------

    def objects_per_shard(self, prefix: str = "") -> Dict[int, int]:
        """``{shard_index: object_count}`` — balance report for benchmarks."""
        return {
            index: len(shard.list(prefix))
            for index, shard in enumerate(self.shards)
        }
