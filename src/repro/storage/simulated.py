"""Simulated remote storage: a cost model over any inner backend.

The paper's remote-storage ablation needs checkpoint cost as a function of
size, bandwidth, and round-trip time — not a real object store.  This wrapper
delegates the bytes to an inner backend and *accounts* transfer time with::

    seconds = rtt + nbytes / bandwidth

Time is accumulated on a simulated clock (no real sleeping), which the
failure-model experiments read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError
from repro.storage.backend import StorageBackend
from repro.storage.memory import InMemoryBackend


@dataclass(frozen=True)
class TransferCostModel:
    """Latency/bandwidth model for one storage tier."""

    bandwidth_bytes_per_s: float
    rtt_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigError(
                f"bandwidth must be > 0, got {self.bandwidth_bytes_per_s}"
            )
        if self.rtt_seconds < 0:
            raise ConfigError(f"rtt must be >= 0, got {self.rtt_seconds}")

    def seconds_for(self, nbytes: int) -> float:
        """Modelled wall time to transfer ``nbytes``."""
        return self.rtt_seconds + nbytes / self.bandwidth_bytes_per_s

    @classmethod
    def local_ssd(cls) -> "TransferCostModel":
        """~2 GB/s, negligible latency."""
        return cls(bandwidth_bytes_per_s=2e9, rtt_seconds=50e-6)

    @classmethod
    def datacenter_object_store(cls) -> "TransferCostModel":
        """~100 MB/s effective, 1 ms RTT."""
        return cls(bandwidth_bytes_per_s=100e6, rtt_seconds=1e-3)

    @classmethod
    def wan_object_store(cls) -> "TransferCostModel":
        """~10 MB/s effective, 50 ms RTT."""
        return cls(bandwidth_bytes_per_s=10e6, rtt_seconds=50e-3)


class SimulatedRemoteBackend(StorageBackend):
    """Backend decorator accumulating modelled transfer time."""

    def __init__(
        self,
        cost_model: TransferCostModel,
        inner: Optional[StorageBackend] = None,
    ):
        self.cost_model = cost_model
        self.inner = inner if inner is not None else InMemoryBackend()
        self.simulated_seconds = 0.0
        self.last_transfer_seconds = 0.0

    def _account(self, nbytes: int) -> None:
        seconds = self.cost_model.seconds_for(nbytes)
        self.last_transfer_seconds = seconds
        self.simulated_seconds += seconds

    def write(self, name: str, data: bytes) -> None:
        self.inner.write(name, data)
        self._account(len(data))

    def read(self, name: str) -> bytes:
        data = self.inner.read(name)
        self._account(len(data))
        return data

    def read_range(self, name: str, start: int, length: int) -> bytes:
        chunk = self.inner.read_range(name, start, length)
        self._account(len(chunk))  # ranged reads pay only transferred bytes
        return chunk

    @property
    def supports_ranged_reads(self) -> bool:
        return self.inner.supports_ranged_reads

    def tier_for(self, name: str):
        return self.inner.tier_for(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def delete(self, name: str) -> None:
        self.inner.delete(name)
        self._account(0)  # metadata round trip

    def list(self, prefix: str = "") -> List[str]:
        return self.inner.list(prefix)

    def size(self, name: str) -> int:
        return self.inner.size(name)

    def reset_accounting(self) -> None:
        """Zero the simulated clock."""
        self.simulated_seconds = 0.0
        self.last_transfer_seconds = 0.0
