"""Schema-versioned SQLite index over the store's append-only metadata.

Every bookkeeping path in the service layer — ``latest_valid`` discovery,
the placement-journal fold, gc's liveness set, ``qckpt status`` on a fleet
store — is an O(everything) scan of JSON files.  :class:`MetaDB` puts that
metadata behind one SQLite file with typed tables, making each of those
paths O(query).  The design rule that keeps it safe:

**The index is a cache; the files are the truth.**  Placement journal
records (``plj-*.json``), checkpoint manifests (``job-*-ckpt-*.json``) and
daemon job JSON stay append-only and are always written *first*; the index
is updated after.  A crash between the two leaves the index *behind*, never
wrong, and three recovery mechanisms close the gap:

* **High-water-mark catch-up** — the index stores the ``(seq, owner)`` key
  of the newest journal record folded into it plus the set of record names
  that fold covered.  A reopening :class:`~repro.storage.placement
  .PlacementJournal` reads only the journal *suffix* past that mark instead
  of re-folding the whole log.  A record that appears at-or-below the mark
  without being part of the covered set (a concurrent writer landed a
  record that sorts before the mark) invalidates the incremental state and
  forces a full re-fold — the deterministic file fold always wins.
* **Reconcile-on-open** — a :class:`~repro.service.chunkstore.ChunkStore`
  lists manifest *names* (cheap) and reads only manifests the index does
  not know, deleting rows whose files are gone.
* **Rebuild-from-scratch** — a missing, corrupt, or version-mismatched
  index file is deleted and recreated empty; the callers' full folds then
  repopulate it.  The index is never trusted blindly.

File placement: for a :class:`~repro.storage.local.LocalDirectoryBackend`
store the index lives in a dot-file (:data:`DB_FILENAME`) next to the
objects.  Backend object names may not start with a dot and directory
listings skip dot-files, so the sidecar is invisible to — and unreachable
through — the storage API; it is accessed by filesystem path only.
``path=None`` opens an in-memory index (tests, in-memory backends).

Every writer sharing a store must share its index file (SQLite WAL mode
handles the cross-process concurrency); a writer that bypasses the index
leaves it stale until the next reconcile.  All telemetry lands in the
``metadb.*`` series of the registry passed in (opens, rebuilds, applies,
catch-up/full-fold counts, query counter, transaction latency).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import StorageError
from repro.faults.crashpoints import register_crash_point
from repro.obs.metrics import MetricsRegistry

#: Bump on any schema change; a mismatched file is discarded and rebuilt.
SCHEMA_VERSION = 1

#: Sidecar filename for directory-backed stores.  The leading dot keeps it
#: out of backend listings and makes it un-addressable as a backend object.
DB_FILENAME = ".qckpt-meta.db"

# Crash barriers around the journal-append -> index-update ordering.  The
# chaos sweep (repro.faults.chaos, prefix "metadb.") kills at each and
# asserts a reopened index is oracle-equivalent to the file-journal fold.
CP_JOURNAL_BEFORE_APPLY = register_crash_point(
    "metadb.journal.before-apply",
    "die after a journal record is durable but before the index "
    "transaction (index high-water mark goes stale; reopen must catch "
    "up from the journal suffix)",
)
CP_JOURNAL_AFTER_APPLY = register_crash_point(
    "metadb.journal.after-apply",
    "die after the index transaction commits but before in-memory "
    "bookkeeping adopts the new base state",
)
CP_REBUILD_MID_FOLD = register_crash_point(
    "metadb.rebuild.mid-fold",
    "die mid-way through rebuilding the index from the full journal fold "
    "(index cleared or still empty, nothing re-persisted yet)",
)
CP_VACUUM_MID_SWEEP = register_crash_point(
    "metadb.vacuum.mid-sweep",
    "die after pruning the first covered record row of a compaction "
    "vacuum (index record table half-swept, state tables intact)",
)

_PLACEMENT_HWM_EMPTY: Tuple[int, str] = (0, "")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS pins (
    name  TEXT PRIMARY KEY,
    owner TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS leases (
    role    TEXT PRIMARY KEY,
    holder  TEXT NOT NULL,
    expires REAL NOT NULL,
    seq     INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS journal_records (
    name  TEXT PRIMARY KEY,
    seq   INTEGER NOT NULL,
    owner TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS manifests (
    object_name TEXT PRIMARY KEY,
    job         TEXT NOT NULL,
    seq         INTEGER NOT NULL,
    ckpt_id     TEXT NOT NULL,
    step        INTEGER,
    created     REAL,
    codec       TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_manifests_job ON manifests (job, seq);
CREATE TABLE IF NOT EXISTS chunk_refs (
    object_name   TEXT NOT NULL,
    chunk         TEXT NOT NULL,
    stored_nbytes INTEGER NOT NULL,
    PRIMARY KEY (object_name, chunk)
);
CREATE INDEX IF NOT EXISTS idx_chunk_refs_chunk ON chunk_refs (chunk);
CREATE TABLE IF NOT EXISTS daemon_jobs (
    job_id    TEXT PRIMARY KEY,
    daemon_id TEXT NOT NULL,
    state     TEXT NOT NULL,
    priority  INTEGER NOT NULL,
    updated   REAL NOT NULL
);
"""

_REQUIRED_TABLES = {
    "meta",
    "pins",
    "leases",
    "journal_records",
    "manifests",
    "chunk_refs",
    "daemon_jobs",
}


class _SchemaMismatch(Exception):
    """Internal: stored schema version differs from :data:`SCHEMA_VERSION`."""


@dataclass
class PlacementBase:
    """The folded placement state persisted in the index.

    ``hwm`` is the ``(seq, owner)`` sort key of the newest journal record
    whose effect is included; ``record_names`` is exactly the set of
    journal record names that fold covered (the out-of-order detector).
    """

    hwm: Tuple[int, str] = _PLACEMENT_HWM_EMPTY
    pins: Set[str] = field(default_factory=set)
    pin_owner: Dict[str, str] = field(default_factory=dict)
    #: role -> (holder, expires, seq)
    leases: Dict[str, Tuple[str, float, int]] = field(default_factory=dict)
    record_names: Set[str] = field(default_factory=set)


def metadb_enabled(
    explicit: Optional[bool] = None, default: bool = False
) -> bool:
    """Resolve the index on/off switch: explicit arg > env > ``default``.

    ``QCKPT_METADB=0`` force-disables, ``QCKPT_METADB=1`` force-enables —
    the CI parity job runs the differential suite under both values.
    """
    if explicit is not None:
        return bool(explicit)
    env = os.environ.get("QCKPT_METADB")
    if env is not None:
        return env.strip().lower() not in ("0", "false", "no", "")
    return default


def metadb_for_dir(
    directory,
    metrics: Optional[MetricsRegistry] = None,
    enabled: Optional[bool] = None,
) -> Optional["MetaDB"]:
    """Sidecar index for a local store directory, or ``None`` if disabled."""
    if not metadb_enabled(enabled):
        return None
    return MetaDB(Path(directory) / DB_FILENAME, metrics=metrics)


class MetaDB:
    """One SQLite connection over the store's metadata index.

    Thread-safe (one internal lock; SQLite opened with
    ``check_same_thread=False``); cross-*process* sharing of a file-backed
    index goes through WAL mode plus ``BEGIN IMMEDIATE`` transactions with
    a high-water-mark guard, so two daemons never interleave half-applied
    placement state.  Every operation that fails inside SQLite surfaces as
    :class:`~repro.errors.StorageError` — callers treat the index as a
    cache and fall back to the file scan.
    """

    def __init__(
        self,
        path=None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.path = None if path is None else str(path)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.RLock()
        self._conn: Optional[sqlite3.Connection] = None
        #: True when this open discarded a prior index file (corrupt or
        #: version-mismatched) — the caller's full fold repopulates it.
        self.discarded_previous = False
        self._open()

    # -- lifecycle --------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self.path is None:
            conn = sqlite3.connect(":memory:", check_same_thread=False)
        else:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            conn = sqlite3.connect(
                self.path, timeout=30.0, check_same_thread=False
            )
            # WAL lets concurrent readers proceed under a writer and keeps
            # commits one fsync; NORMAL is safe with WAL (a power loss may
            # drop the newest transactions — the journal suffix catch-up
            # heals exactly that).
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA foreign_keys=OFF")
        return conn

    def _open(self) -> None:
        with self._lock:
            try:
                self._conn = self._connect()
                self._validate_or_init()
            except (sqlite3.Error, _SchemaMismatch):
                # Corrupt or from another era: discard, never trust.
                self._discard_and_recreate()
            self.metrics.counter("metadb.opens").inc()

    def _validate_or_init(self) -> None:
        conn = self._conn
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        if not tables:
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            conn.commit()
            return
        if not _REQUIRED_TABLES <= tables:
            raise _SchemaMismatch(f"missing tables: {_REQUIRED_TABLES - tables}")
        row = conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        if row is None or row[0] != str(SCHEMA_VERSION):
            raise _SchemaMismatch(
                f"schema version {row[0] if row else None!r} != "
                f"{SCHEMA_VERSION}"
            )
        # Cheap corruption probe; a torn file fails here, not mid-query.
        status = conn.execute("PRAGMA quick_check(1)").fetchone()
        if status is None or status[0] != "ok":
            raise _SchemaMismatch(f"quick_check: {status}")

    def _discard_and_recreate(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        if self.path is not None:
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(self.path + suffix)
                except OSError:
                    pass
        self.discarded_previous = True
        self.metrics.counter("metadb.rebuilds").inc()
        self._conn = self._connect()
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) "
            "VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        self._conn.commit()

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    def _execute(self, sql: str, params: Tuple = ()):
        """One auto-committed statement under the lock (cache semantics:
        any SQLite failure is a :class:`StorageError` the caller may
        absorb)."""
        with self._lock:
            if self._conn is None:
                raise StorageError("metadata index is closed")
            try:
                cursor = self._conn.execute(sql, params)
                self._conn.commit()
                return cursor
            except sqlite3.Error as exc:
                raise StorageError(f"metadata index: {exc}") from exc

    def _query(self, sql: str, params: Tuple = ()) -> List[Tuple]:
        with self._lock:
            if self._conn is None:
                raise StorageError("metadata index is closed")
            try:
                self.metrics.counter("metadb.queries").inc()
                return self._conn.execute(sql, params).fetchall()
            except sqlite3.Error as exc:
                raise StorageError(f"metadata index: {exc}") from exc

    # -- placement (journal fold base) ------------------------------------------

    def placement_state(self) -> PlacementBase:
        """The persisted fold base (empty base when never persisted)."""
        base = PlacementBase()
        rows = self._query(
            "SELECT key, value FROM meta WHERE key IN "
            "('placement_hwm_seq', 'placement_hwm_owner')"
        )
        meta = {key: value for key, value in rows}
        if "placement_hwm_seq" in meta:
            base.hwm = (
                int(meta["placement_hwm_seq"]),
                str(meta.get("placement_hwm_owner", "")),
            )
        base.pins = {
            name for (name, _) in self._query("SELECT name, owner FROM pins")
        }
        base.pin_owner = {
            name: owner
            for (name, owner) in self._query("SELECT name, owner FROM pins")
        }
        base.leases = {
            role: (holder, float(expires), int(seq))
            for (role, holder, expires, seq) in self._query(
                "SELECT role, holder, expires, seq FROM leases"
            )
        }
        base.record_names = {
            name for (name,) in self._query("SELECT name FROM journal_records")
        }
        return base

    def replace_placement_state(
        self,
        hwm: Tuple[int, str],
        pins: Iterable[str],
        pin_owner: Dict[str, str],
        leases: Dict[str, Tuple[str, float, int]],
        record_names: Iterable[Tuple[str, int, str]],
    ) -> bool:
        """Atomically replace the fold base, guarded by the high-water mark.

        Returns ``False`` (and writes nothing) when the stored mark is
        already at or past ``hwm`` — another process applied a newer fold;
        the journal files remain the tie-breaker.  ``record_names`` carries
        ``(name, seq, owner)`` triples of every record the new base covers.
        """
        started = time.perf_counter()
        with self._lock:
            if self._conn is None:
                raise StorageError("metadata index is closed")
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                row = self._conn.execute(
                    "SELECT value FROM meta WHERE key='placement_hwm_seq'"
                ).fetchone()
                owner_row = self._conn.execute(
                    "SELECT value FROM meta WHERE key='placement_hwm_owner'"
                ).fetchone()
                stored = (
                    (int(row[0]), str(owner_row[0]) if owner_row else "")
                    if row is not None
                    else _PLACEMENT_HWM_EMPTY
                )
                if stored >= tuple(hwm):
                    self._conn.execute("ROLLBACK")
                    return False
                self._conn.execute("DELETE FROM pins")
                self._conn.execute("DELETE FROM leases")
                self._conn.execute("DELETE FROM journal_records")
                self._conn.executemany(
                    "INSERT INTO pins (name, owner) VALUES (?, ?)",
                    [(name, pin_owner.get(name, "")) for name in pins],
                )
                self._conn.executemany(
                    "INSERT INTO leases (role, holder, expires, seq) "
                    "VALUES (?, ?, ?, ?)",
                    [
                        (role, holder, float(expires), int(seq))
                        for role, (holder, expires, seq) in leases.items()
                    ],
                )
                self._conn.executemany(
                    "INSERT INTO journal_records (name, seq, owner) "
                    "VALUES (?, ?, ?)",
                    [
                        (name, int(seq), str(owner))
                        for name, seq, owner in record_names
                    ],
                )
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) "
                    "VALUES ('placement_hwm_seq', ?)",
                    (str(int(hwm[0])),),
                )
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) "
                    "VALUES ('placement_hwm_owner', ?)",
                    (str(hwm[1]),),
                )
                self._conn.commit()
            except sqlite3.Error as exc:
                try:
                    self._conn.rollback()
                except sqlite3.Error:
                    pass
                raise StorageError(f"metadata index: {exc}") from exc
            except BaseException:
                try:
                    self._conn.rollback()
                except sqlite3.Error:
                    pass
                raise
        self.metrics.counter("metadb.applies").inc()
        self.metrics.histogram("metadb.txn_seconds").observe(
            time.perf_counter() - started
        )
        return True

    def clear_placement(self) -> None:
        """Drop the fold base (the rebuild path resets to an empty mark)."""
        with self._lock:
            if self._conn is None:
                raise StorageError("metadata index is closed")
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                self._conn.execute("DELETE FROM pins")
                self._conn.execute("DELETE FROM leases")
                self._conn.execute("DELETE FROM journal_records")
                self._conn.execute(
                    "DELETE FROM meta WHERE key IN "
                    "('placement_hwm_seq', 'placement_hwm_owner')"
                )
                self._conn.commit()
            except sqlite3.Error as exc:
                try:
                    self._conn.rollback()
                except sqlite3.Error:
                    pass
                raise StorageError(f"metadata index: {exc}") from exc

    def prune_record(self, name: str) -> None:
        """Drop one covered record row (compaction vacuum, record deleted)."""
        self._execute("DELETE FROM journal_records WHERE name = ?", (name,))

    # -- chunk-manifest headers --------------------------------------------------

    def upsert_manifest(
        self,
        object_name: str,
        job: str,
        seq: int,
        ckpt_id: str,
        step: Optional[int],
        created: Optional[float],
        codec: str,
        refs: Iterable[Tuple[str, int]],
    ) -> None:
        """Insert/replace one manifest header row plus its chunk refs."""
        with self._lock:
            if self._conn is None:
                raise StorageError("metadata index is closed")
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                self._conn.execute(
                    "INSERT OR REPLACE INTO manifests "
                    "(object_name, job, seq, ckpt_id, step, created, codec) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        object_name,
                        job,
                        int(seq),
                        ckpt_id,
                        None if step is None else int(step),
                        None if created is None else float(created),
                        codec,
                    ),
                )
                self._conn.execute(
                    "DELETE FROM chunk_refs WHERE object_name = ?",
                    (object_name,),
                )
                self._conn.executemany(
                    "INSERT OR REPLACE INTO chunk_refs "
                    "(object_name, chunk, stored_nbytes) VALUES (?, ?, ?)",
                    [
                        (object_name, chunk, int(nbytes))
                        for chunk, nbytes in refs
                    ],
                )
                self._conn.commit()
            except sqlite3.Error as exc:
                try:
                    self._conn.rollback()
                except sqlite3.Error:
                    pass
                raise StorageError(f"metadata index: {exc}") from exc

    def delete_manifest(self, object_name: str) -> None:
        with self._lock:
            if self._conn is None:
                raise StorageError("metadata index is closed")
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                self._conn.execute(
                    "DELETE FROM manifests WHERE object_name = ?",
                    (object_name,),
                )
                self._conn.execute(
                    "DELETE FROM chunk_refs WHERE object_name = ?",
                    (object_name,),
                )
                self._conn.commit()
            except sqlite3.Error as exc:
                try:
                    self._conn.rollback()
                except sqlite3.Error:
                    pass
                raise StorageError(f"metadata index: {exc}") from exc

    def manifest_objects(self) -> Set[str]:
        """Every manifest object name the index knows."""
        return {
            name for (name,) in self._query("SELECT object_name FROM manifests")
        }

    def manifest_names(self, job: str) -> List[str]:
        """One job's manifest names in commit (sequence) order."""
        return [
            name
            for (name,) in self._query(
                "SELECT object_name FROM manifests WHERE job = ? "
                "ORDER BY seq",
                (job,),
            )
        ]

    def has_manifests(self, job: str) -> bool:
        rows = self._query(
            "SELECT 1 FROM manifests WHERE job = ? LIMIT 1", (job,)
        )
        return bool(rows)

    def jobs(self) -> List[str]:
        return [
            job
            for (job,) in self._query(
                "SELECT DISTINCT job FROM manifests ORDER BY job"
            )
        ]

    def live_chunks(self) -> Set[str]:
        """Chunk addresses referenced by at least one indexed manifest —
        gc's liveness set in one query instead of a manifest walk."""
        return {
            chunk
            for (chunk,) in self._query("SELECT DISTINCT chunk FROM chunk_refs")
        }

    def chunk_sizes(self, codec: str) -> Dict[str, int]:
        """``chunk -> stored_nbytes`` over manifests of one codec (the
        reopened store's dedup index, no manifest reads)."""
        return {
            chunk: int(nbytes)
            for (chunk, nbytes) in self._query(
                "SELECT c.chunk, c.stored_nbytes FROM chunk_refs c "
                "JOIN manifests m ON m.object_name = c.object_name "
                "WHERE m.codec = ?",
                (codec,),
            )
        }

    def manifest_refs(self, object_name: str) -> Dict[str, int]:
        return {
            chunk: int(nbytes)
            for (chunk, nbytes) in self._query(
                "SELECT chunk, stored_nbytes FROM chunk_refs "
                "WHERE object_name = ?",
                (object_name,),
            )
        }

    # -- daemon job registry -----------------------------------------------------

    def upsert_daemon_job(
        self,
        job_id: str,
        daemon_id: str,
        state: str,
        priority: int,
        updated: Optional[float] = None,
    ) -> None:
        self._execute(
            "INSERT OR REPLACE INTO daemon_jobs "
            "(job_id, daemon_id, state, priority, updated) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                job_id,
                daemon_id,
                state,
                int(priority),
                time.time() if updated is None else float(updated),
            ),
        )

    def daemon_jobs(self) -> Dict[str, Dict]:
        return {
            job_id: {
                "daemon_id": daemon_id,
                "state": state,
                "priority": int(priority),
                "updated": float(updated),
            }
            for (job_id, daemon_id, state, priority, updated) in self._query(
                "SELECT job_id, daemon_id, state, priority, updated "
                "FROM daemon_jobs"
            )
        }

    def count_daemon_jobs(self) -> int:
        rows = self._query("SELECT COUNT(*) FROM daemon_jobs")
        return int(rows[0][0]) if rows else 0


def manifest_index_row(object_name: str, manifest: Dict):
    """``(job, seq, ckpt_id, step, created, codec, refs)`` for one parsed
    manifest, or ``None`` when the name does not parse.  Shared by the
    chunk store's write-through/reconcile and the scrubber's repair path so
    both index the same shape."""
    # Local import: chunkstore imports this module for crash-point names.
    from repro.service.chunkstore import _parse_manifest_name

    job_id, seq = _parse_manifest_name(object_name)
    if job_id is None:
        return None
    refs: Dict[str, int] = {}
    for entry in manifest.get("tensors", []):
        for block in entry.get("blocks", []):
            chunk = block.get("chunk")
            if chunk:
                refs[chunk] = int(block.get("stored_nbytes", 0))
    return (
        job_id,
        seq,
        str(manifest.get("ckpt_id", f"ckpt-{seq:06d}")),
        manifest.get("step"),
        manifest.get("created"),
        str(manifest.get("codec", "")),
        sorted(refs.items()),
    )


def index_manifest(db: MetaDB, object_name: str, manifest: Dict) -> None:
    """Write-through one committed manifest into ``db`` (no-op on a name
    that does not parse as a manifest)."""
    row = manifest_index_row(object_name, manifest)
    if row is None:
        return
    job_id, seq, ckpt_id, step, created, codec, refs = row
    db.upsert_manifest(
        object_name, job_id, seq, ckpt_id, step, created, codec, refs
    )


def parse_record_name(name: str) -> Optional[Tuple[int, str]]:
    """``plj-<seq:08d>-<owner>.json`` -> its ``(seq, owner)`` sort key."""
    if not name.startswith("plj-") or not name.endswith(".json"):
        return None
    stem = name[len("plj-") : -len(".json")]
    sep = stem.find("-")
    if sep < 1 or not stem[:sep].isdigit():
        return None
    return int(stem[:sep]), stem[sep + 1 :]


__all__ = [
    "DB_FILENAME",
    "MetaDB",
    "PlacementBase",
    "SCHEMA_VERSION",
    "index_manifest",
    "manifest_index_row",
    "metadb_enabled",
    "metadb_for_dir",
    "parse_record_name",
]
