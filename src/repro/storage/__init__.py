"""Storage backends.

A :class:`~repro.storage.backend.StorageBackend` is a flat byte-blob namespace
with atomic writes — the minimal contract the checkpoint store needs.  Six
implementations:

* :class:`~repro.storage.local.LocalDirectoryBackend` — filesystem directory
  with tmp-file + fsync + rename atomicity,
* :class:`~repro.storage.memory.InMemoryBackend` — dict-backed, with byte
  counters, for tests and benchmarks,
* :class:`~repro.storage.simulated.SimulatedRemoteBackend` — wraps another
  backend with a latency/bandwidth cost model (the "remote object store" of
  the evaluation),
* :class:`~repro.storage.flaky.FlakyBackend` — deterministic fault injection
  (torn writes, bit flips, errors) for crash-consistency tests,
* :class:`~repro.storage.replicated.ReplicatedBackend` — N-way mirroring with
  quorum writes, majority reads, read-repair, and scrubbing,
* :class:`~repro.storage.tiered.TieredBackend` — byte-budgeted LRU fast tier
  over a slow tier, write-through or write-back,
* :class:`~repro.storage.sharded.ShardedBackend` — stable-hash routing of one
  namespace across several backends (the chunk-store substrate),
* :class:`~repro.storage.reliable.ReliableBackend` — retry/backoff, circuit
  breaking, and deadline budgets (``repro.reliability``) over any of the
  above.

:class:`~repro.storage.placement.PlacementJournal` is not a backend but the
shared placement state *over* one: an append-only, on-store journal making
tier pins durable across restarts and visible across processes, with
lease-based single-holder roles for fleet-wide sweeps (rebalance, compact).

:class:`~repro.storage.metadb.MetaDB` is the optional SQLite index over all
of that metadata — journal fold, manifest headers, daemon job registry —
kept strictly as a cache: the JSON files stay the durable truth, and a
missing or corrupt index rebuilds from them.
"""

from repro.storage.backend import StorageBackend
from repro.storage.flaky import FlakyBackend
from repro.storage.local import LocalDirectoryBackend
from repro.storage.memory import InMemoryBackend
from repro.storage.metadb import MetaDB, metadb_for_dir
from repro.storage.placement import LeaseState, PlacementJournal
from repro.storage.reliable import ReliabilityStats, ReliableBackend
from repro.storage.replicated import ReplicatedBackend, ReplicationStats
from repro.storage.sharded import ShardedBackend
from repro.storage.simulated import SimulatedRemoteBackend, TransferCostModel
from repro.storage.tiered import TieredBackend, TierStats

__all__ = [
    "StorageBackend",
    "LocalDirectoryBackend",
    "InMemoryBackend",
    "SimulatedRemoteBackend",
    "TransferCostModel",
    "FlakyBackend",
    "ReliableBackend",
    "ReliabilityStats",
    "PlacementJournal",
    "LeaseState",
    "MetaDB",
    "metadb_for_dir",
    "ReplicatedBackend",
    "ReplicationStats",
    "ShardedBackend",
    "TieredBackend",
    "TierStats",
]
