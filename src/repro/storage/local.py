"""Filesystem storage backend with crash-consistent writes.

Write protocol (the classic atomic-replace dance):

1. write to a unique temporary file in the same directory,
2. flush + ``fsync`` the file so data reaches the device,
3. ``os.replace`` onto the final name (atomic on POSIX),
4. ``fsync`` the directory so the rename itself is durable.

A crash at any point leaves either the old object or the new object, never a
torn mix — the property the checkpoint store's manifest ordering relies on.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path
from typing import List

from repro.errors import StorageError
from repro.storage.backend import StorageBackend, validate_name


class LocalDirectoryBackend(StorageBackend):
    """Stores each object as one file inside ``root``."""

    def __init__(self, root: "str | os.PathLike", fsync: bool = True):
        self.root = Path(root)
        self.fsync = bool(fsync)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StorageError(f"cannot create backend root {self.root}: {exc}") from exc

    def _path(self, name: str) -> Path:
        return self.root / validate_name(name)

    def write(self, name: str, data: bytes) -> None:
        path = self._path(name)
        tmp = path.with_name(f".{path.name}.{uuid.uuid4().hex}.tmp")
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
            if self.fsync:
                self._fsync_dir()
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise StorageError(f"write of {name!r} failed: {exc}") from exc

    def _fsync_dir(self) -> None:
        fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def read(self, name: str) -> bytes:
        path = self._path(name)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise StorageError(f"object {name!r} does not exist") from None
        except OSError as exc:
            raise StorageError(f"read of {name!r} failed: {exc}") from exc

    def read_range(self, name: str, start: int, length: int) -> bytes:
        if start < 0 or length < 0:
            raise StorageError(
                f"invalid range [{start}, {start}+{length}) for {name!r}"
            )
        path = self._path(name)
        try:
            with open(path, "rb") as handle:
                handle.seek(start)
                return handle.read(length)
        except FileNotFoundError:
            raise StorageError(f"object {name!r} does not exist") from None
        except OSError as exc:
            raise StorageError(f"read of {name!r} failed: {exc}") from exc

    @property
    def supports_ranged_reads(self) -> bool:
        return True  # seek + read transfers only the requested range

    def exists(self, name: str) -> bool:
        return self._path(name).is_file()

    def delete(self, name: str) -> None:
        try:
            self._path(name).unlink(missing_ok=True)
        except OSError as exc:
            raise StorageError(f"delete of {name!r} failed: {exc}") from exc

    def list(self, prefix: str = "") -> List[str]:
        names = [
            entry.name
            for entry in self.root.iterdir()
            if entry.is_file() and not entry.name.startswith(".")
        ]
        return sorted(name for name in names if name.startswith(prefix))

    def size(self, name: str) -> int:
        path = self._path(name)
        try:
            return path.stat().st_size
        except FileNotFoundError:
            raise StorageError(f"object {name!r} does not exist") from None
