"""Two-tier storage: a small fast tier in front of a large slow tier.

The deployment shape the paper's remote-storage ablation points at: recent
checkpoints should restore at local-SSD speed while the full history lives in
a cheaper object store.  The fast tier is a byte-budgeted LRU cache:

* **write-through** (default): writes land in both tiers before returning —
  the slow tier is always complete, so losing the fast tier loses nothing;
* **write-back**: writes land only in the fast tier and are flushed to the
  slow tier by :meth:`flush`, on eviction, or at :meth:`close`; faster
  checkpoint latency at the cost of a durability window (the trade-off
  Tab. 4's interval analysis prices).

Reads hit the fast tier first and *promote* slow-tier objects into it.
Evictions are strictly LRU by last access and never drop a dirty object
without flushing it first.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Set

from repro.errors import ConfigError, StorageError
from repro.storage.backend import StorageBackend

_POLICIES = {"write-through", "write-back"}


@dataclass
class TierStats:
    """Cache counters exposed for tests and the storage ablation."""

    fast_hits: int = 0
    fast_misses: int = 0
    promotions: int = 0
    evictions: int = 0
    flushes: int = 0


class TieredBackend(StorageBackend):
    """LRU fast tier over a slow tier, write-through or write-back."""

    def __init__(
        self,
        fast: StorageBackend,
        slow: StorageBackend,
        fast_capacity_bytes: int,
        policy: str = "write-through",
    ):
        if fast_capacity_bytes < 1:
            raise ConfigError(
                f"fast_capacity_bytes must be >= 1, got {fast_capacity_bytes}"
            )
        if policy not in _POLICIES:
            raise ConfigError(
                f"policy must be one of {_POLICIES}, got {policy!r}"
            )
        self.fast = fast
        self.slow = slow
        self.fast_capacity_bytes = int(fast_capacity_bytes)
        self.policy = policy
        self.stats = TierStats()
        # LRU bookkeeping: name -> size, in access order (oldest first).
        self._resident: "OrderedDict[str, int]" = OrderedDict()
        self._dirty: Set[str] = set()
        self._adopt_existing_fast_objects()

    def _adopt_existing_fast_objects(self) -> None:
        for name in self.fast.list():
            self._resident[name] = self.fast.size(name)

    # -- capacity ---------------------------------------------------------------

    def fast_bytes_used(self) -> int:
        """Bytes currently resident in the fast tier."""
        return sum(self._resident.values())

    def _evict_until_fits(self, incoming: int) -> None:
        if incoming > self.fast_capacity_bytes:
            raise StorageError(
                f"object of {incoming} bytes exceeds the fast tier capacity "
                f"({self.fast_capacity_bytes} bytes)"
            )
        while self.fast_bytes_used() + incoming > self.fast_capacity_bytes:
            victim, _ = next(iter(self._resident.items()))
            self._evict(victim)

    def _evict(self, name: str) -> None:
        if name in self._dirty:
            self._flush_one(name)
        self.fast.delete(name)
        self._resident.pop(name, None)
        self.stats.evictions += 1

    def _touch(self, name: str, size: int) -> None:
        self._resident.pop(name, None)
        self._resident[name] = size

    # -- write-back flushing --------------------------------------------------------

    def _flush_one(self, name: str) -> None:
        self.slow.write(name, self.fast.read(name))
        self._dirty.discard(name)
        self.stats.flushes += 1

    def flush(self) -> List[str]:
        """Push every dirty object to the slow tier; returns flushed names."""
        flushed = sorted(self._dirty)
        for name in flushed:
            self._flush_one(name)
        return flushed

    def dirty_objects(self) -> List[str]:
        """Objects present only in the fast tier (durability window)."""
        return sorted(self._dirty)

    def close(self) -> None:
        """Flush outstanding write-back state (call before process exit)."""
        self.flush()

    # -- StorageBackend contract ------------------------------------------------------

    def write(self, name: str, data: bytes) -> None:
        if len(data) > self.fast_capacity_bytes:
            raise StorageError(
                f"object of {len(data)} bytes exceeds the fast tier capacity "
                f"({self.fast_capacity_bytes} bytes)"
            )
        # Replacing: release the old residency before sizing the new one, but
        # restore it if eviction fails so bookkeeping never diverges from the
        # fast tier's actual contents.
        previous = self._resident.pop(name, None)
        try:
            self._evict_until_fits(len(data))
        except StorageError:
            if previous is not None:
                self._resident[name] = previous
            raise
        self.fast.write(name, data)
        self._touch(name, len(data))
        if self.policy == "write-through":
            self.slow.write(name, data)
            self._dirty.discard(name)
        else:
            self._dirty.add(name)

    def read(self, name: str) -> bytes:
        if name in self._resident:
            self.stats.fast_hits += 1
            data = self.fast.read(name)
            self._touch(name, len(data))
            return data
        self.stats.fast_misses += 1
        data = self.slow.read(name)
        if len(data) <= self.fast_capacity_bytes:
            self._evict_until_fits(len(data))
            self.fast.write(name, data)
            self._touch(name, len(data))
            self.stats.promotions += 1
        return data

    def read_range(self, name: str, start: int, length: int) -> bytes:
        """Ranged read: fast tier when resident, slow tier otherwise.

        Ranged misses do not promote — partial restores deliberately avoid
        pulling whole objects into the fast tier.
        """
        if name in self._resident:
            self.stats.fast_hits += 1
            return self.fast.read_range(name, start, length)
        self.stats.fast_misses += 1
        return self.slow.read_range(name, start, length)

    def exists(self, name: str) -> bool:
        return name in self._resident or self.slow.exists(name)

    def delete(self, name: str) -> None:
        if name in self._resident:
            self.fast.delete(name)
            self._resident.pop(name, None)
        self._dirty.discard(name)
        self.slow.delete(name)

    def list(self, prefix: str = "") -> List[str]:
        names = set(self.slow.list(prefix))
        names.update(n for n in self._resident if n.startswith(prefix))
        return sorted(names)

    def size(self, name: str) -> int:
        if name in self._resident:
            return self._resident[name]
        return self.slow.size(name)
