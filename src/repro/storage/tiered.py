"""Two-tier storage: a small fast tier in front of a large slow tier.

The deployment shape the paper's remote-storage ablation points at: recent
checkpoints should restore at local-SSD speed while the full history lives in
a cheaper object store.  The fast tier is a byte-budgeted LRU cache:

* **write-through** (default): writes land in both tiers before returning —
  the slow tier is always complete, so losing the fast tier loses nothing;
* **write-back**: writes land only in the fast tier and are flushed to the
  slow tier by :meth:`flush`, on eviction, or at :meth:`close`; faster
  checkpoint latency at the cost of a durability window (the trade-off
  Tab. 4's interval analysis prices).

Reads hit the fast tier first and *promote* slow-tier objects into it.
Evictions are strictly LRU by last access and never drop a dirty object
without flushing it first.

Placement control (the chunk store's tier-aware read path drives these):

* :meth:`pin` / :meth:`unpin` — pinned objects (checkpoint manifests) are
  never chosen as eviction victims, so chunk churn cannot push the small,
  always-read metadata out of the fast tier;
* :meth:`promote` — pull one slow-tier object into the fast tier without
  returning its bytes (warming a restore set ahead of time);
* :meth:`demote` — flush-if-dirty and drop one object from the fast tier
  (cold chunks referenced only by old checkpoints make room for hot ones).

Cross-process placement: per-process pin state dies with the process and is
invisible to other processes sharing the slow tier.  Passing a
:class:`~repro.storage.placement.PlacementJournal` makes pins *durable*
(a reopened backend re-adopts and re-promotes journal pins before serving
traffic) and *shared* (eviction and demotion also honour names pinned by
any other process writing the same journal).  The journal is advisory
metadata: losing it costs fast-tier residency, never data.

Thread safety: the restore executor fetches chunks through this backend
from several threads, so LRU/pin/dirty bookkeeping is guarded by a lock.
Slow-tier fetches on the miss path run *outside* the lock (concurrent
misses overlap their transfers; a raced double-fetch installs once), while
fast-tier operations — which are fast by definition — run under it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Set

from repro.errors import ConfigError, StorageError
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.storage.backend import StorageBackend
from repro.storage.placement import PlacementJournal

_POLICIES = {"write-through", "write-back"}


class TierStats(StatsView):
    """Cache counters exposed for tests and the storage ablation.

    Registry-backed (``tier.*`` series, labeled ``tier=fast``): same
    attribute reads/writes as the old dataclass, but the counts also land
    in the shared metrics registry when one is threaded through.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        super().__init__()
        registry = metrics if metrics is not None else MetricsRegistry()
        for name in (
            "fast_hits",
            "fast_misses",
            "promotions",
            "evictions",
            "flushes",
            "demotions",
        ):
            self._bind(name, registry.counter(f"tier.{name}", tier="fast"))


class TieredBackend(StorageBackend):
    """LRU fast tier over a slow tier, write-through or write-back."""

    def __init__(
        self,
        fast: StorageBackend,
        slow: StorageBackend,
        fast_capacity_bytes: int,
        policy: str = "write-through",
        journal: Optional[PlacementJournal] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if fast_capacity_bytes < 1:
            raise ConfigError(
                f"fast_capacity_bytes must be >= 1, got {fast_capacity_bytes}"
            )
        if policy not in _POLICIES:
            raise ConfigError(
                f"policy must be one of {_POLICIES}, got {policy!r}"
            )
        self.fast = fast
        self.slow = slow
        self.fast_capacity_bytes = int(fast_capacity_bytes)
        self.policy = policy
        self.journal = journal
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = TierStats(self.metrics)
        # LRU bookkeeping: name -> size, in access order (oldest first).
        self._resident: "OrderedDict[str, int]" = OrderedDict()
        self._dirty: Set[str] = set()
        self._pinned: Set[str] = set()
        # name -> token of the newest write-through slow write still in
        # flight (performed outside the lock); the object stays dirty until
        # its token completes, so eviction/demotion in that window flushes
        # instead of dropping the only copy.
        self._pending_slow: dict = {}
        self._lock = threading.RLock()
        self._adopt_existing_fast_objects()
        self._adopt_journal_pins()

    def _adopt_existing_fast_objects(self) -> None:
        for name in self.fast.list():
            self._resident[name] = self.fast.size(name)

    def _adopt_journal_pins(self) -> None:
        """Re-establish durable pins after a reopen (crash recovery).

        Every journal-pinned name is promoted (best-effort) and locally
        pinned, so pinned-aware eviction protects it from the first write
        onwards — the per-process pin set no longer starts empty after a
        crash.  Names the journal pins that no longer exist anywhere are
        skipped (a gc removed the object; the stale pin is harmless and
        cleared by the next compaction or unpin).
        """
        if self.journal is None:
            return
        for name in sorted(self.journal.pinned_names()):
            try:
                self.promote(name)
            except StorageError:
                continue  # pinned name no longer exists: stale journal entry
            with self._lock:
                if name in self._resident:
                    self._pinned.add(name)

    def _journal_pinned(self, name: str) -> bool:
        """Whether another process's (or a pre-crash) pin protects ``name``."""
        return self.journal is not None and self.journal.is_pinned(name)

    # -- capacity ---------------------------------------------------------------

    def fast_bytes_used(self) -> int:
        """Bytes currently resident in the fast tier."""
        with self._lock:
            return sum(self._resident.values())

    def _evict_until_fits(self, incoming: int) -> bool:
        """Free fast-tier space for ``incoming`` bytes (caller holds the lock).

        Returns ``False`` when the object cannot be made resident — it is
        larger than the tier, or every current resident is pinned.  Callers
        then skip caching (reads/promotes) or degrade to a slow-only write;
        pinning must never turn into a data-path failure.
        """
        if incoming > self.fast_capacity_bytes:
            return False
        # One journal read per eviction pass: names pinned by *any* process
        # sharing the journal are off-limits, exactly like local pins.
        journal_pins = (
            self.journal.pinned_names() if self.journal is not None else ()
        )
        while sum(self._resident.values()) + incoming > self.fast_capacity_bytes:
            victim = next(
                (
                    n
                    for n in self._resident
                    if n not in self._pinned and n not in journal_pins
                ),
                None,
            )
            if victim is None:
                return False
            self._evict(victim)
        return True

    def _evict(self, name: str) -> None:
        if name in self._dirty:
            self._flush_one(name)
        self.fast.delete(name)
        self._resident.pop(name, None)
        self.stats.evictions += 1

    def _touch(self, name: str, size: int) -> None:
        self._resident.pop(name, None)
        self._resident[name] = size

    # -- write-back flushing --------------------------------------------------------

    def _flush_one(self, name: str) -> None:
        self.slow.write(name, self.fast.read(name))
        self._dirty.discard(name)
        self.stats.flushes += 1

    def flush(self) -> List[str]:
        """Push every dirty object to the slow tier; returns flushed names."""
        with self._lock:
            flushed = sorted(self._dirty)
            for name in flushed:
                self._flush_one(name)
            return flushed

    def dirty_objects(self) -> List[str]:
        """Objects present only in the fast tier (durability window)."""
        with self._lock:
            return sorted(self._dirty)

    def close(self) -> None:
        """Flush outstanding write-back state (call before process exit)."""
        self.flush()

    # -- placement control ------------------------------------------------------

    def pin(self, name: str) -> None:
        """Keep ``name`` fast-tier resident; never an eviction victim.

        Promotes the object first if it only lives in the slow tier.  The
        chunk store pins checkpoint manifests: they are read by every
        restore, discovery, and gc pass, and are tiny next to the chunk
        churn that would otherwise evict them.  Raises
        :class:`~repro.errors.StorageError` when the object cannot be made
        resident (too big, or the tier is full of other pinned objects).
        """
        with self._lock:
            if name not in self._resident:
                self.promote(name)
            if name not in self._resident:
                raise StorageError(
                    f"cannot pin {name!r}: it does not fit the fast tier"
                )
            self._pinned.add(name)
        if self.journal is not None:
            # Durable + cross-process: the pin survives this process and is
            # honoured by every other backend sharing the journal.
            self.journal.pin(name)

    def unpin(self, name: str) -> None:
        """Make ``name`` evictable again (resident until LRU says otherwise)."""
        with self._lock:
            self._pinned.discard(name)
        if self.journal is not None:
            self.journal.unpin(name)

    def pinned_objects(self) -> List[str]:
        """Currently pinned names."""
        with self._lock:
            return sorted(self._pinned)

    def promote(self, name: str) -> bool:
        """Ensure ``name`` is fast-tier resident; returns whether it moved.

        A resident object is just touched (LRU refresh).  Objects that
        cannot fit (larger than the tier, or squeezed out by pins) are left
        where they are (returns ``False``) rather than raising — placement
        is an optimization, not a contract.
        """
        with self._lock:
            if name in self._resident:
                self._touch(name, self._resident[name])
                return False
            data = self.slow.read(name)
            if not self._evict_until_fits(len(data)):
                return False
            self.fast.write(name, data)
            self._touch(name, len(data))
            self.stats.promotions += 1
            return True

    def demote(self, name: str) -> bool:
        """Drop ``name`` from the fast tier (flushing first if dirty).

        Pinned or non-resident objects are left alone (returns ``False``);
        with a journal, pins held by *other* processes refuse the demotion
        too.  The object stays fully readable from the slow tier — demotion
        moves cold data out of the cache, it never loses it.
        """
        if self._journal_pinned(name):
            return False
        with self._lock:
            if name not in self._resident or name in self._pinned:
                return False
            if name in self._dirty:
                self._flush_one(name)
            self.fast.delete(name)
            self._resident.pop(name, None)
            self.stats.demotions += 1
            return True

    def resident_objects(self, prefix: str = "") -> List[str]:
        """Fast-tier resident names (LRU order, oldest first)."""
        with self._lock:
            return [n for n in self._resident if n.startswith(prefix)]

    def tier_for(self, name: str) -> "TieredBackend":
        return self

    # -- StorageBackend contract ------------------------------------------------------

    def write(self, name: str, data: bytes) -> None:
        if len(data) > self.fast_capacity_bytes:
            raise StorageError(
                f"object of {len(data)} bytes exceeds the fast tier capacity "
                f"({self.fast_capacity_bytes} bytes)"
            )
        token = None
        with self._lock:
            # Replacing: release the old residency before sizing the new one.
            previous = self._resident.pop(name, None)
            if self._evict_until_fits(len(data)):
                self.fast.write(name, data)
                self._touch(name, len(data))
                if self.policy == "write-back":
                    self._dirty.add(name)
                    return
                # Write-through: the slow write happens outside the lock,
                # so the object stays *dirty* until it lands — an eviction
                # in the window flushes the fast copy instead of deleting
                # the only one.
                self._dirty.add(name)
                token = self._pending_slow.get(name, 0) + 1
                self._pending_slow[name] = token
            else:
                # Pinned objects fill the tier: degrade to a slow-only
                # write instead of failing the save (write-back loses its
                # latency edge for this object but stays durable).  An
                # unflushed previous version is flushed *before* anything
                # is deleted, so a failing slow write below cannot lose the
                # only copy.
                if previous is not None:
                    if name in self._dirty:
                        self._flush_one(name)
                    self.fast.delete(name)
                self._dirty.discard(name)
                self._pinned.discard(name)
        self.slow.write(name, data)
        if token is not None:
            with self._lock:
                if self._pending_slow.get(name) == token:
                    del self._pending_slow[name]
                    self._dirty.discard(name)
                elif name in self._resident:
                    # A newer same-name write raced us and its slow copy
                    # may have landed *before* our older payload.  Keep the
                    # object dirty: the newest fast copy then flushes over
                    # whatever ordering the slow tier ended up with.
                    self._dirty.add(name)

    def read(self, name: str) -> bytes:
        with self._lock:
            if name in self._resident:
                self.stats.fast_hits += 1
                data = self.fast.read(name)
                self._touch(name, len(data))
                return data
            self.stats.fast_misses += 1
        # Slow fetch outside the lock: concurrent restore misses overlap
        # their transfers instead of serializing on the bookkeeping.
        data = self.slow.read(name)
        with self._lock:
            if name not in self._resident and self._evict_until_fits(
                len(data)
            ):
                self.fast.write(name, data)
                self._touch(name, len(data))
                self.stats.promotions += 1
        return data

    def read_range(self, name: str, start: int, length: int) -> bytes:
        """Ranged read: fast tier when resident, slow tier otherwise.

        Ranged misses do not promote — partial restores deliberately avoid
        pulling whole objects into the fast tier.  Ranged *hits* refresh the
        LRU position, so objects a partial-restore workload keeps touching
        stay hot.
        """
        with self._lock:
            if name in self._resident:
                self.stats.fast_hits += 1
                self._touch(name, self._resident[name])
                return self.fast.read_range(name, start, length)
            self.stats.fast_misses += 1
        return self.slow.read_range(name, start, length)

    @property
    def supports_ranged_reads(self) -> bool:
        # The hint describes the miss path; fast-tier hits slice locally.
        return self.slow.supports_ranged_reads

    def exists(self, name: str) -> bool:
        with self._lock:
            if name in self._resident:
                return True
        return self.slow.exists(name)

    def delete(self, name: str) -> None:
        with self._lock:
            was_pinned = name in self._pinned
            if name in self._resident:
                self.fast.delete(name)
                self._resident.pop(name, None)
            self._dirty.discard(name)
            self._pinned.discard(name)
        self.slow.delete(name)
        if self.journal is not None:
            # A deleted object needs no placement; clear the durable pin so
            # reopened backends do not try to re-adopt a ghost.  Best-effort:
            # the delete itself succeeded, and advisory journal trouble must
            # not fail a gc pass.
            try:
                if was_pinned or self.journal.is_pinned(name):
                    self.journal.unpin(name)
            except StorageError:
                pass

    def list(self, prefix: str = "") -> List[str]:
        names = set(self.slow.list(prefix))
        with self._lock:
            names.update(n for n in self._resident if n.startswith(prefix))
        return sorted(names)

    def size(self, name: str) -> int:
        with self._lock:
            if name in self._resident:
                return self._resident[name]
        return self.slow.size(name)
