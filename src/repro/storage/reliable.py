"""Policy-honoring storage wrapper: retries, deadlines, circuit breaking.

:class:`ReliableBackend` is the storage face of :mod:`repro.reliability`:
every ``StorageBackend`` operation runs under an optional
:class:`~repro.reliability.RetryPolicy` (transient failures are retried with
backoff), an optional :class:`~repro.reliability.CircuitBreaker` (a backend
that keeps failing is failed fast instead of hammered), and whatever
:class:`~repro.reliability.Deadline` is ambient or attached.

Only :class:`~repro.errors.TransientStorageError` is retried or counted by
the breaker — a missing object is an *answer* and comes back immediately.
Counters (:class:`ReliabilityStats`) expose how much flakiness the wrapper
absorbed, which the ``fault_storm`` benchmark and the reliability tests read.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import RetryExhaustedError, TransientStorageError
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.reliability import CircuitBreaker, Deadline, RetryPolicy
from repro.storage.backend import StorageBackend


class ReliabilityStats(StatsView):
    """What the wrapper absorbed (or gave up on).

    Registry-backed ``reliability.*`` counters:

    * ``retries`` — individual re-attempts across all ops
    * ``recovered_ops`` — ops that failed at least once, then succeeded
    * ``exhausted_ops`` — ops that failed every attempt
    * ``rejected_ops`` — ops refused by an open circuit breaker
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        super().__init__()
        registry = metrics if metrics is not None else MetricsRegistry()
        for name in (
            "retries",
            "recovered_ops",
            "exhausted_ops",
            "rejected_ops",
        ):
            self._bind(name, registry.counter(f"reliability.{name}"))


class ReliableBackend(StorageBackend):
    """Backend decorator applying retry/deadline/breaker policies per op."""

    def __init__(
        self,
        inner: StorageBackend,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        deadline: Optional[Deadline] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.inner = inner
        self.retry = retry
        self.breaker = breaker
        self.deadline = deadline  # per-backend budget; ambient scope also honored
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = ReliabilityStats(self.metrics)

    def _run(self, fn: Callable[[], object]):
        if self.breaker is not None:
            try:
                self.breaker.before()
            except Exception:
                self.stats.rejected_ops += 1
                raise
        attempts = [0]

        def count_retry(_index: int, _exc: BaseException) -> None:
            attempts[0] += 1
            self.stats.retries += 1

        try:
            if self.retry is not None:
                result = self.retry.call(
                    fn, deadline=self.deadline, on_retry=count_retry
                )
            else:
                result = fn()
        except (TransientStorageError, RetryExhaustedError):
            self.stats.exhausted_ops += 1
            if self.breaker is not None:
                self.breaker.failure()
            raise
        if attempts[0]:
            self.stats.recovered_ops += 1
        if self.breaker is not None:
            self.breaker.success()
        return result

    # -- StorageBackend contract ----------------------------------------------------

    def write(self, name: str, data: bytes) -> None:
        self._run(lambda: self.inner.write(name, data))

    def read(self, name: str) -> bytes:
        return self._run(lambda: self.inner.read(name))

    def read_range(self, name: str, start: int, length: int) -> bytes:
        return self._run(lambda: self.inner.read_range(name, start, length))

    def exists(self, name: str) -> bool:
        return self._run(lambda: self.inner.exists(name))

    def delete(self, name: str) -> None:
        self._run(lambda: self.inner.delete(name))

    def list(self, prefix: str = "") -> List[str]:
        return self._run(lambda: self.inner.list(prefix))

    def size(self, name: str) -> int:
        return self._run(lambda: self.inner.size(name))

    @property
    def supports_ranged_reads(self) -> bool:
        return self.inner.supports_ranged_reads

    def tier_for(self, name: str):
        return self.inner.tier_for(name)
