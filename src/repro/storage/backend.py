"""Abstract storage backend contract."""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from typing import List

from repro.errors import StorageError

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._\-]*$")


def validate_name(name: str) -> str:
    """Reject names that could escape the backend namespace."""
    if not isinstance(name, str) or not _NAME_PATTERN.match(name):
        raise StorageError(
            f"invalid object name {name!r}: must match {_NAME_PATTERN.pattern}"
        )
    if ".." in name:
        raise StorageError(f"invalid object name {name!r}: contains '..'")
    return name


class StorageBackend(ABC):
    """Flat namespace of named byte blobs with atomic whole-object writes.

    Contract:

    * :meth:`write` is atomic: readers never observe a partial object.  A name
      either maps to its previous content or to the full new content.
    * Names are flat (no directories) and validated by :func:`validate_name`.
    """

    @abstractmethod
    def write(self, name: str, data: bytes) -> None:
        """Atomically create or replace object ``name`` with ``data``."""

    @abstractmethod
    def read(self, name: str) -> bytes:
        """Return the full content of ``name``; raises StorageError if absent."""

    @abstractmethod
    def exists(self, name: str) -> bool:
        """Whether object ``name`` exists."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Remove object ``name`` (idempotent: absent objects are a no-op)."""

    @abstractmethod
    def list(self, prefix: str = "") -> List[str]:
        """Sorted names starting with ``prefix``."""

    def size(self, name: str) -> int:
        """Stored size of ``name`` in bytes."""
        return len(self.read(name))

    @property
    def supports_ranged_reads(self) -> bool:
        """Whether :meth:`read_range` transfers less than a full object.

        ``False`` here (the base class slices a whole-object read), so the
        restore planner knows to coalesce a partial restore into one
        whole-object fetch instead of paying a full transfer per range.
        Backends with real random access override this to ``True``;
        decorators delegate to what they wrap.
        """
        return False

    def tier_for(self, name: str):
        """The :class:`~repro.storage.tiered.TieredBackend` holding ``name``.

        ``None`` when no tiered backend is in the path.  Composite backends
        (sharded, throttled, flaky) delegate so tier-aware placement —
        pinning hot manifests, promoting restored chunks — reaches the right
        device regardless of how backends are stacked.
        """
        return None

    def read_range(self, name: str, start: int, length: int) -> bytes:
        """Bytes ``[start, start+length)`` of object ``name``.

        The base implementation reads the whole object and slices; backends
        with random access (files, memory) override it so partial checkpoint
        restores transfer only the chunks they need.  Short reads past the
        end of the object return the available suffix (like ``pread``).
        """
        if start < 0 or length < 0:
            raise StorageError(
                f"invalid range [{start}, {start}+{length}) for {name!r}"
            )
        return self.read(name)[start : start + length]
