"""Cross-process tier placement journal: durable pins, shared leases.

:class:`~repro.storage.tiered.TieredBackend` keeps pin/promote/demote
bookkeeping in per-process dicts, which has two failure modes the fleet
daemon cannot live with:

* **pins die with the process** — after a crash the reopened tier has an
  empty pin set, so pinned-aware eviction can evict a job's newest manifest
  (the object every restore, discovery and gc pass reads first);
* **two daemons sharing one store fight** — process A pins a manifest,
  process B (same slow tier, its own fast tier) knows nothing about it and
  happily demotes or rebalances it away.

:class:`PlacementJournal` fixes both by writing placement facts into the
*store itself* as an append-only log of single-object records.  Every record
is one backend object (backend writes are atomic), so two processes never
clobber each other — they interleave, and the deterministic fold order
``(seq, owner)`` makes every reader agree on the resulting state:

* ``pin`` / ``unpin`` — last operation per name wins.  Pins are durable: a
  reopened :class:`TieredBackend` re-adopts them before serving traffic.
* ``lease`` / ``release`` — advisory single-holder roles (``"rebalance"``,
  ``"compact"``) with wall-clock expiry.  A claim only takes the slot when
  it is free, expired, or already held by the claimant; losers observe that
  they lost on the read-back.  This is what keeps two daemons from demoting
  the same chunk set concurrently: ``ChunkStore.rebalance_tiers`` runs only
  while holding the ``rebalance`` lease.
* ``snapshot`` — compaction: the folded state re-written as one record so
  the log stays bounded.  Compaction requires the ``compact`` lease and is
  meant for quiescent moments (daemon drain); records that land concurrently
  with a compaction may need their pins re-asserted, which the chunk store's
  pin-on-save path does anyway.

Record layout (``plj-<seq:08d>-<owner>.json``)::

    {"version": 1, "seq": 12, "owner": "daemon-a", "ts": 1750000000.0,
     "op": "pin", "name": "job-lr01-ckpt-000004.json"}

The journal is deliberately *advisory metadata*: losing it costs placement
quality (a manifest may be evicted to the slow tier), never data — every
object it names remains fully readable from the slow tier.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigError, StorageError
from repro.faults.crashpoints import crash_point, register_crash_point
from repro.storage.backend import StorageBackend, validate_name

CP_RECORD_BEFORE_WRITE = register_crash_point(
    "placement.record.before-write",
    "die with a journal sequence number allocated but the record unwritten",
)
CP_RECORD_AFTER_WRITE = register_crash_point(
    "placement.record.after-write",
    "die after the journal record lands but before the local fold",
)
CP_COMPACT_AFTER_SNAPSHOT = register_crash_point(
    "placement.compact.after-snapshot",
    "die between the compaction snapshot record and the covered-record "
    "deletes (both snapshot and old records present)",
)
CP_COMPACT_MID_SWEEP = register_crash_point(
    "placement.compact.mid-sweep",
    "die after deleting the first covered record of a compaction sweep",
)

RECORD_PREFIX = "plj-"
JOURNAL_VERSION = 1

#: Lease role serializing fleet-wide demote/promote sweeps across daemons.
LEASE_REBALANCE = "rebalance"
#: Lease role serializing journal compaction.
LEASE_COMPACT = "compact"


@dataclass(frozen=True)
class LeaseState:
    """One role's current holder, as folded from the journal."""

    role: str
    holder: str
    expires: float
    seq: int


def _record_sort_key(record: Dict) -> Tuple[int, str]:
    return int(record.get("seq", 0)), str(record.get("owner", ""))


class PlacementJournal:
    """Shared, append-only placement state over one storage backend.

    ``owner`` identifies this process in records and lease claims (use a
    stable daemon id, not a PID, if pins should survive the owner's own
    restarts — ownership of a *pin* does not matter for eviction, only the
    pinned name does).  ``refresh_seconds`` bounds how stale the cached fold
    may get before reads hit the backend again; ``0`` re-reads on every
    query (tests), the default keeps eviction decisions cheap.
    """

    def __init__(
        self,
        backend: StorageBackend,
        owner: str,
        lease_seconds: float = 30.0,
        refresh_seconds: float = 0.2,
        clock: Callable[[], float] = time.time,
    ):
        if not owner:
            raise ConfigError("journal owner must be a non-empty string")
        # Probe the record name we will construct so bad owners fail fast.
        validate_name(f"{RECORD_PREFIX}00000001-{owner}.json")
        if lease_seconds <= 0:
            raise ConfigError(
                f"lease_seconds must be > 0, got {lease_seconds}"
            )
        if refresh_seconds < 0:
            raise ConfigError(
                f"refresh_seconds must be >= 0, got {refresh_seconds}"
            )
        self.backend = backend
        self.owner = str(owner)
        self.lease_seconds = float(lease_seconds)
        self.refresh_seconds = float(refresh_seconds)
        self._clock = clock
        self._lock = threading.RLock()
        # Parsed-record cache: object name -> record dict (None = unreadable,
        # kept so damaged records are not re-fetched every refresh).
        self._cache: Dict[str, Optional[Dict]] = {}
        self._pins: Set[str] = set()
        self._pin_owner: Dict[str, str] = {}
        self._leases: Dict[str, LeaseState] = {}
        self._next_seq = 1
        self._last_refresh = float("-inf")
        self.refresh()

    # -- reading ----------------------------------------------------------------

    def refresh(self) -> None:
        """Re-read the log and fold it into the cached state."""
        with self._lock:
            names = self.backend.list(RECORD_PREFIX)
            listed = set(names)
            # Drop cache entries for compacted (deleted) records.
            for name in list(self._cache):
                if name not in listed:
                    del self._cache[name]
            for name in names:
                if name in self._cache:
                    continue
                try:
                    self._cache[name] = self._parse(self.backend.read(name))
                except StorageError:
                    # Deleted between list and read: a compaction races us,
                    # and the surviving snapshot record carries its effect.
                    continue
            self._fold()
            self._last_refresh = self._clock()

    def _maybe_refresh(self) -> None:
        with self._lock:
            if self._clock() - self._last_refresh >= self.refresh_seconds:
                self.refresh()

    @staticmethod
    def _parse(data: bytes) -> Optional[Dict]:
        try:
            record = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None  # damaged record: placement is advisory, skip it
        if (
            not isinstance(record, dict)
            or record.get("version") != JOURNAL_VERSION
        ):
            return None
        return record

    def _fold(self) -> None:
        """Rebuild pins/leases from the cached records (caller holds lock)."""
        records = sorted(
            (r for r in self._cache.values() if r is not None),
            key=_record_sort_key,
        )
        pins: Set[str] = set()
        pin_owner: Dict[str, str] = {}
        leases: Dict[str, LeaseState] = {}
        top_seq = 0
        for record in records:
            seq = int(record.get("seq", 0))
            owner = str(record.get("owner", ""))
            ts = float(record.get("ts", 0.0))
            top_seq = max(top_seq, seq)
            op = record.get("op")
            if op == "pin":
                name = record.get("name")
                if isinstance(name, str):
                    pins.add(name)
                    pin_owner[name] = owner
            elif op == "unpin":
                name = record.get("name")
                if isinstance(name, str):
                    pins.discard(name)
                    pin_owner.pop(name, None)
            elif op == "lease":
                role = str(record.get("role", ""))
                expires = float(record.get("expires", 0.0))
                slot = leases.get(role)
                # A claim takes the slot when it is free, already the
                # claimant's, or expired *at the time the claim was made*.
                if (
                    slot is None
                    or slot.holder == owner
                    or slot.expires <= ts
                ):
                    leases[role] = LeaseState(
                        role=role, holder=owner, expires=expires, seq=seq
                    )
            elif op == "release":
                role = str(record.get("role", ""))
                slot = leases.get(role)
                if slot is not None and slot.holder == owner:
                    del leases[role]
            elif op == "snapshot":
                pins = {n for n in record.get("pins", []) if isinstance(n, str)}
                pin_owner = {
                    n: str(o)
                    for n, o in dict(record.get("pin_owners", {})).items()
                    if isinstance(n, str)
                }
                leases = {}
                for role, slot in dict(record.get("leases", {})).items():
                    leases[str(role)] = LeaseState(
                        role=str(role),
                        holder=str(slot.get("holder", "")),
                        expires=float(slot.get("expires", 0.0)),
                        seq=seq,
                    )
        self._pins = pins
        self._pin_owner = pin_owner
        self._leases = leases
        self._next_seq = top_seq + 1

    # -- writing ----------------------------------------------------------------

    def _append(self, op: Dict) -> Dict:
        """Write one record (atomic backend object) and fold it in locally."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            record = {
                "version": JOURNAL_VERSION,
                "seq": seq,
                "owner": self.owner,
                "ts": self._clock(),
                **op,
            }
            name = f"{RECORD_PREFIX}{seq:08d}-{self.owner}.json"
            crash_point(CP_RECORD_BEFORE_WRITE)
            self.backend.write(
                name, json.dumps(record, sort_keys=True).encode("utf-8")
            )
            crash_point(CP_RECORD_AFTER_WRITE)
            self._cache[name] = record
            self._fold()
            return record

    # -- pins -------------------------------------------------------------------

    def pin(self, name: str) -> None:
        """Durably mark ``name`` as never-evict for every sharing process."""
        with self._lock:
            self._maybe_refresh()
            if name in self._pins:
                return
            self._append({"op": "pin", "name": name})

    def unpin(self, name: str) -> None:
        """Durably clear the pin on ``name`` (any process may clear it)."""
        with self._lock:
            self._maybe_refresh()
            if name not in self._pins:
                return
            self._append({"op": "unpin", "name": name})

    def pinned_names(self) -> Set[str]:
        """Names currently pinned according to the (possibly cached) fold."""
        with self._lock:
            self._maybe_refresh()
            return set(self._pins)

    def is_pinned(self, name: str) -> bool:
        """Whether ``name`` is pinned by any sharing process."""
        with self._lock:
            self._maybe_refresh()
            return name in self._pins

    # -- leases -----------------------------------------------------------------

    def acquire_lease(self, role: str, ttl: Optional[float] = None) -> bool:
        """Try to take ``role``; returns whether this owner now holds it.

        The protocol is claim-then-verify: write a claim record, re-read the
        log, and check which claim the deterministic fold awarded the slot
        to.  Two daemons claiming concurrently both observe the same winner.
        """
        ttl = self.lease_seconds if ttl is None else float(ttl)
        if ttl <= 0:
            raise ConfigError(f"lease ttl must be > 0, got {ttl}")
        with self._lock:
            self.refresh()
            now = self._clock()
            slot = self._leases.get(role)
            if slot is not None and slot.expires > now and slot.holder != self.owner:
                return False
            self._append(
                {
                    "op": "lease",
                    "role": role,
                    "expires": now + ttl,
                }
            )
            self.refresh()
            slot = self._leases.get(role)
            return (
                slot is not None
                and slot.holder == self.owner
                and slot.expires > now
            )

    def release_lease(self, role: str) -> None:
        """Give ``role`` back if this owner holds it (idempotent)."""
        with self._lock:
            self.refresh()
            slot = self._leases.get(role)
            if slot is not None and slot.holder == self.owner:
                self._append({"op": "release", "role": role})

    def lease_holder(self, role: str) -> Optional[str]:
        """Current unexpired holder of ``role``, or ``None``."""
        with self._lock:
            self._maybe_refresh()
            slot = self._leases.get(role)
            if slot is None or slot.expires <= self._clock():
                return None
            return slot.holder

    def holds_lease(self, role: str) -> bool:
        """Whether this owner currently holds ``role``."""
        return self.lease_holder(role) == self.owner

    # -- compaction -------------------------------------------------------------

    def records(self) -> List[str]:
        """Record object names currently in the log (diagnostics)."""
        with self._lock:
            self._maybe_refresh()
            return sorted(self._cache)

    def compact(self) -> int:
        """Fold the log into one snapshot record; returns records deleted.

        Requires the ``compact`` lease (taken and released here) so two
        daemons never compact concurrently.  Call this at quiescent moments
        — daemon drain — because a record appended *while* the snapshot is
        being written may be reset away; pin-on-save re-asserts such pins.
        """
        with self._lock:
            if not self.acquire_lease(LEASE_COMPACT):
                return 0
            try:
                covered = [
                    name
                    for name, record in self._cache.items()
                    if record is not None
                ]
                snapshot = {
                    "op": "snapshot",
                    "pins": sorted(self._pins),
                    "pin_owners": dict(self._pin_owner),
                    "leases": {
                        role: {"holder": s.holder, "expires": s.expires}
                        for role, s in self._leases.items()
                    },
                }
                kept = self._append(snapshot)
                kept_name = f"{RECORD_PREFIX}{kept['seq']:08d}-{self.owner}.json"
                crash_point(CP_COMPACT_AFTER_SNAPSHOT)
                deleted = 0
                for name in covered:
                    if name == kept_name:
                        continue
                    self.backend.delete(name)
                    self._cache.pop(name, None)
                    deleted += 1
                    if deleted == 1:
                        crash_point(CP_COMPACT_MID_SWEEP)
                self._fold()
                return deleted
            finally:
                self.release_lease(LEASE_COMPACT)
