"""Cross-process tier placement journal: durable pins, shared leases.

:class:`~repro.storage.tiered.TieredBackend` keeps pin/promote/demote
bookkeeping in per-process dicts, which has two failure modes the fleet
daemon cannot live with:

* **pins die with the process** — after a crash the reopened tier has an
  empty pin set, so pinned-aware eviction can evict a job's newest manifest
  (the object every restore, discovery and gc pass reads first);
* **two daemons sharing one store fight** — process A pins a manifest,
  process B (same slow tier, its own fast tier) knows nothing about it and
  happily demotes or rebalances it away.

:class:`PlacementJournal` fixes both by writing placement facts into the
*store itself* as an append-only log of single-object records.  Every record
is one backend object (backend writes are atomic), so two processes never
clobber each other — they interleave, and the deterministic fold order
``(seq, owner)`` makes every reader agree on the resulting state:

* ``pin`` / ``unpin`` — last operation per name wins.  Pins are durable: a
  reopened :class:`TieredBackend` re-adopts them before serving traffic.
* ``lease`` / ``release`` — advisory single-holder roles (``"rebalance"``,
  ``"compact"``) with wall-clock expiry.  A claim only takes the slot when
  it is free, expired, or already held by the claimant; losers observe that
  they lost on the read-back.  This is what keeps two daemons from demoting
  the same chunk set concurrently: ``ChunkStore.rebalance_tiers`` runs only
  while holding the ``rebalance`` lease.
* ``snapshot`` — compaction: the folded state re-written as one record so
  the log stays bounded.  Compaction requires the ``compact`` lease and is
  meant for quiescent moments (daemon drain); records that land concurrently
  with a compaction may need their pins re-asserted, which the chunk store's
  pin-on-save path does anyway.

Record layout (``plj-<seq:08d>-<owner>.json``)::

    {"version": 1, "seq": 12, "owner": "daemon-a", "ts": 1750000000.0,
     "op": "pin", "name": "job-lr01-ckpt-000004.json"}

The journal is deliberately *advisory metadata*: losing it costs placement
quality (a manifest may be evicted to the slow tier), never data — every
object it names remains fully readable from the slow tier.

When a :class:`~repro.storage.metadb.MetaDB` index is attached, the folded
state is additionally persisted there after every advance: the records stay
the write-ahead log (written first, always), the index stores the fold up
to a ``(seq, owner)`` high-water mark so a reopening journal reads only the
log *suffix* instead of every record.  A record that lists at-or-below the
mark without being covered by it forces a full re-fold — the deterministic
file fold is the recovery oracle and always wins.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigError, StorageError
from repro.faults.crashpoints import crash_point, register_crash_point
from repro.storage.backend import StorageBackend, validate_name
from repro.storage.metadb import (
    CP_JOURNAL_AFTER_APPLY,
    CP_JOURNAL_BEFORE_APPLY,
    CP_REBUILD_MID_FOLD,
    CP_VACUUM_MID_SWEEP,
    MetaDB,
    parse_record_name,
)

CP_RECORD_BEFORE_WRITE = register_crash_point(
    "placement.record.before-write",
    "die with a journal sequence number allocated but the record unwritten",
)
CP_RECORD_AFTER_WRITE = register_crash_point(
    "placement.record.after-write",
    "die after the journal record lands but before the local fold",
)
CP_COMPACT_AFTER_SNAPSHOT = register_crash_point(
    "placement.compact.after-snapshot",
    "die between the compaction snapshot record and the covered-record "
    "deletes (both snapshot and old records present)",
)
CP_COMPACT_MID_SWEEP = register_crash_point(
    "placement.compact.mid-sweep",
    "die after deleting the first covered record of a compaction sweep",
)

RECORD_PREFIX = "plj-"
JOURNAL_VERSION = 1

#: Lease role serializing fleet-wide demote/promote sweeps across daemons.
LEASE_REBALANCE = "rebalance"
#: Lease role serializing journal compaction.
LEASE_COMPACT = "compact"


@dataclass(frozen=True)
class LeaseState:
    """One role's current holder, as folded from the journal."""

    role: str
    holder: str
    expires: float
    seq: int


def _record_sort_key(record: Dict) -> Tuple[int, str]:
    return int(record.get("seq", 0)), str(record.get("owner", ""))


class PlacementJournal:
    """Shared, append-only placement state over one storage backend.

    ``owner`` identifies this process in records and lease claims (use a
    stable daemon id, not a PID, if pins should survive the owner's own
    restarts — ownership of a *pin* does not matter for eviction, only the
    pinned name does).  ``refresh_seconds`` bounds how stale the cached fold
    may get before reads hit the backend again; ``0`` re-reads on every
    query (tests), the default keeps eviction decisions cheap.
    """

    def __init__(
        self,
        backend: StorageBackend,
        owner: str,
        lease_seconds: float = 30.0,
        refresh_seconds: float = 0.2,
        clock: Callable[[], float] = time.time,
        metadb: Optional[MetaDB] = None,
    ):
        if not owner:
            raise ConfigError("journal owner must be a non-empty string")
        # Probe the record name we will construct so bad owners fail fast.
        validate_name(f"{RECORD_PREFIX}00000001-{owner}.json")
        if lease_seconds <= 0:
            raise ConfigError(
                f"lease_seconds must be > 0, got {lease_seconds}"
            )
        if refresh_seconds < 0:
            raise ConfigError(
                f"refresh_seconds must be >= 0, got {refresh_seconds}"
            )
        self.backend = backend
        self.owner = str(owner)
        self.lease_seconds = float(lease_seconds)
        self.refresh_seconds = float(refresh_seconds)
        self._clock = clock
        self._lock = threading.RLock()
        # Parsed-record cache: object name -> record dict (None = unreadable,
        # kept so damaged records are not re-fetched every refresh).
        self._cache: Dict[str, Optional[Dict]] = {}
        self._pins: Set[str] = set()
        self._pin_owner: Dict[str, str] = {}
        self._leases: Dict[str, LeaseState] = {}
        self._next_seq = 1
        self._last_refresh = float("-inf")
        # Optional SQLite index: the fold up to ``_base_hwm`` lives as the
        # in-memory *base* state, with ``_folded`` the exact record-name
        # set the base covers.  Without an index the base stays empty and
        # every fold starts from zero (exactly the historical behavior).
        self._db = metadb
        self._base_pins: Set[str] = set()
        self._base_pin_owner: Dict[str, str] = {}
        self._base_leases: Dict[str, LeaseState] = {}
        self._base_hwm: Tuple[int, str] = (0, "")
        self._folded: Set[str] = set()
        if self._db is not None:
            self._load_base()
        self.refresh()

    def _load_base(self) -> None:
        """Adopt the index's persisted fold base (a broken index reads as
        empty — the full fold then repopulates it)."""
        try:
            state = self._db.placement_state()
        except StorageError:
            return
        self._base_hwm = state.hwm
        self._base_pins = set(state.pins)
        self._base_pin_owner = dict(state.pin_owner)
        self._base_leases = {
            role: LeaseState(
                role=role, holder=holder, expires=expires, seq=seq
            )
            for role, (holder, expires, seq) in state.leases.items()
        }
        self._folded = set(state.record_names)

    # -- reading ----------------------------------------------------------------

    def refresh(self) -> None:
        """Re-read the log and fold it into the cached state.

        With an index attached only the log *suffix* past the persisted
        high-water mark is read; a record that lists at-or-below the mark
        without being covered by the base forces a full re-fold.
        """
        with self._lock:
            names = self.backend.list(RECORD_PREFIX)
            listed = set(names)
            # Drop cache entries for compacted (deleted) records.
            for name in list(self._cache):
                if name not in listed:
                    del self._cache[name]
            # Base-covered records that were compacted away: their effect
            # lives on in the base until a snapshot record resets it.
            self._folded &= listed
            unseen = [
                n
                for n in names
                if n not in self._cache and n not in self._folded
            ]
            if self._db is not None and unseen:
                out_of_order = any(
                    key is not None and key <= self._base_hwm
                    for key in (parse_record_name(n) for n in unseen)
                )
                if out_of_order:
                    self._reset_base()
                    crash_point(CP_REBUILD_MID_FOLD)
                    unseen = [n for n in names if n not in self._cache]
                elif self._base_hwm == (0, "") and not self._folded:
                    # Bootstrap: a fresh or discarded index is rebuilt from
                    # the full fold of an existing journal.
                    crash_point(CP_REBUILD_MID_FOLD)
                else:
                    self._db.metrics.counter("metadb.catchup_records").inc(
                        len(unseen)
                    )
            for name in unseen:
                if name in self._cache:
                    continue
                try:
                    self._cache[name] = self._parse(self.backend.read(name))
                except StorageError:
                    # Deleted between list and read: a compaction races us,
                    # and the surviving snapshot record carries its effect.
                    continue
            self._fold()
            self._advance_base()
            self._last_refresh = self._clock()

    def _reset_base(self) -> None:
        """Discard the incremental base, in memory and in the index; the
        caller re-reads and re-folds the full log (caller holds lock)."""
        self._base_pins = set()
        self._base_pin_owner = {}
        self._base_leases = {}
        self._base_hwm = (0, "")
        self._folded = set()
        self._cache = {}
        try:
            self._db.clear_placement()
        except StorageError:
            pass
        self._db.metrics.counter("metadb.full_folds").inc()

    def _maybe_refresh(self) -> None:
        with self._lock:
            if self._clock() - self._last_refresh >= self.refresh_seconds:
                self.refresh()

    @staticmethod
    def _parse(data: bytes) -> Optional[Dict]:
        try:
            record = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None  # damaged record: placement is advisory, skip it
        if (
            not isinstance(record, dict)
            or record.get("version") != JOURNAL_VERSION
        ):
            return None
        return record

    def _fold(self) -> None:
        """Rebuild pins/leases from the cached records (caller holds lock)."""
        records = sorted(
            (r for r in self._cache.values() if r is not None),
            key=_record_sort_key,
        )
        pins: Set[str] = set(self._base_pins)
        pin_owner: Dict[str, str] = dict(self._base_pin_owner)
        leases: Dict[str, LeaseState] = dict(self._base_leases)
        top_seq = self._base_hwm[0]
        for record in records:
            seq = int(record.get("seq", 0))
            owner = str(record.get("owner", ""))
            ts = float(record.get("ts", 0.0))
            top_seq = max(top_seq, seq)
            op = record.get("op")
            if op == "pin":
                name = record.get("name")
                if isinstance(name, str):
                    pins.add(name)
                    pin_owner[name] = owner
            elif op == "unpin":
                name = record.get("name")
                if isinstance(name, str):
                    pins.discard(name)
                    pin_owner.pop(name, None)
            elif op == "lease":
                role = str(record.get("role", ""))
                expires = float(record.get("expires", 0.0))
                slot = leases.get(role)
                # A claim takes the slot when it is free, already the
                # claimant's, or expired *at the time the claim was made*.
                if (
                    slot is None
                    or slot.holder == owner
                    or slot.expires <= ts
                ):
                    leases[role] = LeaseState(
                        role=role, holder=owner, expires=expires, seq=seq
                    )
            elif op == "release":
                role = str(record.get("role", ""))
                slot = leases.get(role)
                if slot is not None and slot.holder == owner:
                    del leases[role]
            elif op == "snapshot":
                pins = {n for n in record.get("pins", []) if isinstance(n, str)}
                pin_owner = {
                    n: str(o)
                    for n, o in dict(record.get("pin_owners", {})).items()
                    if isinstance(n, str)
                }
                leases = {}
                for role, slot in dict(record.get("leases", {})).items():
                    leases[str(role)] = LeaseState(
                        role=str(role),
                        holder=str(slot.get("holder", "")),
                        expires=float(slot.get("expires", 0.0)),
                        seq=seq,
                    )
        self._pins = pins
        self._pin_owner = pin_owner
        self._leases = leases
        self._next_seq = top_seq + 1

    def _advance_base(self) -> None:
        """Persist the current fold into the index and adopt it as the new
        base (caller holds lock; journal records are already durable, so a
        crash anywhere in here leaves the index merely *behind*)."""
        if self._db is None:
            return
        live = {
            name: record
            for name, record in self._cache.items()
            if record is not None
        }
        if not live:
            return
        hwm = max(_record_sort_key(record) for record in live.values())
        if hwm <= self._base_hwm:
            return
        rows = []
        for name in self._folded:
            key = parse_record_name(name)
            if key is not None:
                rows.append((name, key[0], key[1]))
        for name, record in live.items():
            rows.append((name, *_record_sort_key(record)))
        crash_point(CP_JOURNAL_BEFORE_APPLY)
        try:
            self._db.replace_placement_state(
                hwm,
                self._pins,
                self._pin_owner,
                {
                    role: (slot.holder, slot.expires, slot.seq)
                    for role, slot in self._leases.items()
                },
                rows,
            )
        except StorageError:
            # The index is a cache; the files stay the truth. A reopening
            # journal re-folds past whatever the index last persisted.
            pass
        crash_point(CP_JOURNAL_AFTER_APPLY)
        self._base_pins = set(self._pins)
        self._base_pin_owner = dict(self._pin_owner)
        self._base_leases = dict(self._leases)
        self._base_hwm = hwm
        self._folded.update(live)
        for name in live:
            self._cache.pop(name, None)

    # -- writing ----------------------------------------------------------------

    def _append(self, op: Dict) -> Dict:
        """Write one record (atomic backend object) and fold it in locally."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            record = {
                "version": JOURNAL_VERSION,
                "seq": seq,
                "owner": self.owner,
                "ts": self._clock(),
                **op,
            }
            name = f"{RECORD_PREFIX}{seq:08d}-{self.owner}.json"
            crash_point(CP_RECORD_BEFORE_WRITE)
            self.backend.write(
                name, json.dumps(record, sort_keys=True).encode("utf-8")
            )
            crash_point(CP_RECORD_AFTER_WRITE)
            self._cache[name] = record
            self._fold()
            self._advance_base()
            return record

    # -- pins -------------------------------------------------------------------

    def pin(self, name: str) -> None:
        """Durably mark ``name`` as never-evict for every sharing process."""
        with self._lock:
            self._maybe_refresh()
            if name in self._pins:
                return
            self._append({"op": "pin", "name": name})

    def unpin(self, name: str) -> None:
        """Durably clear the pin on ``name`` (any process may clear it)."""
        with self._lock:
            self._maybe_refresh()
            if name not in self._pins:
                return
            self._append({"op": "unpin", "name": name})

    def pinned_names(self) -> Set[str]:
        """Names currently pinned according to the (possibly cached) fold."""
        with self._lock:
            self._maybe_refresh()
            return set(self._pins)

    def is_pinned(self, name: str) -> bool:
        """Whether ``name`` is pinned by any sharing process."""
        with self._lock:
            self._maybe_refresh()
            return name in self._pins

    # -- leases -----------------------------------------------------------------

    def acquire_lease(self, role: str, ttl: Optional[float] = None) -> bool:
        """Try to take ``role``; returns whether this owner now holds it.

        The protocol is claim-then-verify: write a claim record, re-read the
        log, and check which claim the deterministic fold awarded the slot
        to.  Two daemons claiming concurrently both observe the same winner.
        """
        ttl = self.lease_seconds if ttl is None else float(ttl)
        if ttl <= 0:
            raise ConfigError(f"lease ttl must be > 0, got {ttl}")
        with self._lock:
            self.refresh()
            now = self._clock()
            slot = self._leases.get(role)
            if slot is not None and slot.expires > now and slot.holder != self.owner:
                return False
            self._append(
                {
                    "op": "lease",
                    "role": role,
                    "expires": now + ttl,
                }
            )
            self.refresh()
            slot = self._leases.get(role)
            return (
                slot is not None
                and slot.holder == self.owner
                and slot.expires > now
            )

    def release_lease(self, role: str) -> None:
        """Give ``role`` back if this owner holds it (idempotent)."""
        with self._lock:
            self.refresh()
            slot = self._leases.get(role)
            if slot is not None and slot.holder == self.owner:
                self._append({"op": "release", "role": role})

    def lease_holder(self, role: str) -> Optional[str]:
        """Current unexpired holder of ``role``, or ``None``."""
        with self._lock:
            self._maybe_refresh()
            slot = self._leases.get(role)
            if slot is None or slot.expires <= self._clock():
                return None
            return slot.holder

    def holds_lease(self, role: str) -> bool:
        """Whether this owner currently holds ``role``."""
        return self.lease_holder(role) == self.owner

    # -- compaction -------------------------------------------------------------

    def records(self) -> List[str]:
        """Record object names currently in the log (diagnostics)."""
        with self._lock:
            self._maybe_refresh()
            return sorted(set(self._cache) | self._folded)

    def compact(self) -> int:
        """Fold the log into one snapshot record; returns records deleted.

        Requires the ``compact`` lease (taken and released here) so two
        daemons never compact concurrently.  Call this at quiescent moments
        — daemon drain — because a record appended *while* the snapshot is
        being written may be reset away; pin-on-save re-asserts such pins.
        """
        with self._lock:
            if not self.acquire_lease(LEASE_COMPACT):
                return 0
            try:
                covered = sorted(
                    self._folded
                    | {
                        name
                        for name, record in self._cache.items()
                        if record is not None
                    }
                )
                snapshot = {
                    "op": "snapshot",
                    "pins": sorted(self._pins),
                    "pin_owners": dict(self._pin_owner),
                    "leases": {
                        role: {"holder": s.holder, "expires": s.expires}
                        for role, s in self._leases.items()
                    },
                }
                kept = self._append(snapshot)
                kept_name = f"{RECORD_PREFIX}{kept['seq']:08d}-{self.owner}.json"
                crash_point(CP_COMPACT_AFTER_SNAPSHOT)
                deleted = 0
                for name in covered:
                    if name == kept_name:
                        continue
                    self.backend.delete(name)
                    self._cache.pop(name, None)
                    self._folded.discard(name)
                    deleted += 1
                    if deleted == 1:
                        crash_point(CP_COMPACT_MID_SWEEP)
                    if self._db is not None:
                        # Index-assisted vacuum: the state tables already
                        # hold the snapshot fold (persisted when the
                        # snapshot record was appended); only the covered
                        # record rows are swept here.
                        try:
                            self._db.prune_record(name)
                        except StorageError:
                            pass
                        if deleted == 1:
                            crash_point(CP_VACUUM_MID_SWEEP)
                self._fold()
                return deleted
            finally:
                self.release_lease(LEASE_COMPACT)
