"""Dict-backed storage backend with I/O accounting."""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.errors import StorageError
from repro.storage.backend import StorageBackend, validate_name


class InMemoryBackend(StorageBackend):
    """In-process backend for tests and benchmarks.

    Tracks ``bytes_written`` / ``bytes_read`` / ``write_count`` /
    ``read_count`` so experiments can report exact I/O volumes without
    touching a filesystem.  Thread-safe (async writers share it with the
    training thread).
    """

    def __init__(self) -> None:
        self._objects: Dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.bytes_written = 0
        self.bytes_read = 0
        self.write_count = 0
        self.read_count = 0

    def write(self, name: str, data: bytes) -> None:
        validate_name(name)
        if not isinstance(data, (bytes, bytearray)):
            raise StorageError(f"data must be bytes, got {type(data).__name__}")
        with self._lock:
            self._objects[name] = bytes(data)
            self.bytes_written += len(data)
            self.write_count += 1

    def read(self, name: str) -> bytes:
        validate_name(name)
        with self._lock:
            try:
                data = self._objects[name]
            except KeyError:
                raise StorageError(f"object {name!r} does not exist") from None
            self.bytes_read += len(data)
            self.read_count += 1
            return data

    def read_range(self, name: str, start: int, length: int) -> bytes:
        validate_name(name)
        if start < 0 or length < 0:
            raise StorageError(
                f"invalid range [{start}, {start}+{length}) for {name!r}"
            )
        with self._lock:
            try:
                data = self._objects[name]
            except KeyError:
                raise StorageError(f"object {name!r} does not exist") from None
            chunk = data[start : start + length]
            self.bytes_read += len(chunk)
            self.read_count += 1
            return chunk

    @property
    def supports_ranged_reads(self) -> bool:
        return True  # slicing transfers (and accounts) only the range

    def exists(self, name: str) -> bool:
        validate_name(name)
        with self._lock:
            return name in self._objects

    def delete(self, name: str) -> None:
        validate_name(name)
        with self._lock:
            self._objects.pop(name, None)

    def list(self, prefix: str = "") -> List[str]:
        with self._lock:
            return sorted(n for n in self._objects if n.startswith(prefix))

    def size(self, name: str) -> int:
        validate_name(name)
        with self._lock:
            try:
                return len(self._objects[name])
            except KeyError:
                raise StorageError(f"object {name!r} does not exist") from None

    def reset_counters(self) -> None:
        """Zero the I/O accounting counters."""
        with self._lock:
            self.bytes_written = 0
            self.bytes_read = 0
            self.write_count = 0
            self.read_count = 0
