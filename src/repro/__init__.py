"""repro — QCkpt: checkpointing for hybrid quantum-classical training.

Open-source reproduction of *"Quantum Neural Networks Need Checkpointing"*
(HotStorage 2025).  The package bundles:

* ``repro.quantum`` — a from-scratch statevector simulator (circuits, Pauli
  observables, shot sampling, ansatz templates, noise),
* ``repro.autodiff`` — adjoint / parameter-shift / finite-difference
  gradients,
* ``repro.ml`` — optimizers, datasets, models, and a trainer whose state is
  fully capturable,
* ``repro.core`` — the contribution: the QCKPT checkpoint format, codecs,
  lossy statevector transforms, delta checkpoints, atomic/async writers,
  manifest store, interval policies (Young–Daly), and recovery,
* ``repro.storage`` — local / in-memory / simulated-remote / fault-injecting
  / replicated / tiered / hash-sharded backends,
* ``repro.service`` — the multi-job checkpoint service: content-addressed
  chunk store with cross-job dedup, shared writer pool with per-job
  backpressure, and the fleet harness for preemption-storm scenarios,
* ``repro.faults`` — crash injection and makespan models,
* ``repro.bench`` — the experiment harness regenerating every figure/table.

Quickstart::

    import numpy as np
    from repro import (
        Adam, CheckpointManager, CheckpointStore, EveryKSteps,
        Hamiltonian, LocalDirectoryBackend, Trainer, TrainerConfig,
        VQEModel, hardware_efficient, resume_trainer,
    )

    model = VQEModel(hardware_efficient(2, 2), Hamiltonian.h2_minimal())
    store = CheckpointStore(LocalDirectoryBackend("./ckpts"))
    trainer = Trainer(model, Adam(lr=0.1), config=TrainerConfig(seed=1))
    resume_trainer(trainer, store)   # no-op on first run
    trainer.run(100, hooks=[CheckpointManager(store, EveryKSteps(10))])
"""

from repro.autodiff import (
    adjoint_gradient,
    finite_difference_gradient,
    parameter_shift_gradient,
)
from repro.core import (
    AdaptiveOverheadPolicy,
    AsyncCheckpointWriter,
    CheckpointManager,
    CheckpointRecord,
    CheckpointStore,
    EveryKSteps,
    FixedTimeInterval,
    RecoveryManager,
    RetentionPolicy,
    SyncCheckpointWriter,
    TrainingSnapshot,
    YoungDalyPolicy,
    resume_trainer,
    young_daly_interval,
)
from repro.core.serialize import pack_snapshot, unpack_snapshot
from repro.errors import (
    CheckpointError,
    CheckpointNotFoundError,
    ConfigError,
    IncompatibleCheckpointError,
    IntegrityError,
    ReproError,
    SerializationError,
    StorageError,
)
from repro.faults import (
    CrashAtStep,
    PoissonStepFailures,
    SimulatedFailure,
    run_with_failures,
)
from repro.mps import MatrixProductState, MPSTransform
from repro.ml import (
    SGD,
    NoisyVQEModel,
    QAOAMaxCutModel,
    Adam,
    ArrayDataset,
    RMSProp,
    StepInfo,
    Trainer,
    TrainerConfig,
    UnitaryLearningModel,
    VariationalClassifier,
    VQEModel,
)
from repro.quantum import (
    Circuit,
    Hamiltonian,
    PauliString,
    StatevectorSimulator,
)
from repro.quantum.templates import (
    hardware_efficient,
    qaoa_maxcut,
    real_amplitudes,
    strongly_entangling,
)
from repro.storage import (
    InMemoryBackend,
    LocalDirectoryBackend,
    ReplicatedBackend,
    SimulatedRemoteBackend,
    TieredBackend,
    TransferCostModel,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # quantum
    "Circuit",
    "PauliString",
    "Hamiltonian",
    "StatevectorSimulator",
    "hardware_efficient",
    "strongly_entangling",
    "real_amplitudes",
    "qaoa_maxcut",
    # autodiff
    "adjoint_gradient",
    "parameter_shift_gradient",
    "finite_difference_gradient",
    # ml
    "Adam",
    "SGD",
    "RMSProp",
    "ArrayDataset",
    "Trainer",
    "TrainerConfig",
    "StepInfo",
    "VariationalClassifier",
    "VQEModel",
    "NoisyVQEModel",
    "QAOAMaxCutModel",
    "UnitaryLearningModel",
    # core
    "TrainingSnapshot",
    "CheckpointStore",
    "CheckpointRecord",
    "CheckpointManager",
    "RetentionPolicy",
    "RecoveryManager",
    "resume_trainer",
    "SyncCheckpointWriter",
    "AsyncCheckpointWriter",
    "EveryKSteps",
    "FixedTimeInterval",
    "YoungDalyPolicy",
    "AdaptiveOverheadPolicy",
    "young_daly_interval",
    "pack_snapshot",
    "unpack_snapshot",
    # mps
    "MatrixProductState",
    "MPSTransform",
    # storage
    "LocalDirectoryBackend",
    "InMemoryBackend",
    "SimulatedRemoteBackend",
    "TransferCostModel",
    "ReplicatedBackend",
    "TieredBackend",
    # faults
    "SimulatedFailure",
    "CrashAtStep",
    "PoissonStepFailures",
    "run_with_failures",
    # errors
    "ReproError",
    "ConfigError",
    "CheckpointError",
    "SerializationError",
    "IntegrityError",
    "CheckpointNotFoundError",
    "IncompatibleCheckpointError",
    "StorageError",
]
